//! Known-library summary gate: Off-vs-On sweep of the `firmres-libid`
//! replay engine over a library-heavy synthetic fleet.
//!
//! Builds the roster `.flix` index from the in-tree fixture sources,
//! then analyzes the fleet cold twice — once with [`LibId::Off`] (full
//! taint traversal everywhere) and once with [`LibId::On`] plus the
//! index (hash-matched library functions replayed from recorded
//! summaries) — and verifies the two sweeps produce **byte-identical**
//! reports under the cache codec (timings zeroed — they measure, they
//! are not measured). The enforced floor applies to the field
//! identification stage time — the taint traversal replay removes work
//! from. Semantics renders slices from the (byte-identical) taint
//! trees, so it cannot move and is reported for context only, as is
//! whole-pipeline wall clock.
//!
//! Usage:
//! `cargo run --release -p firmres-bench --bin libid_bench [out.json] [min-speedup]`
//!
//! Exits non-zero when any device's summary-replay report differs from
//! its full-traversal report, or when the taint-stage speedup falls
//! below `min-speedup` (no floor is enforced when the argument is
//! omitted; `scripts/check.sh` passes the 1.3× acceptance floor).

use firmres::{analyze_firmware, AnalysisConfig, FirmwareAnalysis, StageTimings};
use firmres_cache::codec;
use firmres_corpus::{synth_corpus_with_libraries, SynthConfig};
use firmres_dataflow::{LibId, LibIndex};
use firmres_firmware::FirmwareImage;
use std::sync::Arc;
use std::time::Instant;

/// The cache codec's bytes for `analysis` with timings zeroed: the
/// strictest observable-equality check available.
fn canonical_bytes(mut analysis: FirmwareAnalysis) -> Vec<u8> {
    analysis.timings = Default::default();
    // The three libid counters meter the replay engine itself, so they
    // are nonzero only in the On sweep by construction; every other
    // counter and every analysis section must still match bit for bit.
    analysis.counters.lib_fns_matched = 0;
    analysis.counters.lib_traversals_skipped = 0;
    analysis.counters.lib_summary_applies = 0;
    let mut out = Vec::new();
    codec::put_analysis(&mut out, &analysis);
    out
}

/// Assemble the roster fixture libraries in a scratch directory and
/// index them, so the bench exercises the same builder path operators
/// use. The scratch directory is removed before returning.
fn build_roster_index() -> LibIndex {
    let dir = std::env::temp_dir().join(format!("firmres-libid-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    for k in 0..firmres_corpus::ROSTER.len() {
        let path = dir.join(firmres_corpus::library_fixture_file(k));
        std::fs::write(&path, firmres_corpus::library_fixture_source(k)).expect("write fixture");
    }
    let (index, report) =
        firmres_libid::build_index_from_dir(&dir).expect("index the roster fixtures");
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "indexed {} roster function(s) ({} role(s) refused), fingerprint {:016x}",
        report.indexed(),
        report.rejected_roles(),
        index.fingerprint()
    );
    index
}

struct Sweep {
    /// Wall-clock of the whole corpus sweep, milliseconds.
    wall_ms: f64,
    /// Field-identification (taint traversal) stage time, ms.
    taint_ms: f64,
    /// Semantics stage time (context only; replay cannot move it), ms.
    semantics_ms: f64,
    /// Per-stage timing totals across all devices.
    totals: StageTimings,
    /// Canonical report bytes per device.
    reports: Vec<Vec<u8>>,
}

/// One cold sweep over the fleet: every device analyzed from scratch on
/// the calling thread, with or without the library index.
fn sweep(fleet: &[FirmwareImage], index: Option<&Arc<LibIndex>>) -> Sweep {
    let mut config = AnalysisConfig::default();
    if let Some(index) = index {
        config.taint.libid = LibId::On;
        config.taint.lib_index = Some(Arc::clone(index));
    }
    let mut totals = StageTimings::default();
    let mut reports = Vec::with_capacity(fleet.len());
    let t = Instant::now();
    for fw in fleet {
        let analysis = analyze_firmware(fw, None, &config);
        let timings = analysis.timings;
        totals.exeid += timings.exeid;
        totals.field_identification += timings.field_identification;
        totals.semantics += timings.semantics;
        totals.concatenation += timings.concatenation;
        totals.form_check += timings.form_check;
        reports.push(canonical_bytes(analysis));
    }
    Sweep {
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        taint_ms: totals.field_identification.as_secs_f64() * 1e3,
        semantics_ms: totals.semantics.as_secs_f64() * 1e3,
        totals,
        reports,
    }
}

/// Best-of-`reps` sweep ranked by taint-stage time (the gated number;
/// the reports are deterministic, so every rep encodes identically).
fn best_sweep(fleet: &[FirmwareImage], index: Option<&Arc<LibIndex>>, reps: usize) -> Sweep {
    let mut best: Option<Sweep> = None;
    for _ in 0..reps {
        let s = sweep(fleet, index);
        best = match best {
            Some(b) if b.taint_ms <= s.taint_ms => Some(b),
            _ => Some(s),
        };
    }
    best.expect("reps >= 1")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_libid.json".to_string());
    let min_speedup: Option<f64> = std::env::args().nth(2).map(|s| {
        s.parse()
            .unwrap_or_else(|_| panic!("min-speedup must be a number, got {s:?}"))
    });

    eprintln!("building roster index…");
    let index = Arc::new(build_roster_index());

    eprintln!("synthesizing library-heavy fleet…");
    let fleet: Vec<FirmwareImage> = synth_corpus_with_libraries(&SynthConfig {
        count: 200,
        seed: 7,
    })
    .iter()
    .map(|dev| FirmwareImage::unpack(&dev.packed).expect("unpack synth device"))
    .collect();

    // Warm the allocator / page cache so the first timed sweep is not
    // penalized for going first.
    eprintln!("warmup sweep…");
    let _ = sweep(&fleet, Some(&index));

    let reps = 3;
    eprintln!(
        "full-traversal sweep: {} devices × {reps} reps…",
        fleet.len()
    );
    let off = best_sweep(&fleet, None, reps);
    eprintln!(
        "summary-replay sweep: {} devices × {reps} reps…",
        fleet.len()
    );
    let on = best_sweep(&fleet, Some(&index), reps);

    let speedup = off.taint_ms / on.taint_ms.max(1e-9);
    let wall_speedup = off.wall_ms / on.wall_ms.max(1e-9);
    let mut failures = 0;
    let mut identical = true;
    for (i, (r, o)) in off.reports.iter().zip(&on.reports).enumerate() {
        if r != o {
            eprintln!("FAIL: device {i} summary-replay report differs from full traversal");
            identical = false;
            failures += 1;
        }
    }
    if let Some(floor) = min_speedup {
        if speedup < floor {
            eprintln!("FAIL: {speedup:.2}x field-id (taint) speedup is below the {floor}x floor");
            failures += 1;
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"libid_summary_replay\",\n",
            "  \"devices\": {devices},\n",
            "  \"indexed_functions\": {indexed},\n",
            "  \"threads\": 1,\n",
            "  \"reps\": {reps},\n",
            "  \"off\": {{ \"wall_ms\": {off_ms:.3}, \"taint_ms\": {off_taint:.3}, \"semantics_ms\": {off_sem:.3}, \"stage_total_ms\": {off_total:.3} }},\n",
            "  \"on\": {{ \"wall_ms\": {on_ms:.3}, \"taint_ms\": {on_taint:.3}, \"semantics_ms\": {on_sem:.3}, \"stage_total_ms\": {on_total:.3} }},\n",
            "  \"taint_speedup\": {speedup:.2},\n",
            "  \"wall_speedup\": {wall_speedup:.2},\n",
            "  \"byte_identical\": {identical}\n",
            "}}\n"
        ),
        devices = fleet.len(),
        indexed = index.len(),
        reps = reps,
        off_ms = off.wall_ms,
        off_taint = off.taint_ms,
        off_sem = off.semantics_ms,
        off_total = off.totals.total().as_secs_f64() * 1e3,
        on_ms = on.wall_ms,
        on_taint = on.taint_ms,
        on_sem = on.semantics_ms,
        on_total = on.totals.total().as_secs_f64() * 1e3,
        speedup = speedup,
        wall_speedup = wall_speedup,
        identical = identical,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!(
        "libid: taint off {:.1} ms | on {:.1} ms | {speedup:.2}x (wall {wall_speedup:.2}x) | byte-identical: {identical}",
        off.taint_ms, on.taint_ms
    );
    println!("wrote {out_path}");
    if failures > 0 {
        std::process::exit(1);
    }
}
