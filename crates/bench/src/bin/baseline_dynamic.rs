//! Dynamic-analysis baseline (paper §III-B motivation).
//!
//! The paper argues device-cloud messages cannot realistically be
//! harvested dynamically: firmware re-hosting is an open problem, and
//! even under emulation the cloud handler only fires on real cloud
//! traffic. This binary quantifies that on the corpus:
//!
//! * **naive emulation** — boot `main` with stubbed peripherals; the
//!   event loop returns immediately (no cloud), so nothing is captured;
//! * **instrumented fuzzing** — with knowledge of the handler address and
//!   its one-byte dispatch protocol, drive it with all 256 triggers;
//! * **FIRMRES (static)** — one pass, no execution environment at all.
//!
//! Usage: `cargo run --release -p firmres-bench --bin baseline_dynamic`

use firmres::{analyze_corpus, AnalysisConfig};
use firmres_bench::render_table;
use firmres_corpus::emulation::{capture_boot_path, capture_with_trigger};
use firmres_corpus::generate_corpus;

fn main() {
    eprintln!("comparing dynamic capture against static reconstruction…\n");
    let corpus = generate_corpus(7);
    let config = AnalysisConfig::default();
    let devs: Vec<_> = corpus
        .iter()
        .filter(|d| d.cloud_executable.is_some())
        .collect();
    let images: Vec<_> = devs.iter().map(|d| &d.firmware).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let analyses = analyze_corpus(&images, None, &config, threads);
    let mut rows = Vec::new();
    let mut totals = (0usize, 0usize, 0usize);
    for (dev, analysis) in devs.iter().zip(&analyses) {
        let boot = capture_boot_path(dev).map(|m| m.len()).unwrap_or(0);
        let mut fuzzed = 0usize;
        let mut runs = 0usize;
        for t in 0..=255u8 {
            runs += 1;
            fuzzed += capture_with_trigger(dev, t).map(|m| m.len()).unwrap_or(0);
        }
        let statically = analysis.identified().count();
        rows.push(vec![
            dev.spec.id.to_string(),
            boot.to_string(),
            format!("{fuzzed} ({runs} runs)"),
            statically.to_string(),
        ]);
        totals.0 += boot;
        totals.1 += fuzzed;
        totals.2 += statically;
    }
    rows.push(vec![
        "Total".into(),
        totals.0.to_string(),
        totals.1.to_string(),
        totals.2.to_string(),
    ]);
    println!("dynamic baseline vs static reconstruction (messages captured):");
    println!(
        "{}",
        render_table(
            &[
                "Dev",
                "Naive emulation",
                "Instrumented fuzzing",
                "FIRMRES (static)"
            ],
            &rows
        )
    );
    println!(
        "naive emulation observes {} messages — the event-driven cloud handler never\n\
         fires without a live cloud (the paper's re-hosting problem). Instrumented\n\
         fuzzing recovers the rest only with (a) a working per-device emulation\n\
         harness, (b) the handler entry point, and (c) the dispatch protocol —\n\
         exactly the per-device effort the static pipeline avoids.",
        totals.0
    );
}
