//! Reproduces the semantics-model evaluation of §V-C: train the
//! classifier on code slices harvested from the corpus under the paper's
//! 7:2:1 split and report validation/test accuracy (paper: 92.23% /
//! 91.74% for the BERT-TextCNN; see DESIGN.md for the model
//! substitution).
//!
//! Also reports per-primitive precision on the test split.
//!
//! Usage: `cargo run --release -p firmres-bench --bin semantics_eval`

use firmres::{analyze_firmware, AnalysisConfig};
use firmres_bench::{build_slice_dataset, render_table};
use firmres_corpus::generate_corpus;
use firmres_semantics::{split_dataset, Classifier, Primitive, TrainConfig};

fn main() {
    eprintln!("harvesting code slices from the corpus…");
    let corpus = generate_corpus(7);
    let config = AnalysisConfig::default();
    let analyses: Vec<_> = corpus
        .iter()
        .filter(|d| d.cloud_executable.is_some())
        .map(|d| (d, analyze_firmware(&d.firmware, None, &config)))
        .collect();
    let dataset = build_slice_dataset(&analyses);
    eprintln!(
        "dataset: {} slices (paper: 30,941 from 147k images)",
        dataset.len()
    );

    let split = split_dataset(&dataset, 7);
    eprintln!(
        "split 7:2:1 → train {}, validation {}, test {}",
        split.train.len(),
        split.validation.len(),
        split.test.len()
    );
    eprintln!("training (100 epochs, as in the paper)…");
    let model = Classifier::train(&split.train, &TrainConfig::default());

    let val = model.accuracy(&split.validation);
    let test = model.accuracy(&split.test);
    println!("\nsemantics model accuracy:");
    println!(
        "  training:   {:6.2}%",
        model.report().train_accuracy * 100.0
    );
    println!("  validation: {:6.2}%  (paper 92.23%)", val * 100.0);
    println!("  test:       {:6.2}%  (paper 91.74%)", test * 100.0);

    // Per-class precision/recall on the test split.
    let mut rows = Vec::new();
    for class in Primitive::ALL {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for (text, label) in &split.test {
            let predicted = model.predict(text).0;
            match (predicted == class, *label == class) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                _ => {}
            }
        }
        let prec = if tp + fp == 0 {
            f64::NAN
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let rec = if tp + fn_ == 0 {
            f64::NAN
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        rows.push(vec![
            class.label().to_string(),
            (tp + fn_).to_string(),
            if prec.is_nan() {
                "-".into()
            } else {
                format!("{:.1}%", prec * 100.0)
            },
            if rec.is_nan() {
                "-".into()
            } else {
                format!("{:.1}%", rec * 100.0)
            },
        ]);
    }
    println!("\nper-primitive results on the test split:");
    println!(
        "{}",
        render_table(&["Primitive", "Support", "Precision", "Recall"], &rows)
    );
}
