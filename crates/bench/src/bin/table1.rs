//! Regenerates paper Table I: the list of evaluated devices.
//!
//! Usage: `cargo run -p firmres-bench --bin table1`

use firmres_bench::render_table;
use firmres_corpus::device_table;

fn main() {
    let rows: Vec<Vec<String>> = device_table()
        .iter()
        .map(|d| {
            vec![
                d.id.to_string(),
                format!("{}: {}", d.vendor, d.model),
                d.device_type.to_string(),
                d.firmware_version.to_string(),
                if d.script_based {
                    "scripts (out of scope)".into()
                } else {
                    "binary".into()
                },
            ]
        })
        .collect();
    println!("Table I — evaluated devices (synthetic corpus mirroring the paper):");
    println!(
        "{}",
        render_table(
            &[
                "ID",
                "Device Model",
                "Device Type",
                "Firmware Version",
                "Device-cloud logic"
            ],
            &rows
        )
    );
}
