//! Service load benchmark: synthesized fleet, open-loop percentiles,
//! and an admission-control saturation sweep.
//!
//! Three phases against resident daemons:
//!
//! 1. **cold** — closed-loop submit-by-bytes of every synthesized image
//!    into a cache-backed server (capacity measurement; every request
//!    runs the pipeline once).
//! 2. **warm** — open-loop traffic at a target arrival rate mixing
//!    submit-by-bytes and submit-by-hash over the now-warm cache, with
//!    coordinated-omission-corrected latency percentiles (p50…p99.9).
//! 3. **saturation** — a second daemon with one worker, no cache and a
//!    tiny queue, hammered closed-loop at escalating connection counts
//!    until [`QueueFull`] rejections engage; the sweep reports the first
//!    saturating connection count and the `retry_after_ms` hint.
//!
//! Writes `BENCH_load.json` (or the `--out` path) and exits non-zero on
//! any wire/protocol error, on a cache miss in the warm phase, or when
//! the sweep never saturates.
//!
//! Usage:
//! `cargo run --release -p firmres-bench --bin load_bench -- [--devices N]
//!  [--seed S] [--workers W] [--rate R] [--connections C] [--out PATH]`
//!
//! [`QueueFull`]: firmres_service::RejectReason::QueueFull

use firmres::run_pool;
use firmres_corpus::synth_device;
use firmres_firmware::content_hash_packed_wide;
use firmres_service::{
    run_load, Client, LoadConfig, LoadReport, Server, ServerConfig, SubmitImage,
};

struct Args {
    devices: u32,
    seed: u64,
    workers: usize,
    rate: f64,
    connections: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: 1000,
        seed: 7,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rate: 500.0,
        connections: 8,
        out: "BENCH_load.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--devices" => args.devices = val("--devices").parse().expect("--devices"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed"),
            "--workers" => args.workers = val("--workers").parse().expect("--workers"),
            "--rate" => args.rate = val("--rate").parse().expect("--rate"),
            "--connections" => {
                args.connections = val("--connections").parse().expect("--connections")
            }
            "--out" => args.out = val("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.devices > 0, "--devices must be positive");
    assert!(args.connections > 0, "--connections must be positive");
    args
}

/// Latency percentiles of a phase as a JSON fragment (microseconds).
fn latency_json(report: &LoadReport) -> String {
    let us = |q: f64| report.latency.value_at(q) as f64 / 1e3;
    format!(
        concat!(
            "\"latency_us\": {{ \"mean\": {mean:.1}, \"min\": {min:.1}, ",
            "\"p50\": {p50:.1}, \"p90\": {p90:.1}, \"p95\": {p95:.1}, ",
            "\"p99\": {p99:.1}, \"p99_9\": {p999:.1}, \"max\": {max:.1} }}"
        ),
        mean = report.latency.mean() as f64 / 1e3,
        min = report.latency.min() as f64 / 1e3,
        p50 = us(0.50),
        p90 = us(0.90),
        p95 = us(0.95),
        p99 = us(0.99),
        p999 = us(0.999),
        max = report.latency.max() as f64 / 1e3,
    )
}

fn main() {
    let args = parse_args();
    let mut failures = 0;

    eprintln!(
        "synthesizing {} devices (seed {}, {} threads)…",
        args.devices, args.seed, args.workers
    );
    let images: Vec<Vec<u8>> = run_pool(args.devices as usize, args.workers, |i| {
        synth_device(i as u32, args.seed).packed
    });

    let dir = std::env::temp_dir().join(format!("firmres-load-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_cap: 64,
            conn_inflight_cap: 256,
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let daemon = std::thread::spawn(move || server.run());

    // Phase 1 — cold capacity: every image submitted by bytes exactly
    // once, closed loop.
    eprintln!(
        "cold phase: {} submit-by-bytes over {} connections…",
        images.len(),
        args.connections
    );
    let cold_items: Vec<SubmitImage> = images
        .iter()
        .map(|b| SubmitImage::Bytes(b.clone()))
        .collect();
    let cold = run_load(
        addr,
        &cold_items,
        &LoadConfig {
            connections: args.connections,
            requests: cold_items.len(),
            ..LoadConfig::default()
        },
    )
    .expect("cold load run");
    if cold.completed != cold.submitted || cold.wire_errors + cold.protocol_errors != 0 {
        eprintln!("FAIL: cold phase did not complete cleanly: {cold:?}");
        failures += 1;
    }
    eprintln!(
        "  {:.0} analyses/s, p99 {:.1} ms",
        cold.throughput(),
        cold.latency.value_at(0.99) as f64 / 1e6
    );

    // Phase 2 — warm open loop: bytes and hash submits alternate over
    // the primed cache at the target arrival rate.
    let warm_requests = (images.len() * 2).min(8192);
    eprintln!(
        "warm phase: {} mixed bytes/hash requests, open loop at {:.0}/s…",
        warm_requests, args.rate
    );
    let mut warm_items = Vec::with_capacity(images.len() * 2);
    for b in &images {
        warm_items.push(SubmitImage::Bytes(b.clone()));
        warm_items.push(SubmitImage::Hash(content_hash_packed_wide(b)));
    }
    let warm = run_load(
        addr,
        &warm_items,
        &LoadConfig {
            connections: args.connections,
            rate: args.rate,
            requests: warm_requests,
            ..LoadConfig::default()
        },
    )
    .expect("warm load run");
    if warm.completed != warm.submitted || warm.wire_errors + warm.protocol_errors != 0 {
        eprintln!("FAIL: warm phase did not complete cleanly: {warm:?}");
        failures += 1;
    }
    if warm.from_cache != warm.completed {
        eprintln!(
            "FAIL: {} warm submits missed the primed cache",
            warm.completed - warm.from_cache
        );
        failures += 1;
    }
    eprintln!(
        "  {:.0} served/s, p50 {:.0} us, p99 {:.0} us, {} behind schedule",
        warm.throughput(),
        warm.latency.value_at(0.5) as f64 / 1e3,
        warm.latency.value_at(0.99) as f64 / 1e3,
        warm.behind_schedule
    );

    let mut client = Client::connect(addr).expect("connect for drain");
    client.drain().expect("drain");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 3 — saturation sweep: cache-less single-worker daemon with
    // a 4-deep queue (cache hits bypass admission, so the sweep must run
    // cold traffic). Escalate connections until QueueFull engages.
    const SWEEP_QUEUE_CAP: usize = 4;
    eprintln!("saturation sweep: 1 worker, queue_cap {SWEEP_QUEUE_CAP}, no cache…");
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_cap: SWEEP_QUEUE_CAP,
            conn_inflight_cap: 256,
            cache_dir: None,
            ..ServerConfig::default()
        },
    )
    .expect("bind sweep port");
    let sweep_addr = server.local_addr().expect("sweep addr");
    let sweep_daemon = std::thread::spawn(move || server.run());
    let sweep_items: Vec<SubmitImage> = images
        .iter()
        .take(4)
        .map(|b| SubmitImage::Bytes(b.clone()))
        .collect();

    let mut steps = Vec::new();
    let mut saturation_connections = 0usize;
    for conns in [1usize, 2, 4, 8, 16] {
        let report = run_load(
            sweep_addr,
            &sweep_items,
            &LoadConfig {
                connections: conns,
                requests: conns * 6,
                ..LoadConfig::default()
            },
        )
        .expect("sweep load run");
        if report.wire_errors + report.protocol_errors != 0 {
            eprintln!("FAIL: sweep at {conns} connections hit errors: {report:?}");
            failures += 1;
        }
        eprintln!(
            "  {conns:>2} conns: {} completed, {} QueueFull (retry_after {} ms)",
            report.completed, report.rejected_queue_full, report.retry_after_ms_max
        );
        if report.rejected_queue_full > 0 && saturation_connections == 0 {
            saturation_connections = conns;
        }
        steps.push((conns, report));
    }
    if saturation_connections == 0 {
        eprintln!("FAIL: sweep never saturated the admission queue");
        failures += 1;
    }
    let mut client = Client::connect(sweep_addr).expect("connect sweep drain");
    client.drain().expect("sweep drain");
    sweep_daemon.join().expect("sweep daemon thread");

    let step_json: Vec<String> = steps
        .iter()
        .map(|(conns, r)| {
            format!(
                concat!(
                    "    {{ \"connections\": {conns}, \"submitted\": {sub}, ",
                    "\"completed\": {done}, \"rejected_queue_full\": {rej}, ",
                    "\"retry_after_ms_max\": {hint}, \"throughput_rps\": {tput:.1} }}"
                ),
                conns = conns,
                sub = r.submitted,
                done = r.completed,
                rej = r.rejected_queue_full,
                hint = r.retry_after_ms_max,
                tput = r.throughput(),
            )
        })
        .collect();

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"service_load\",\n",
            "  \"devices\": {devices},\n",
            "  \"seed\": {seed},\n",
            "  \"workers\": {workers},\n",
            "  \"connections\": {connections},\n",
            "  \"cold\": {{\n",
            "    \"requests\": {cold_req},\n",
            "    \"elapsed_ms\": {cold_ms:.1},\n",
            "    \"throughput_rps\": {cold_tput:.1},\n",
            "    {cold_lat}\n",
            "  }},\n",
            "  \"warm\": {{\n",
            "    \"requests\": {warm_req},\n",
            "    \"rate_target_rps\": {rate:.1},\n",
            "    \"elapsed_ms\": {warm_ms:.1},\n",
            "    \"throughput_rps\": {warm_tput:.1},\n",
            "    \"from_cache\": {warm_cached},\n",
            "    \"behind_schedule\": {behind},\n",
            "    {warm_lat}\n",
            "  }},\n",
            "  \"saturation\": {{\n",
            "    \"sweep_workers\": 1,\n",
            "    \"sweep_queue_cap\": {qcap},\n",
            "    \"saturation_connections\": {sat_conns},\n",
            "    \"steps\": [\n{steps}\n    ]\n",
            "  }}\n",
            "}}\n",
        ),
        devices = args.devices,
        seed = args.seed,
        workers = args.workers,
        connections = args.connections,
        cold_req = cold.submitted,
        cold_ms = cold.elapsed.as_secs_f64() * 1e3,
        cold_tput = cold.throughput(),
        cold_lat = latency_json(&cold),
        warm_req = warm.submitted,
        rate = args.rate,
        warm_ms = warm.elapsed.as_secs_f64() * 1e3,
        warm_tput = warm.throughput(),
        warm_cached = warm.from_cache,
        behind = warm.behind_schedule,
        warm_lat = latency_json(&warm),
        qcap = SWEEP_QUEUE_CAP,
        sat_conns = saturation_connections,
        steps = step_json.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write benchmark output");

    println!(
        "load bench: {} devices | cold {:.0} rps | warm {:.0} rps p99 {:.0} us | saturates at {} conns",
        args.devices,
        cold.throughput(),
        warm.throughput(),
        warm.latency.value_at(0.99) as f64 / 1e3,
        saturation_connections,
    );
    println!("wrote {}", args.out);
    if failures > 0 {
        std::process::exit(1);
    }
}
