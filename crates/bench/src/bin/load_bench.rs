//! Service load benchmark: synthesized fleet, open-loop percentiles,
//! an admission-control saturation sweep, and an eviction-pressure run.
//!
//! Four phases against resident daemons:
//!
//! 1. **cold** — closed-loop submit-by-bytes of every synthesized image
//!    into a cache-backed server (capacity measurement; every request
//!    runs the pipeline once).
//! 2. **warm** — open-loop traffic at a target arrival rate mixing
//!    submit-by-bytes and submit-by-hash over the now-warm cache, with
//!    coordinated-omission-corrected latency percentiles (p50…p99.9).
//! 3. **saturation** — a second daemon with one worker, no cache and a
//!    tiny queue, hammered closed-loop at escalating connection counts
//!    until [`QueueFull`] rejections engage; the sweep reports the first
//!    saturating connection count and the `retry_after_ms` hint.
//! 4. **eviction** — a sharded store primed unbounded with a sub-fleet,
//!    then reopened under a byte budget of half its footprint and hit
//!    with the same fleet again: survivors answer from cache, evicted
//!    images re-derive, and the GC holds occupancy at the budget while
//!    serving. Reports the hit rate, evicted-entry and reclaimed-byte
//!    counters, and the final store size.
//!
//! Writes `BENCH_load.json` (or the `--out` path) and exits non-zero on
//! any wire/protocol error, on a cache miss in the warm phase, when the
//! sweep never saturates, or when eviction pressure fails to engage or
//! to keep the store at the budget.
//!
//! Usage:
//! `cargo run --release -p firmres-bench --bin load_bench -- [--devices N]
//!  [--seed S] [--workers W] [--rate R] [--connections C] [--out PATH]`
//!
//! [`QueueFull`]: firmres_service::RejectReason::QueueFull

use firmres::run_pool;
use firmres_cache::{AnalysisCache, StorePolicy};
use firmres_corpus::synth_device;
use firmres_firmware::content_hash_packed_wide;
use firmres_service::{
    run_load, Client, LoadConfig, LoadReport, Server, ServerConfig, SubmitImage,
};

struct Args {
    devices: u32,
    seed: u64,
    workers: usize,
    rate: f64,
    connections: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: 1000,
        seed: 7,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rate: 500.0,
        connections: 8,
        out: "BENCH_load.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--devices" => args.devices = val("--devices").parse().expect("--devices"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed"),
            "--workers" => args.workers = val("--workers").parse().expect("--workers"),
            "--rate" => args.rate = val("--rate").parse().expect("--rate"),
            "--connections" => {
                args.connections = val("--connections").parse().expect("--connections")
            }
            "--out" => args.out = val("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.devices > 0, "--devices must be positive");
    assert!(args.connections > 0, "--connections must be positive");
    args
}

/// Latency percentiles of a phase as a JSON fragment (microseconds).
fn latency_json(report: &LoadReport) -> String {
    let us = |q: f64| report.latency.value_at(q) as f64 / 1e3;
    format!(
        concat!(
            "\"latency_us\": {{ \"mean\": {mean:.1}, \"min\": {min:.1}, ",
            "\"p50\": {p50:.1}, \"p90\": {p90:.1}, \"p95\": {p95:.1}, ",
            "\"p99\": {p99:.1}, \"p99_9\": {p999:.1}, \"max\": {max:.1} }}"
        ),
        mean = report.latency.mean() as f64 / 1e3,
        min = report.latency.min() as f64 / 1e3,
        p50 = us(0.50),
        p90 = us(0.90),
        p95 = us(0.95),
        p99 = us(0.99),
        p999 = us(0.999),
        max = report.latency.max() as f64 / 1e3,
    )
}

fn main() {
    let args = parse_args();
    let mut failures = 0;

    eprintln!(
        "synthesizing {} devices (seed {}, {} threads)…",
        args.devices, args.seed, args.workers
    );
    let images: Vec<Vec<u8>> = run_pool(args.devices as usize, args.workers, |i| {
        synth_device(i as u32, args.seed).packed
    });

    let dir = std::env::temp_dir().join(format!("firmres-load-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_cap: 64,
            conn_inflight_cap: 256,
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let daemon = std::thread::spawn(move || server.run());

    // Phase 1 — cold capacity: every image submitted by bytes exactly
    // once, closed loop.
    eprintln!(
        "cold phase: {} submit-by-bytes over {} connections…",
        images.len(),
        args.connections
    );
    let cold_items: Vec<SubmitImage> = images
        .iter()
        .map(|b| SubmitImage::Bytes(b.clone()))
        .collect();
    let cold = run_load(
        addr,
        &cold_items,
        &LoadConfig {
            connections: args.connections,
            requests: cold_items.len(),
            ..LoadConfig::default()
        },
    )
    .expect("cold load run");
    if cold.completed != cold.submitted || cold.wire_errors + cold.protocol_errors != 0 {
        eprintln!("FAIL: cold phase did not complete cleanly: {cold:?}");
        failures += 1;
    }
    eprintln!(
        "  {:.0} analyses/s, p99 {:.1} ms",
        cold.throughput(),
        cold.latency.value_at(0.99) as f64 / 1e6
    );

    // Phase 2 — warm open loop: bytes and hash submits alternate over
    // the primed cache at the target arrival rate.
    let warm_requests = (images.len() * 2).min(8192);
    eprintln!(
        "warm phase: {} mixed bytes/hash requests, open loop at {:.0}/s…",
        warm_requests, args.rate
    );
    let mut warm_items = Vec::with_capacity(images.len() * 2);
    for b in &images {
        warm_items.push(SubmitImage::Bytes(b.clone()));
        warm_items.push(SubmitImage::Hash(content_hash_packed_wide(b)));
    }
    let warm = run_load(
        addr,
        &warm_items,
        &LoadConfig {
            connections: args.connections,
            rate: args.rate,
            requests: warm_requests,
            ..LoadConfig::default()
        },
    )
    .expect("warm load run");
    if warm.completed != warm.submitted || warm.wire_errors + warm.protocol_errors != 0 {
        eprintln!("FAIL: warm phase did not complete cleanly: {warm:?}");
        failures += 1;
    }
    if warm.from_cache != warm.completed {
        eprintln!(
            "FAIL: {} warm submits missed the primed cache",
            warm.completed - warm.from_cache
        );
        failures += 1;
    }
    eprintln!(
        "  {:.0} served/s, p50 {:.0} us, p99 {:.0} us, {} behind schedule",
        warm.throughput(),
        warm.latency.value_at(0.5) as f64 / 1e3,
        warm.latency.value_at(0.99) as f64 / 1e3,
        warm.behind_schedule
    );

    let mut client = Client::connect(addr).expect("connect for drain");
    client.drain().expect("drain");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 3 — saturation sweep: cache-less single-worker daemon with
    // a 4-deep queue (cache hits bypass admission, so the sweep must run
    // cold traffic). Escalate connections until QueueFull engages.
    const SWEEP_QUEUE_CAP: usize = 4;
    eprintln!("saturation sweep: 1 worker, queue_cap {SWEEP_QUEUE_CAP}, no cache…");
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_cap: SWEEP_QUEUE_CAP,
            conn_inflight_cap: 256,
            cache_dir: None,
            ..ServerConfig::default()
        },
    )
    .expect("bind sweep port");
    let sweep_addr = server.local_addr().expect("sweep addr");
    let sweep_daemon = std::thread::spawn(move || server.run());
    let sweep_items: Vec<SubmitImage> = images
        .iter()
        .take(4)
        .map(|b| SubmitImage::Bytes(b.clone()))
        .collect();

    let mut steps = Vec::new();
    let mut saturation_connections = 0usize;
    for conns in [1usize, 2, 4, 8, 16] {
        let report = run_load(
            sweep_addr,
            &sweep_items,
            &LoadConfig {
                connections: conns,
                requests: conns * 6,
                ..LoadConfig::default()
            },
        )
        .expect("sweep load run");
        if report.wire_errors + report.protocol_errors != 0 {
            eprintln!("FAIL: sweep at {conns} connections hit errors: {report:?}");
            failures += 1;
        }
        eprintln!(
            "  {conns:>2} conns: {} completed, {} QueueFull (retry_after {} ms)",
            report.completed, report.rejected_queue_full, report.retry_after_ms_max
        );
        if report.rejected_queue_full > 0 && saturation_connections == 0 {
            saturation_connections = conns;
        }
        steps.push((conns, report));
    }
    if saturation_connections == 0 {
        eprintln!("FAIL: sweep never saturated the admission queue");
        failures += 1;
    }
    let mut client = Client::connect(sweep_addr).expect("connect sweep drain");
    client.drain().expect("sweep drain");
    sweep_daemon.join().expect("sweep daemon thread");

    // Phase 4 — eviction pressure: prime a sharded store unbounded with
    // a sub-fleet, measure its footprint, then reopen it under a byte
    // budget of half that and replay the same fleet. The open-time GC
    // trims the least-recent half-and-change; survivors hit, evicted
    // images re-derive as misses, and write-time GC keeps occupancy at
    // the budget while serving.
    const EVICT_SHARDS: usize = 4;
    let evict_fleet = (args.devices as usize).min(256);
    let evict_dir =
        std::env::temp_dir().join(format!("firmres-load-bench-evict-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&evict_dir);
    let unbounded = StorePolicy {
        shards: EVICT_SHARDS,
        ..StorePolicy::default()
    };
    eprintln!(
        "eviction phase: priming {} images into a {}-shard unbounded store…",
        evict_fleet, EVICT_SHARDS
    );
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_cap: 64,
            conn_inflight_cap: 256,
            cache_dir: Some(evict_dir.clone()),
            store: unbounded.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("bind eviction prime port");
    let prime_addr = server.local_addr().expect("eviction prime addr");
    let prime_daemon = std::thread::spawn(move || server.run());
    let evict_items: Vec<SubmitImage> = images
        .iter()
        .take(evict_fleet)
        .map(|b| SubmitImage::Bytes(b.clone()))
        .collect();
    let prime = run_load(
        prime_addr,
        &evict_items,
        &LoadConfig {
            connections: args.connections,
            requests: evict_items.len(),
            ..LoadConfig::default()
        },
    )
    .expect("eviction prime run");
    if prime.completed != prime.submitted || prime.wire_errors + prime.protocol_errors != 0 {
        eprintln!("FAIL: eviction prime did not complete cleanly: {prime:?}");
        failures += 1;
    }
    let mut client = Client::connect(prime_addr).expect("connect eviction prime drain");
    client.drain().expect("eviction prime drain");
    prime_daemon.join().expect("eviction prime daemon");

    let full_bytes = {
        let stats = AnalysisCache::with_policy(&evict_dir, unbounded)
            .stats()
            .expect("survey primed store");
        stats.total_bytes + stats.unit_bytes
    };
    let budget = full_bytes / 2;
    eprintln!(
        "  primed store {full_bytes} bytes; replaying {} images under a {budget}-byte budget…",
        evict_items.len()
    );
    let pressured = StorePolicy {
        shards: EVICT_SHARDS,
        byte_budget: Some(budget),
        ..StorePolicy::default()
    };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_cap: 64,
            conn_inflight_cap: 256,
            cache_dir: Some(evict_dir.clone()),
            store: pressured.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("bind eviction pressure port");
    let evict_addr = server.local_addr().expect("eviction pressure addr");
    let evict_daemon = std::thread::spawn(move || server.run());
    // Replay freshest-first: the open-time GC kept the most recently
    // primed images, so visiting them before the evicted tail touches
    // the survivors ahead of the misses' re-stores — otherwise every
    // re-store would push the still-unvisited survivors out LRU-first
    // and the replay would degenerate to all misses.
    let replay_items: Vec<SubmitImage> = evict_items.iter().rev().cloned().collect();
    let evict = run_load(
        evict_addr,
        &replay_items,
        &LoadConfig {
            connections: args.connections,
            requests: evict_items.len(),
            ..LoadConfig::default()
        },
    )
    .expect("eviction pressure run");
    if evict.completed != evict.submitted || evict.wire_errors + evict.protocol_errors != 0 {
        eprintln!("FAIL: eviction phase did not complete cleanly: {evict:?}");
        failures += 1;
    }
    let mut client = Client::connect(evict_addr).expect("connect eviction drain");
    client.drain().expect("eviction drain");
    evict_daemon.join().expect("eviction daemon");

    let evict_stats = AnalysisCache::with_policy(&evict_dir, pressured)
        .stats()
        .expect("survey pressured store");
    let final_bytes = evict_stats.total_bytes + evict_stats.unit_bytes;
    let hit_rate = evict.from_cache as f64 / evict.completed.max(1) as f64;
    if evict_stats.evicted_entries == 0 {
        eprintln!("FAIL: eviction pressure never evicted anything");
        failures += 1;
    }
    if evict.from_cache == 0 || evict.from_cache == evict.completed {
        eprintln!(
            "FAIL: eviction replay should mix hits and misses, got {}/{} hits",
            evict.from_cache, evict.completed
        );
        failures += 1;
    }
    if final_bytes > budget {
        eprintln!("FAIL: store ended at {final_bytes} bytes, over the {budget}-byte budget");
        failures += 1;
    }
    eprintln!(
        "  {:.0}% hit rate, {} evicted, {} bytes reclaimed, final {} / budget {} bytes",
        hit_rate * 100.0,
        evict_stats.evicted_entries,
        evict_stats.reclaimed_bytes,
        final_bytes,
        budget
    );
    let _ = std::fs::remove_dir_all(&evict_dir);

    let step_json: Vec<String> = steps
        .iter()
        .map(|(conns, r)| {
            format!(
                concat!(
                    "    {{ \"connections\": {conns}, \"submitted\": {sub}, ",
                    "\"completed\": {done}, \"rejected_queue_full\": {rej}, ",
                    "\"retry_after_ms_max\": {hint}, \"throughput_rps\": {tput:.1} }}"
                ),
                conns = conns,
                sub = r.submitted,
                done = r.completed,
                rej = r.rejected_queue_full,
                hint = r.retry_after_ms_max,
                tput = r.throughput(),
            )
        })
        .collect();

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"service_load\",\n",
            "  \"devices\": {devices},\n",
            "  \"seed\": {seed},\n",
            "  \"workers\": {workers},\n",
            "  \"connections\": {connections},\n",
            "  \"cold\": {{\n",
            "    \"requests\": {cold_req},\n",
            "    \"elapsed_ms\": {cold_ms:.1},\n",
            "    \"throughput_rps\": {cold_tput:.1},\n",
            "    {cold_lat}\n",
            "  }},\n",
            "  \"warm\": {{\n",
            "    \"requests\": {warm_req},\n",
            "    \"rate_target_rps\": {rate:.1},\n",
            "    \"elapsed_ms\": {warm_ms:.1},\n",
            "    \"throughput_rps\": {warm_tput:.1},\n",
            "    \"from_cache\": {warm_cached},\n",
            "    \"behind_schedule\": {behind},\n",
            "    {warm_lat}\n",
            "  }},\n",
            "  \"saturation\": {{\n",
            "    \"sweep_workers\": 1,\n",
            "    \"sweep_queue_cap\": {qcap},\n",
            "    \"saturation_connections\": {sat_conns},\n",
            "    \"steps\": [\n{steps}\n    ]\n",
            "  }},\n",
            "  \"eviction\": {{\n",
            "    \"requests\": {ev_req},\n",
            "    \"store_shards\": {ev_shards},\n",
            "    \"primed_store_bytes\": {ev_full},\n",
            "    \"budget_bytes\": {ev_budget},\n",
            "    \"from_cache\": {ev_hits},\n",
            "    \"hit_rate\": {ev_hit_rate:.3},\n",
            "    \"evicted_entries\": {ev_evicted},\n",
            "    \"reclaimed_bytes\": {ev_reclaimed},\n",
            "    \"final_store_bytes\": {ev_final}\n",
            "  }}\n",
            "}}\n",
        ),
        devices = args.devices,
        seed = args.seed,
        workers = args.workers,
        connections = args.connections,
        cold_req = cold.submitted,
        cold_ms = cold.elapsed.as_secs_f64() * 1e3,
        cold_tput = cold.throughput(),
        cold_lat = latency_json(&cold),
        warm_req = warm.submitted,
        rate = args.rate,
        warm_ms = warm.elapsed.as_secs_f64() * 1e3,
        warm_tput = warm.throughput(),
        warm_cached = warm.from_cache,
        behind = warm.behind_schedule,
        warm_lat = latency_json(&warm),
        qcap = SWEEP_QUEUE_CAP,
        sat_conns = saturation_connections,
        steps = step_json.join(",\n"),
        ev_req = evict.submitted,
        ev_shards = EVICT_SHARDS,
        ev_full = full_bytes,
        ev_budget = budget,
        ev_hits = evict.from_cache,
        ev_hit_rate = hit_rate,
        ev_evicted = evict_stats.evicted_entries,
        ev_reclaimed = evict_stats.reclaimed_bytes,
        ev_final = final_bytes,
    );
    std::fs::write(&args.out, &json).expect("write benchmark output");

    println!(
        "load bench: {} devices | cold {:.0} rps | warm {:.0} rps p99 {:.0} us | saturates at {} conns | eviction hit rate {:.0}%",
        args.devices,
        cold.throughput(),
        warm.throughput(),
        warm.latency.value_at(0.99) as f64 / 1e3,
        saturation_connections,
        hit_rate * 100.0,
    );
    println!("wrote {}", args.out);
    if failures > 0 {
        std::process::exit(1);
    }
}
