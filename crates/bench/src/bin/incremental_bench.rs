//! Function-granular incremental re-analysis benchmark: cold analysis
//! of a 1%-mutated firmware update versus re-analysis through the
//! unit-granular artifact store primed by the previous version.
//!
//! The scenario is the FIRMRES update-audit loop: every device in the
//! Table-I corpus ships a firmware update that changes 1% of its
//! functions ([`firmres_corpus::mutate_firmware`], seeded). The cold
//! pass analyzes every update from scratch against an empty store —
//! the system's first sight of these images, every executable probed,
//! every unit run, all artifacts written (the same cold definition as
//! `cache_bench`). The incremental pass runs against a store primed
//! with the *previous* versions (untimed): clean units splice from
//! their stored record bytes, only each mutated function's
//! taint-dependent closure re-runs. Both passes use one thread, so the
//! speedup measures artifact reuse, not parallelism. Each pass is
//! best-of-`REPS` against a fresh (cold) or freshly re-primed (warm)
//! store, because artifact IO on shared filesystems is noisy.
//!
//! Byte-identity is asserted against a third, plain
//! [`firmres::analyze_corpus`] run (untimed): both the cold and the
//! incremental results must match it through the cache codec with
//! timings zeroed.
//!
//! # What bounds the speedup
//!
//! The mutated function lands in the device-cloud executable on most
//! corpus devices, so the incremental pass still pays a genuine
//! parse + lift + identify of that executable (~¼ ms) plus the dirty
//! closure's re-execution, against a cold per-image cost of only a few
//! ms — the corpus's synthetic programs are small, so fixed per-image
//! work caps the aggregate speedup near 5× even at an 88% unit reuse
//! rate. On real firmware (thousands of functions per image) the
//! reusable fraction dominates and the ratio grows with image size.
//! This corpus measures ~3.5–4× (best of three); a broken splice path
//! measures ~1×. The default floor is 2× — the gate catches reuse
//! regressions without flaking on IO variance.
//!
//! Usage: `cargo run --release -p firmres-bench --bin incremental_bench
//! [out.json] [floor]`
//!
//! Exits non-zero when any update's result is not byte-identical to
//! the from-scratch analysis, or when the speedup is below `floor`
//! (default 2).

use firmres::{AnalysisConfig, FirmwareAnalysis};
use firmres_cache::{analyze_corpus_incremental, codec, AnalysisCache, CorpusOutcome};
use firmres_corpus::{generate_corpus, mutate_firmware};
use firmres_firmware::FirmwareImage;
use std::time::Instant;

/// Best-of reps per timed pass: artifact IO dominates both passes and
/// is noisy on shared filesystems.
const REPS: usize = 3;

/// The persisted byte form with the one run-dependent field (wall-clock
/// stage timings) zeroed — the canonical-equality check used everywhere.
fn canonical(mut analysis: FirmwareAnalysis) -> Vec<u8> {
    analysis.timings = Default::default();
    let mut out = Vec::new();
    codec::put_analysis(&mut out, &analysis);
    out
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("firmres-incr-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_incremental.json".to_string());
    let floor: f64 = args
        .next()
        .map(|v| v.parse().expect("floor must be a number"))
        .unwrap_or(2.0);

    eprintln!("generating corpus and 1%-mutated updates…");
    let corpus = generate_corpus(7);
    let previous: Vec<&FirmwareImage> = corpus.iter().map(|d| &d.firmware).collect();
    let updates: Vec<_> = previous
        .iter()
        .map(|fw| mutate_firmware(fw, 1.0, 42))
        .collect();
    let update_images: Vec<&FirmwareImage> = updates.iter().map(|u| &u.image).collect();
    let mutated_functions: usize = updates.iter().map(|u| u.mutated.len()).sum();
    let config = AnalysisConfig::default();

    // The identity reference: a plain from-scratch run, no cache code at
    // all (untimed).
    let reference = firmres::analyze_corpus(&update_images, None, &config, 1);

    // Cold pass: every update analyzed against an empty store.
    eprintln!(
        "cold pass: {} updates ({mutated_functions} mutated function(s)), 1 thread, best of {REPS}…",
        update_images.len()
    );
    let mut cold: Option<CorpusOutcome> = None;
    let mut cold_ms = f64::INFINITY;
    for _ in 0..REPS {
        let dir = fresh_dir("cold");
        let cache = AnalysisCache::new(&dir);
        let t = Instant::now();
        let out = analyze_corpus_incremental(
            &update_images,
            None,
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        cold_ms = cold_ms.min(t.elapsed().as_secs_f64() * 1e3);
        let _ = std::fs::remove_dir_all(&dir);
        cold = Some(out);
    }
    let cold = cold.expect("REPS >= 1");

    // Incremental pass: a store primed with the previous firmware
    // versions (untimed — work the update audit already paid for when
    // the previous versions shipped), then the updates through it. The
    // store is re-primed every rep: the first incremental run writes
    // this version's artifacts, and re-using them would measure a
    // repeat submission instead of an update.
    let mut warm: Option<CorpusOutcome> = None;
    let mut warm_ms = f64::INFINITY;
    for rep in 0..REPS {
        let dir = fresh_dir("warm");
        let cache = AnalysisCache::new(&dir);
        eprintln!("incremental pass {}/{REPS}: prime + re-analyze…", rep + 1);
        analyze_corpus_incremental(
            &previous,
            None,
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        let t = Instant::now();
        let out = analyze_corpus_incremental(
            &update_images,
            None,
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        warm_ms = warm_ms.min(t.elapsed().as_secs_f64() * 1e3);
        let _ = std::fs::remove_dir_all(&dir);
        warm = Some(out);
    }
    let warm = warm.expect("REPS >= 1");

    let mut failures = 0;
    let mut mismatches = 0;
    if warm.stats.hits > 0 {
        eprintln!(
            "FAIL: {} mutated update(s) served as image-level hits",
            warm.stats.hits
        );
        failures += 1;
    }
    if warm.stats.unit_hits == 0 {
        eprintln!("FAIL: the incremental pass spliced no units at all");
        failures += 1;
    }
    let s = warm.stats;
    let pairs = cold.analyses.into_iter().zip(warm.analyses);
    for (i, (r, (c, w))) in reference.into_iter().zip(pairs).enumerate() {
        let want = canonical(r);
        if canonical(c) != want {
            eprintln!(
                "FAIL: device {} cold result differs from the plain pipeline",
                corpus[i].spec.id
            );
            mismatches += 1;
            failures += 1;
        }
        if canonical(w) != want {
            eprintln!(
                "FAIL: device {} incremental result differs from the plain pipeline",
                corpus[i].spec.id
            );
            mismatches += 1;
            failures += 1;
        }
    }
    let speedup = cold_ms / warm_ms.max(1e-9);
    if speedup < floor {
        eprintln!("FAIL: incremental speedup {speedup:.1}x is below the {floor}x floor");
        failures += 1;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"incremental_reanalysis_1pct_mutation\",\n",
            "  \"devices\": {devices},\n",
            "  \"mutated_functions\": {mutated},\n",
            "  \"cold_ms\": {cold_ms:.3},\n",
            "  \"warm_ms\": {warm_ms:.3},\n",
            "  \"speedup\": {speedup:.2},\n",
            "  \"floor\": {floor},\n",
            "  \"byte_identical\": {identical},\n",
            "  \"units\": {{ \"hits\": {uh}, \"misses\": {um}, \"reuse_rate\": {rate:.4} }},\n",
            "  \"verdicts\": {{ \"hits\": {vh}, \"misses\": {vm} }}\n",
            "}}\n"
        ),
        devices = update_images.len(),
        mutated = mutated_functions,
        cold_ms = cold_ms,
        warm_ms = warm_ms,
        speedup = speedup,
        floor = floor,
        identical = mismatches == 0,
        uh = s.unit_hits,
        um = s.unit_misses,
        rate = s.unit_reuse_rate(),
        vh = s.verdict_hits,
        vm = s.verdict_misses,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!(
        "incremental bench: {} devices | cold {:.1} ms | incremental {:.1} ms | {:.1}x | \
         unit reuse {:.0}% ({}/{} units)",
        update_images.len(),
        cold_ms,
        warm_ms,
        speedup,
        s.unit_reuse_rate() * 100.0,
        s.unit_hits,
        s.unit_hits + s.unit_misses
    );
    println!("wrote {out_path}");
    if failures > 0 {
        std::process::exit(1);
    }
}
