//! Demonstrates paper Fig. 2: the two phases of device-cloud access
//! control — binding (prove identity + authenticity, receive a
//! Bind-Token) and business (access resources with one of the three valid
//! primitive compositions).
//!
//! Usage: `cargo run -p firmres-bench --bin fig2_phases`

use firmres_cloud::{
    mac, Check, Cloud, CloudState, DeviceRecord, Endpoint, EndpointKind, HttpRequest, ResponseSpec,
    ResponseStatus,
};

fn main() {
    // A well-configured vendor cloud.
    let mut state = CloudState::new("vendor-key");
    state.register_device(DeviceRecord {
        identifiers: [("deviceId".to_string(), "D-100".to_string())]
            .into_iter()
            .collect(),
        secret: "factory-secret".into(),
        bound_user: None,
    });
    state.create_user("alice", "pw1");
    let endpoints = vec![
        Endpoint {
            path: "/bind".into(),
            kind: EndpointKind::Http,
            functionality: "Binding phase: verify identity, authenticity and user.".into(),
            checks: vec![
                Check::KnownDevice("deviceId".into()),
                Check::SecretValid("deviceId".into(), "devSecret".into()),
                Check::UserCredValid("user".into(), "pass".into()),
            ],
            response: ResponseSpec::BindToken("bindToken".into()),
            consequence: None,
        },
        Endpoint {
            path: "/business/report".into(),
            kind: EndpointKind::Http,
            functionality: "Business phase: composition ① identifier + bind token.".into(),
            checks: vec![
                Check::KnownDevice("deviceId".into()),
                Check::TokenValid("deviceId".into(), "token".into()),
            ],
            response: ResponseSpec::Ok,
            consequence: None,
        },
        Endpoint {
            path: "/business/upload".into(),
            kind: EndpointKind::Http,
            functionality: "Business phase: composition ② identifier + signature.".into(),
            checks: vec![
                Check::KnownDevice("deviceId".into()),
                Check::SignatureValid("deviceId".into(), "sign".into()),
            ],
            response: ResponseSpec::Ok,
            consequence: None,
        },
    ];
    let cloud = Cloud::new("demo-vendor", endpoints, state);

    println!("Fig. 2 — two phases of device-cloud access control\n");

    // --- Binding phase ---
    println!("binding phase:");
    let r = cloud.handle(&HttpRequest::new(
        "/bind",
        "deviceId=D-100&devSecret=wrong&user=alice&pass=pw1",
    ));
    println!("  forged Dev-Secret          → {}", r.status);
    assert_eq!(r.status, ResponseStatus::AccessDenied);
    let r = cloud.handle(&HttpRequest::new(
        "/bind",
        "deviceId=D-100&devSecret=factory-secret&user=mallory&pass=x",
    ));
    println!("  wrong User-Cred            → {}", r.status);
    // Bind properly (server-side state change) and fetch the token.
    let token = cloud.with_state(|s| s.bind("D-100", "alice").unwrap());
    let r = cloud.handle(&HttpRequest::new(
        "/bind",
        "deviceId=D-100&devSecret=factory-secret&user=alice&pass=pw1",
    ));
    println!(
        "  correct primitives         → {} (Bind-Token issued)",
        r.status
    );
    assert_eq!(r.status, ResponseStatus::RequestOk);

    // --- Business phase ---
    println!("\nbusiness phase:");
    let r = cloud.handle(&HttpRequest::new(
        "/business/report",
        "deviceId=D-100&token=guess",
    ));
    println!("  ① forged Bind-Token        → {}", r.status);
    let r = cloud.handle(&HttpRequest::new(
        "/business/report",
        format!("deviceId=D-100&token={token}"),
    ));
    println!("  ① valid Bind-Token         → {}", r.status);
    assert_eq!(r.status, ResponseStatus::RequestOk);
    let sig = mac::derive_signature("factory-secret", "D-100");
    let r = cloud.handle(&HttpRequest::new(
        "/business/upload",
        format!("deviceId=D-100&sign={sig}"),
    ));
    println!("  ② Signature = f(Dev-Secret) → {}", r.status);
    assert_eq!(r.status, ResponseStatus::RequestOk);
    println!("\nevery check above is what the Table III endpoints *fail* to perform.");
}
