//! Regenerates paper Table III: summary of discovered vulnerabilities.
//!
//! The pipeline reconstructs each device's messages, the probe harness
//! forges them against the simulated vendor clouds, and a finding is
//! confirmed when a forged request is fully accepted by an endpoint whose
//! policy audits as flawed. The paper found 14 vulnerabilities (13
//! previously unknown + 1 known) across 8 devices.
//!
//! Usage: `cargo run -p firmres-bench --bin table3`

use firmres::{analyze_firmware, AnalysisConfig};
use firmres_bench::{discover_vulnerabilities, render_table};
use firmres_corpus::generate_corpus;

fn main() {
    eprintln!("generating corpus and probing clouds…\n");
    let corpus = generate_corpus(7);
    let config = AnalysisConfig::default();
    let mut rows = Vec::new();
    let mut total = 0;
    let mut known = 0;
    let mut flagged_total = 0;
    for dev in corpus.iter().filter(|d| d.cloud_executable.is_some()) {
        let analysis = analyze_firmware(&dev.firmware, None, &config);
        flagged_total += analysis.flagged().count();
        for v in discover_vulnerabilities(dev, &analysis) {
            total += 1;
            if v.known {
                known += 1;
            }
            let leak = if v.leaked.is_empty() {
                String::new()
            } else {
                format!(
                    " [leaks: {}]",
                    v.leaked
                        .iter()
                        .map(|(k, _)| k.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            rows.push(vec![
                v.device.to_string(),
                v.functionality.clone(),
                v.path.clone(),
                v.params.join("/"),
                v.flaw.to_string(),
                format!("{}{leak}", v.consequence),
            ]);
        }
    }
    println!("Table III — discovered vulnerabilities (measured):");
    println!(
        "{}",
        render_table(
            &[
                "Dev",
                "Functionality",
                "Path / Method",
                "Params",
                "Flaw class",
                "Consequence"
            ],
            &rows
        )
    );
    println!(
        "confirmed vulnerabilities: {total} ({} previously unknown + {known} known; paper: 13 + 1)",
        total - known
    );
    println!(
        "form-check reports across the corpus: {flagged_total} flawed messages, {total} confirmed (paper: 26 reported, 15 confirmed)"
    );
}
