//! Regenerates paper Table IV: comparison with LEAKSCOPE and
//! IOT-APISCANNER.
//!
//! The FIRMRES row is *measured* from this reproduction (tested cloud
//! interfaces = valid reconstructed messages; recovery accuracy = valid /
//! identified). The other two rows are the paper's reported values —
//! those tools analyze mobile apps, which is out of scope here.
//!
//! Usage: `cargo run -p firmres-bench --bin table4`

use firmres::{analyze_firmware, AnalysisConfig};
use firmres_bench::{render_table, score_analysis};
use firmres_corpus::generate_corpus;

fn main() {
    eprintln!("measuring the FIRMRES row…\n");
    let corpus = generate_corpus(7);
    let config = AnalysisConfig::default();
    let mut identified = 0usize;
    let mut valid = 0usize;
    for dev in corpus.iter().filter(|d| d.cloud_executable.is_some()) {
        let analysis = analyze_firmware(&dev.firmware, None, &config);
        let s = score_analysis(dev, &analysis);
        identified += s.identified_messages;
        valid += s.valid_messages;
    }
    let accuracy = 100.0 * valid as f64 / identified as f64;
    let rows = vec![
        vec![
            "FIRMRES (this reproduction)".into(),
            "IoT firmware".into(),
            "IoT vendor clouds (simulated)".into(),
            valid.to_string(),
            format!("{accuracy:.1}% (paper 87.5%)"),
        ],
        vec![
            "LEAKSCOPE (paper-reported)".into(),
            "Mobile app".into(),
            "AWS, Azure, FireBase".into(),
            "32".into(),
            "100%".into(),
        ],
        vec![
            "IOT-APISCANNER (paper-reported)".into(),
            "Mobile IoT app".into(),
            "IoT platforms".into(),
            "157".into(),
            "100%".into(),
        ],
    ];
    println!("Table IV — comparison of existing works:");
    println!(
        "{}",
        render_table(
            &[
                "Tool",
                "Inputs",
                "Target cloud platforms",
                "#Cloud interfaces",
                "Recovery accuracy"
            ],
            &rows
        )
    );
    println!(
        "\nNote: LEAKSCOPE/IOT-APISCANNER are dynamic-analysis tools over mobile apps\n\
         with documented APIs; their 100% recovery and interface counts are quoted\n\
         from the paper. FIRMRES's static reconstruction trades accuracy for reach\n\
         into undocumented vendor clouds — the same trade-off the paper reports."
    );
}
