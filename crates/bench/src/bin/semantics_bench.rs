//! Semantics-stage batching gate: per-slice vs batched vs batched +
//! certified-None-prefilter vs corpus-deduped classification.
//!
//! Harvests every rendered slice from the 22-device synthetic corpus
//! plus a 200-device synthetic fleet (grouped per device, the
//! granularity `semantics_unit` batches at), trains the semantics
//! model on the corpus slices, then times four classification paths
//! over the identical slice groups:
//!
//! - **per_slice** — the pre-batching baseline, reproduced
//!   arithmetic-for-arithmetic in [`baseline`]: a per-device memo, a
//!   map-accumulating featurizer, nested per-class weight rows and a
//!   full softmax per slice — what the semantics stage cost before
//!   this change.
//! - **batch** — [`Classifier::predict_batch`] per device, prefilter
//!   off: one featurizer pass, argmax-only scoring.
//! - **batch_prefilter** — `predict_batch` with the certified None
//!   pre-filter proving weak-evidence slices cannot leave `None`.
//! - **corpus_cache** — a fresh corpus-wide [`ClassCache`] per rep:
//!   batched + prefiltered classification deduped across the whole
//!   fleet (shared wrapper slices hit after their first device).
//!
//! Every path must produce **identical labels** for every slice — the
//! batch kernel, the prefilter and the cache are transparent
//! optimizations, and this binary exits non-zero if any label differs
//! (or if the full-stack speedup falls below the optional floor, which
//! `scripts/check.sh` sets at the 1.5× acceptance threshold).
//!
//! Usage:
//! `cargo run --release -p firmres-bench --bin semantics_bench [out.json] [min-speedup]`

use firmres::{analyze_firmware, AnalysisConfig};
use firmres_corpus::synth_device;
use firmres_semantics::{ClassCache, Classifier, Primitive};
use std::time::Instant;

/// The semantics classification path exactly as it stood before the
/// batching rework, reproduced here so the before/after comparison
/// measures the historical cost rather than today's shared kernel:
/// tokens stream into an arena but counts accumulate through an
/// ordered map, weights live in nested per-class rows (bias at index
/// [`firmres_semantics::FEATURE_DIM`]), every slice pays a full
/// softmax, and duplicate
/// texts within one device are answered from a memo.
mod baseline {
    use firmres_semantics::{for_each_token, Primitive, FEATURE_DIM};
    use std::collections::{BTreeMap, HashMap};

    fn hash_feature(parts: &[&str]) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for p in parts {
            for b in p.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0x1f;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) % FEATURE_DIM
    }

    /// The historical reusable-buffer featurizer: arena + ordered map.
    #[derive(Default)]
    pub struct Featurizer {
        arena: String,
        bounds: Vec<(usize, usize)>,
        counts: BTreeMap<usize, f32>,
    }

    impl Featurizer {
        fn features(&mut self, text: &str) -> Vec<(usize, f32)> {
            self.arena.clear();
            self.bounds.clear();
            let (arena, bounds) = (&mut self.arena, &mut self.bounds);
            for_each_token(text, |t| {
                let start = arena.len();
                arena.push_str(t);
                bounds.push((start, arena.len()));
            });
            self.counts.clear();
            let token = |i: usize| &self.arena[self.bounds[i].0..self.bounds[i].1];
            for i in 0..self.bounds.len() {
                *self.counts.entry(hash_feature(&[token(i)])).or_default() += 1.0;
            }
            for width in 2..=5usize {
                if self.bounds.len() < width {
                    break;
                }
                let mut window = [""; 5];
                for start in 0..=self.bounds.len() - width {
                    for (k, slot) in window[..width].iter_mut().enumerate() {
                        *slot = token(start + k);
                    }
                    *self
                        .counts
                        .entry(hash_feature(&window[..width]))
                        .or_default() += 0.5;
                }
            }
            let norm: f32 = self.counts.values().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 0.0 {
                for v in self.counts.values_mut() {
                    *v /= norm;
                }
            }
            self.counts.iter().map(|(&i, &v)| (i, v)).collect()
        }
    }

    fn softmax_scores(weights: &[Vec<f32>], fv: &[(usize, f32)]) -> Vec<f32> {
        let mut scores: Vec<f32> = weights
            .iter()
            .map(|w| {
                let mut s = w[FEATURE_DIM];
                for (j, x) in fv {
                    s += w[*j] * x;
                }
                s
            })
            .collect();
        let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for s in &mut scores {
            *s = (*s - max).exp();
            sum += *s;
        }
        for s in &mut scores {
            *s /= sum;
        }
        scores
    }

    fn argmax(xs: &[f32]) -> usize {
        xs.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// One device's worth of pre-batching classification.
    pub struct PerDevice<'a> {
        weights: &'a [Vec<f32>],
        memo: HashMap<String, Primitive>,
        scratch: Featurizer,
    }

    impl<'a> PerDevice<'a> {
        pub fn new(weights: &'a [Vec<f32>]) -> Self {
            PerDevice {
                weights,
                memo: HashMap::new(),
                scratch: Featurizer::default(),
            }
        }

        pub fn classify(&mut self, text: &str) -> Primitive {
            if let Some(&label) = self.memo.get(text) {
                return label;
            }
            let fv = self.scratch.features(text);
            let probs = softmax_scores(self.weights, &fv);
            let label = Primitive::from_index(argmax(&probs)).expect("valid index");
            self.memo.insert(text.to_string(), label);
            label
        }
    }
}

/// Slice texts of one device, in rendering order — the unit the
/// pipeline hands to classification in one batch.
type Group = Vec<String>;

/// Analyze `packed` images and harvest each device's rendered slice
/// texts as one group.
fn harvest(images: &[Vec<u8>], config: &AnalysisConfig) -> Vec<Group> {
    images
        .iter()
        .map(|packed| {
            let fw = firmres_firmware::FirmwareImage::unpack(packed).expect("image unpacks");
            let analysis = analyze_firmware(&fw, None, config);
            let mut group = Vec::new();
            for record in analysis.identified() {
                for slice in &record.slices {
                    group.push(slice.text.clone());
                }
            }
            group
        })
        .collect()
}

struct Pass {
    wall_ms: f64,
    labels: Vec<Vec<Primitive>>,
    prefilter_skips: u64,
    cache_hits: u64,
}

/// One timed classification pass over every group.
fn run_pass(groups: &[Group], model: &Classifier, mode: &str) -> Pass {
    let dense = model.dense_weights();
    let corpus_cache = ClassCache::new(0);
    let mut labels = Vec::with_capacity(groups.len());
    let mut prefilter_skips = 0u64;
    let t = Instant::now();
    for group in groups {
        let texts: Vec<&str> = group.iter().map(String::as_str).collect();
        labels.push(match mode {
            "per_slice" => {
                let mut memo = baseline::PerDevice::new(&dense);
                texts.iter().map(|text| memo.classify(text)).collect()
            }
            "batch" | "batch_prefilter" => {
                let outcome = model.predict_batch(&texts, mode == "batch_prefilter");
                prefilter_skips += outcome.prefilter_skips;
                outcome.labels
            }
            "corpus_cache" => corpus_cache.classify_batch(Some(model), &texts),
            other => unreachable!("unknown mode {other}"),
        });
    }
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let stats = corpus_cache.stats();
    Pass {
        wall_ms,
        labels,
        prefilter_skips: prefilter_skips.max(stats.prefilter_skips),
        cache_hits: stats.hits,
    }
}

/// Best-of-`reps` pass (labels are deterministic, so the first rep's
/// labels stand for all of them).
fn best_pass(groups: &[Group], model: &Classifier, mode: &str, reps: usize) -> Pass {
    let mut best: Option<Pass> = None;
    for _ in 0..reps {
        let p = run_pass(groups, model, mode);
        best = match best {
            Some(b) if b.wall_ms <= p.wall_ms => Some(b),
            _ => Some(p),
        };
    }
    best.expect("reps >= 1")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_semantics.json".to_string());
    let min_speedup: Option<f64> = std::env::args().nth(2).map(|s| {
        s.parse()
            .unwrap_or_else(|_| panic!("min-speedup must be a number, got {s:?}"))
    });

    let config = AnalysisConfig::default();

    eprintln!("generating + analyzing the 22-device corpus…");
    let corpus = firmres_corpus::generate_corpus(7);
    let corpus_analyses: Vec<_> = corpus
        .iter()
        .map(|dev| (dev, analyze_firmware(&dev.firmware, None, &config)))
        .collect();
    let dataset = firmres_bench::build_slice_dataset(&corpus_analyses);
    eprintln!("training the semantics model on {} slices…", dataset.len());
    let (model, _, _) = firmres_bench::train_semantics_model(&dataset, 7);

    let fleet_count = 200u32;
    eprintln!("generating + analyzing a {fleet_count}-device synthetic fleet…");
    let fleet: Vec<Vec<u8>> = (0..fleet_count)
        .map(|i| synth_device(i, 7).packed)
        .collect();
    let mut groups: Vec<Group> = corpus_analyses
        .iter()
        .map(|(_, analysis)| {
            let mut group = Vec::new();
            for record in analysis.identified() {
                for slice in &record.slices {
                    group.push(slice.text.clone());
                }
            }
            group
        })
        .collect();
    groups.extend(harvest(&fleet, &config));
    let total_slices: usize = groups.iter().map(Vec::len).sum();
    eprintln!(
        "{} device group(s), {total_slices} slice(s) total",
        groups.len()
    );

    // Warm pass so the first timed configuration is not penalized for
    // faulting pages in.
    let _ = run_pass(&groups, &model, "batch");

    let reps = 3;
    let per_slice = best_pass(&groups, &model, "per_slice", reps);
    let batch = best_pass(&groups, &model, "batch", reps);
    let prefiltered = best_pass(&groups, &model, "batch_prefilter", reps);
    let cached = best_pass(&groups, &model, "corpus_cache", reps);

    let mut failures = 0;
    let mut identical = true;
    for (name, pass) in [
        ("batch", &batch),
        ("batch_prefilter", &prefiltered),
        ("corpus_cache", &cached),
    ] {
        if pass.labels != per_slice.labels {
            eprintln!("FAIL: {name} labels differ from the per-slice reference");
            identical = false;
            failures += 1;
        }
    }

    let speedup_batch = per_slice.wall_ms / batch.wall_ms.max(1e-9);
    let speedup_full = per_slice.wall_ms / cached.wall_ms.max(1e-9);
    if let Some(floor) = min_speedup {
        if speedup_full < floor {
            eprintln!("FAIL: {speedup_full:.2}x full-stack speedup is below the {floor}x floor");
            failures += 1;
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"semantics_batching\",\n",
            "  \"devices\": {devices},\n",
            "  \"slices\": {slices},\n",
            "  \"reps\": {reps},\n",
            "  \"per_slice_ms\": {per_slice_ms:.3},\n",
            "  \"batch_ms\": {batch_ms:.3},\n",
            "  \"batch_prefilter_ms\": {prefilter_ms:.3},\n",
            "  \"corpus_cache_ms\": {cached_ms:.3},\n",
            "  \"prefilter_skips\": {prefilter_skips},\n",
            "  \"corpus_cache_hits\": {cache_hits},\n",
            "  \"speedup_batch\": {speedup_batch:.2},\n",
            "  \"speedup_full\": {speedup_full:.2},\n",
            "  \"labels_identical\": {identical}\n",
            "}}\n"
        ),
        devices = groups.len(),
        slices = total_slices,
        reps = reps,
        per_slice_ms = per_slice.wall_ms,
        batch_ms = batch.wall_ms,
        prefilter_ms = prefiltered.wall_ms,
        cached_ms = cached.wall_ms,
        prefilter_skips = prefiltered.prefilter_skips,
        cache_hits = cached.cache_hits,
        speedup_batch = speedup_batch,
        speedup_full = speedup_full,
        identical = identical,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!(
        "semantics: per-slice {:.1} ms | batch {:.1} ms | +prefilter {:.1} ms | +corpus cache {:.1} ms | {speedup_full:.2}x | labels identical: {identical}",
        per_slice.wall_ms, batch.wall_ms, prefiltered.wall_ms, cached.wall_ms
    );
    println!("wrote {out_path}");
    if failures > 0 {
        std::process::exit(1);
    }
}
