//! # firmres-bench
//!
//! Evaluation harness: scores the FIRMRES pipeline against the synthetic
//! corpus ground truth and regenerates every table and figure of the
//! paper's evaluation section (see DESIGN.md's experiment index).
//!
//! The binaries in `src/bin/` print the artifacts; this library holds the
//! shared scoring logic so integration tests can assert on the same
//! numbers the tables report.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use firmres::{analyze_firmware, fill_message, probe_cloud, AnalysisConfig, FirmwareAnalysis};
use firmres_cloud::FlawClass;
use firmres_corpus::{GeneratedDevice, SprintfUsage};
use firmres_mft::cluster_count;
use firmres_semantics::{split_dataset, weak_label, Classifier, Primitive, TrainConfig};

/// Per-device evaluation results — one row of the reproduced Table II.
#[derive(Debug, Clone)]
pub struct DeviceScore {
    /// Device id (1–22).
    pub id: u8,
    /// Messages identified (non-LAN, non-echo delivery callsites).
    pub identified_messages: usize,
    /// Messages whose probe response validates the reconstruction.
    pub valid_messages: usize,
    /// Total reconstructed fields across identified messages.
    pub fields_identified: usize,
    /// Fields confirmed against the ground-truth plans.
    pub fields_confirmed: usize,
    /// Confirmed fields whose recovered semantic matches the truth.
    pub semantics_accurate: usize,
    /// Format-string cluster counts at thresholds 0.5 / 0.6 / 0.7, when
    /// the device uses multi-field `sprintf` assembly.
    pub clusters: Option<(usize, usize, usize)>,
    /// Messages flagged by the automatic form check.
    pub flagged_messages: usize,
}

/// One confirmed vulnerability — a row of the reproduced Table III.
#[derive(Debug, Clone)]
pub struct VulnFinding {
    /// Device id.
    pub device: u8,
    /// Endpoint functionality description.
    pub functionality: String,
    /// Endpoint path/method.
    pub path: String,
    /// Parameters of the probing message.
    pub params: Vec<String>,
    /// Consequence statement.
    pub consequence: String,
    /// Audited flaw class.
    pub flaw: FlawClass,
    /// Values leaked by the successful forged request.
    pub leaked: Vec<(String, String)>,
    /// Whether this is the known (previously disclosed) vulnerability.
    pub known: bool,
}

/// Run the full pipeline on one generated device and score it against its
/// ground truth.
pub fn evaluate_device(dev: &GeneratedDevice, classifier: Option<&Classifier>) -> DeviceScore {
    let analysis = analyze_firmware(&dev.firmware, classifier, &AnalysisConfig::default());
    score_analysis(dev, &analysis)
}

/// Score an existing analysis (lets callers reuse one run for several
/// tables).
pub fn score_analysis(dev: &GeneratedDevice, analysis: &FirmwareAnalysis) -> DeviceScore {
    let mut identified = 0usize;
    let mut valid = 0usize;
    let mut fields_identified = 0usize;
    let mut fields_confirmed = 0usize;
    let mut semantics_accurate = 0usize;
    let mut flagged = 0usize;
    let mut templates: Vec<String> = Vec::new();

    for record in analysis.identified() {
        identified += 1;
        if !record.flaws.is_empty() {
            flagged += 1;
        }
        if let Some(t) = &record.message.template {
            templates.push(t.clone());
        }
        // Probe validity (paper §V-C).
        let filled = fill_message(&record.message, &dev.firmware);
        let outcome = probe_cloud(&dev.cloud, &filled);
        if outcome.status.validates_message() {
            valid += 1;
        }
        let plan = dev.plans.iter().find(|p| p.func_name == record.function);
        // Identified fields = reconstructed key/value fields plus the
        // over-taint *noise* leaves the taint analysis surfaced (numeric
        // constants and unresolved operands — the paper's "irrelevant
        // items identified as message fields").
        let noise = record
            .slices
            .iter()
            .filter(|s| match plan {
                Some(p) => leaf_truth(&s.source, p).is_none(),
                None => !s.source.is_concrete(),
            })
            .count();
        fields_identified += record.message.fields.len() + noise;
        let Some(plan) = plan else { continue };
        // Confirmation: a reconstructed field is required when its key is
        // planned (routing/endpoint literals are construction-required
        // too); the noise leaves stay unconfirmed.
        for field in &record.message.fields {
            let (confirmed, truth) = match &field.key {
                Some(key) if key == "path" || key == "method" => {
                    let t = plan
                        .fields
                        .iter()
                        .find(|pf| &pf.key == key)
                        .map_or(Primitive::None, |pf| pf.semantic);
                    (true, t)
                }
                Some(key) => match plan.fields.iter().find(|pf| &pf.key == key) {
                    Some(pf) => (true, pf.semantic),
                    None => (false, Primitive::None),
                },
                None => (
                    field.origin.to_string().contains(plan.endpoint.as_str()),
                    Primitive::None,
                ),
            };
            if !confirmed {
                continue;
            }
            fields_confirmed += 1;
            let recovered = field
                .semantic
                .as_deref()
                .and_then(|s| Primitive::ALL.into_iter().find(|p| p.label() == s))
                .unwrap_or(Primitive::None);
            if recovered == truth {
                semantics_accurate += 1;
            }
        }
    }

    let clusters = match dev.spec.sprintf {
        SprintfUsage::MultiField | SprintfUsage::SingleField => {
            let refs: Vec<&str> = templates
                .iter()
                .filter(|t| t.matches('%').count() > 1)
                .map(String::as_str)
                .collect();
            Some((
                cluster_count(&refs, 0.5),
                cluster_count(&refs, 0.6),
                cluster_count(&refs, 0.7),
            ))
        }
        SprintfUsage::None => None,
    };

    DeviceScore {
        id: dev.spec.id,
        identified_messages: identified,
        valid_messages: valid,
        fields_identified,
        fields_confirmed,
        semantics_accurate,
        clusters,
        flagged_messages: flagged,
    }
}

/// Ground-truth check for one taint leaf: `None` when the leaf is
/// over-taint noise (unconfirmed), `Some(truth)` with the field's true
/// primitive when it corresponds to a planned construction input.
pub fn leaf_truth(
    source: &firmres_dataflow::FieldSource,
    plan: &firmres_corpus::MessagePlan,
) -> Option<Primitive> {
    use firmres_corpus::ValueSource;
    use firmres_dataflow::{FieldSource, SourceKind};
    match source {
        FieldSource::LibCall { kind, callee, key } => {
            let key = key.as_deref().unwrap_or("");
            let matched = plan.fields.iter().find(|f| match (&f.source, kind) {
                (ValueSource::NvramGet(k), SourceKind::Nvram) => k == key,
                (ValueSource::CfgGet(k), SourceKind::ConfigFile) => k == key,
                (ValueSource::GetEnv(k), SourceKind::Environment) => k == key,
                (ValueSource::Getter(import), SourceKind::HardwareId) => import == callee,
                (ValueSource::Time, SourceKind::Time) => true,
                _ => false,
            });
            if let Some(f) = matched {
                return Some(f.semantic);
            }
            // The signature derivation reads the secret from NVRAM.
            if *kind == SourceKind::Nvram
                && key == "device_secret"
                && plan.fields.iter().any(|f| f.source == ValueSource::Signed)
            {
                return Some(Primitive::Signature);
            }
            None
        }
        FieldSource::StringConstant { value, .. } => {
            // Hard-coded field values.
            if let Some(f) = plan
                .fields
                .iter()
                .find(|f| matches!(&f.source, ValueSource::Hardcoded(v) if v == value))
            {
                return Some(f.semantic);
            }
            // The signature derivation's data constant.
            if value == "sign-data" && plan.fields.iter().any(|f| f.source == ValueSource::Signed) {
                return Some(Primitive::Signature);
            }
            // Key literals and short key pieces: semantics of the named
            // field.
            if let Some(f) = plan
                .fields
                .iter()
                .find(|f| value.contains(f.key.as_str()) && value.len() <= f.key.len() + 6)
            {
                return Some(f.semantic);
            }
            // Templates / endpoint prefixes / JSON scaffolding: required
            // construction constants without their own primitive.
            let is_template = plan.fields.iter().any(|f| value.contains(f.key.as_str()));
            let trimmed = value.trim_end_matches('?');
            let is_endpoint = !plan.endpoint.is_empty()
                && (value.contains(plan.endpoint.as_str())
                    || plan.endpoint.contains(trimmed) && trimmed.len() > 1);
            let is_scaffold = value == "path" || value == "method";
            if is_template || is_endpoint || is_scaffold {
                return Some(Primitive::None);
            }
            None
        }
        // Numeric constants and unresolved operands are the paper's
        // "irrelevant items identified as message fields".
        _ => None,
    }
}

/// Probe every identified message of a device and return confirmed
/// vulnerabilities (forged request fully accepted against an endpoint
/// whose policy audits as flawed — the paper's manual-verification
/// criterion, automated).
pub fn discover_vulnerabilities(
    dev: &GeneratedDevice,
    analysis: &FirmwareAnalysis,
) -> Vec<VulnFinding> {
    let mut findings = Vec::new();
    for record in analysis.identified() {
        let filled = fill_message(&record.message, &dev.firmware);
        let outcome = probe_cloud(&dev.cloud, &filled);
        if !outcome.forged_accepted() {
            continue;
        }
        let Some(endpoint) = dev
            .cloud
            .endpoints()
            .iter()
            .find(|e| Some(e.path.as_str()) == filled.endpoint.as_deref())
        else {
            continue;
        };
        let Some(flaw) = endpoint.flaw() else {
            continue;
        };
        let Some(consequence) = &endpoint.consequence else {
            continue;
        };
        findings.push(VulnFinding {
            device: dev.spec.id,
            functionality: endpoint.functionality.clone(),
            path: endpoint.path.clone(),
            params: filled.params.keys().cloned().collect(),
            consequence: consequence.clone(),
            flaw,
            leaked: outcome.leaked,
            known: consequence.contains("known vulnerability"),
        });
    }
    findings.sort_by(|a, b| a.path.cmp(&b.path));
    findings.dedup_by(|a, b| a.path == b.path);
    findings
}

/// Training corpus for the semantics model: slices harvested from every
/// analyzed device, weak-labeled with the keyword dictionaries (the
/// paper's bootstrap labeling).
pub fn build_slice_dataset(
    analyses: &[(&GeneratedDevice, FirmwareAnalysis)],
) -> Vec<(String, Primitive)> {
    let mut data = Vec::new();
    for (_, analysis) in analyses {
        for record in analysis.identified() {
            for slice in &record.slices {
                data.push((slice.text.clone(), weak_label(&slice.text)));
            }
        }
    }
    data
}

/// Train the semantics classifier on a slice dataset with the paper's
/// 7:2:1 protocol; returns `(model, validation accuracy, test accuracy)`.
pub fn train_semantics_model(data: &[(String, Primitive)], seed: u64) -> (Classifier, f64, f64) {
    let split = split_dataset(data, seed);
    let config = TrainConfig {
        epochs: 30,
        ..TrainConfig::default()
    };
    let model = Classifier::train(&split.train, &config);
    let val = model.accuracy(&split.validation);
    let test = model.accuracy(&split.test);
    (model, val, test)
}

/// Render an ASCII table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    " {:<width$} ",
                    c,
                    width = widths.get(i).copied().unwrap_or(4)
                )
            })
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_corpus::generate_device;

    #[test]
    fn scores_one_device_sensibly() {
        let dev = generate_device(15, 7);
        let score = evaluate_device(&dev, None);
        assert_eq!(score.identified_messages, dev.spec.target_messages);
        assert!(score.valid_messages <= score.identified_messages);
        assert!(score.fields_confirmed <= score.fields_identified);
        assert!(score.semantics_accurate <= score.fields_confirmed);
        assert!(score.fields_identified >= dev.spec.target_fields / 2);
    }

    #[test]
    fn validity_tracks_stale_endpoints() {
        let dev = generate_device(12, 7); // 4 invalid plans
        let score = evaluate_device(&dev, None);
        assert_eq!(
            score.identified_messages - score.valid_messages,
            dev.spec.target_invalid,
            "stale endpoints are exactly the invalid messages"
        );
    }

    #[test]
    fn cve_is_rediscovered_on_device_11() {
        let dev = generate_device(11, 7);
        let analysis =
            firmres::analyze_firmware(&dev.firmware, None, &firmres::AnalysisConfig::default());
        let vulns = discover_vulnerabilities(&dev, &analysis);
        assert_eq!(vulns.len(), 1);
        assert!(vulns[0].known);
        assert!(
            vulns[0]
                .leaked
                .iter()
                .any(|(k, v)| k == "certificate" && v == &dev.identity.secret),
            "the device certificate leaks: {:?}",
            vulns[0].leaked
        );
    }

    #[test]
    fn leaf_truth_maps_sources_to_plan_semantics() {
        use firmres_corpus::{
            BodyStyle, Delivery, MessagePlan, PlanField, PlanPolicy, PlanResponse, ValueSource,
        };
        use firmres_dataflow::{FieldSource, SourceKind};
        let plan = MessagePlan {
            index: 0,
            func_name: "snd_00".into(),
            delivery: Delivery::HttpPost,
            endpoint: "/api/x".into(),
            style: BodyStyle::SprintfQuery,
            fields: vec![
                PlanField {
                    key: "mac".into(),
                    semantic: Primitive::DevIdentifier,
                    source: ValueSource::Getter("get_mac_addr"),
                },
                PlanField {
                    key: "sign".into(),
                    semantic: Primitive::Signature,
                    source: ValueSource::Signed,
                },
                PlanField {
                    key: "note".into(),
                    semantic: Primitive::None,
                    source: ValueSource::Hardcoded("fixed-note".into()),
                },
            ],
            on_cloud: true,
            lan: false,
            policy: PlanPolicy::Secure,
            response: PlanResponse::Ok,
            functionality: "Test.".into(),
            consequence: None,
        };
        // Getter source maps by callee name.
        let src = FieldSource::LibCall {
            kind: SourceKind::HardwareId,
            callee: "get_mac_addr".into(),
            key: Some("mac".into()),
        };
        assert_eq!(leaf_truth(&src, &plan), Some(Primitive::DevIdentifier));
        // The signature's nvram secret read maps to Signature.
        let src = FieldSource::LibCall {
            kind: SourceKind::Nvram,
            callee: "nvram_get".into(),
            key: Some("device_secret".into()),
        };
        assert_eq!(leaf_truth(&src, &plan), Some(Primitive::Signature));
        // Hard-coded values map to their field's semantic.
        let src = FieldSource::StringConstant {
            addr: 0,
            value: "fixed-note".into(),
        };
        assert_eq!(leaf_truth(&src, &plan), Some(Primitive::None));
        // Key literals map to the named field's semantic.
        let src = FieldSource::StringConstant {
            addr: 0,
            value: "&mac=".into(),
        };
        assert_eq!(leaf_truth(&src, &plan), Some(Primitive::DevIdentifier));
        // Templates covering several keys are construction constants.
        let src = FieldSource::StringConstant {
            addr: 0,
            value: "/api/x?mac=%s&sign=%s".into(),
        };
        assert_eq!(leaf_truth(&src, &plan), Some(Primitive::None));
        // Noise stays unconfirmed.
        assert_eq!(
            leaf_truth(&FieldSource::NumericConstant { value: 9 }, &plan),
            None
        );
        assert_eq!(
            leaf_truth(&FieldSource::Unresolved { reason: "x" }, &plan),
            None
        );
        let src = FieldSource::StringConstant {
            addr: 0,
            value: "unrelated garbage".into(),
        };
        assert_eq!(leaf_truth(&src, &plan), None);
    }

    #[test]
    fn table_rendering() {
        let t = render_table(&["a", "bb"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("a"));
        assert!(t.contains("---"));
        assert_eq!(t.lines().count(), 3);
    }
}
