//! Criterion micro-benchmarks for each pipeline stage and substrate
//! (DESIGN.md experiment E2 support): taint tracing, executable
//! identification, MFT construction and transformation, classifier
//! inference, firmware packing, cloud probing, and LCS clustering.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use firmres::{score_handlers, ExeIdConfig};
use firmres_corpus::generate_device;
use firmres_dataflow::TaintEngine;
use firmres_firmware::FirmwareImage;
use firmres_ir::Program;
use firmres_isa::lift;
use firmres_mft::{cluster, reconstruct, slices_for_tree, Mft};
use firmres_semantics::{Classifier, Primitive, TrainConfig};
use std::hint::black_box;

fn agent_program(id: u8) -> (Program, Vec<(u64, u64, usize)>) {
    let dev = generate_device(id, 7);
    let exe = dev
        .firmware
        .load_executable(dev.cloud_executable.as_deref().unwrap())
        .unwrap();
    let program = lift(&exe, "agent").unwrap();
    let mut callsites = Vec::new();
    for f in program.functions() {
        for op in f.callsites() {
            if let Some(name) = op.call_target().and_then(|t| program.callee_name(t)) {
                if let Some(arg) = firmres_dataflow::delivery_payload_arg(name) {
                    callsites.push((f.entry(), op.addr, arg));
                }
            }
        }
    }
    (program, callsites)
}

fn bench_taint(c: &mut Criterion) {
    let (program, callsites) = agent_program(13);
    c.bench_function("taint/trace_all_messages_dev13", |b| {
        b.iter(|| {
            let engine = TaintEngine::new(&program);
            let mut nodes = 0usize;
            for (func, addr, arg) in &callsites {
                nodes += engine.trace(*func, *addr, *arg).len();
            }
            black_box(nodes)
        })
    });
}

fn bench_exeid(c: &mut Criterion) {
    let (program, _) = agent_program(14);
    c.bench_function("exeid/score_handlers_dev14", |b| {
        b.iter(|| black_box(score_handlers(&program).len()))
    });
    c.bench_function("exeid/full_identification_dev14", |b| {
        b.iter(|| {
            black_box(firmres::identify_device_cloud(&program, &ExeIdConfig::default()).len())
        })
    });
}

fn bench_mft(c: &mut Criterion) {
    let (program, callsites) = agent_program(13);
    let engine = TaintEngine::new(&program);
    let trees: Vec<_> = callsites
        .iter()
        .map(|(f, a, arg)| engine.trace(*f, *a, *arg))
        .collect();
    c.bench_function("mft/build_simplify_invert", |b| {
        b.iter(|| {
            let mut n = 0;
            for t in &trees {
                let mft = Mft::from_taint(t);
                n += mft.simplified().inverted().len();
            }
            black_box(n)
        })
    });
    let mfts: Vec<Mft> = trees.iter().map(Mft::from_taint).collect();
    c.bench_function("mft/reconstruct_messages", |b| {
        b.iter(|| {
            let mut fields = 0;
            for m in &mfts {
                fields += reconstruct(m).fields.len();
            }
            black_box(fields)
        })
    });
    c.bench_function("mft/slice_generation", |b| {
        b.iter(|| {
            let mut n = 0;
            for m in &mfts {
                n += slices_for_tree(&program, m).len();
            }
            black_box(n)
        })
    });
}

fn bench_classifier(c: &mut Criterion) {
    let data: Vec<(String, Primitive)> = (0..200)
        .map(|i| {
            let (text, label) = match i % 4 {
                0 => (
                    format!("CALL (Fun, get_mac_addr) mac {i}"),
                    Primitive::DevIdentifier,
                ),
                1 => (
                    format!("(Cons, \"password\") login {i}"),
                    Primitive::UserCred,
                ),
                2 => (
                    format!("(Cons, \"token={i}\") session"),
                    Primitive::BindToken,
                ),
                _ => (format!("(Cons, \"ts={i}\")"), Primitive::None),
            };
            (text, label)
        })
        .collect();
    c.bench_function("semantics/train_200_slices_30_epochs", |b| {
        b.iter(|| {
            black_box(Classifier::train(
                &data,
                &TrainConfig {
                    epochs: 30,
                    ..Default::default()
                },
            ))
        })
    });
    let model = Classifier::train(
        &data,
        &TrainConfig {
            epochs: 30,
            ..Default::default()
        },
    );
    c.bench_function("semantics/predict_one_slice", |b| {
        b.iter(|| black_box(model.predict("CALL (Fun, nvram_get), (Cons, \"serial_no\")")))
    });
}

fn bench_firmware(c: &mut Criterion) {
    let dev = generate_device(14, 7);
    c.bench_function("firmware/pack_dev14", |b| {
        b.iter(|| black_box(dev.firmware.pack().len()))
    });
    let packed = dev.firmware.pack();
    c.bench_function("firmware/unpack_dev14", |b| {
        b.iter(|| black_box(FirmwareImage::unpack(&packed).unwrap().file_count()))
    });
    let exe_bytes = dev
        .firmware
        .executables()
        .next()
        .map(|(_, b)| b.to_vec())
        .unwrap();
    c.bench_function("isa/parse_and_lift_dev14_agent", |b| {
        b.iter_batched(
            || exe_bytes.clone(),
            |bytes| {
                let exe = firmres_isa::Executable::from_bytes(&bytes).unwrap();
                black_box(lift(&exe, "agent").unwrap().function_count())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cloud(c: &mut Criterion) {
    let dev = generate_device(20, 7);
    let body = format!("deviceId={}", dev.identity.device_id);
    c.bench_function("cloud/probe_storage_auth", |b| {
        b.iter(|| {
            let req =
                firmres_cloud::HttpRequest::new("/store-server/api/v1/storages/auth", body.clone());
            black_box(dev.cloud.handle(&req).status)
        })
    });
}

fn bench_clustering(c: &mut Criterion) {
    let items: Vec<String> = (0..64)
        .map(|i| format!("{}{}=%s", ["mac", "sn", "uid", "token"][i % 4], i))
        .collect();
    c.bench_function("lcs/cluster_64_chunks_thd06", |b| {
        b.iter(|| black_box(cluster(&items, 0.6).len()))
    });
}

criterion_group!(
    benches,
    bench_taint,
    bench_exeid,
    bench_mft,
    bench_classifier,
    bench_firmware,
    bench_cloud,
    bench_clustering
);
criterion_main!(benches);
