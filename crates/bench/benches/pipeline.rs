//! Criterion end-to-end pipeline benchmarks, including the DESIGN.md
//! ablations: over-tainting on/off and per-device scaling (small, medium
//! and large corpora — devices 15, 10 and 14).

use criterion::{criterion_group, criterion_main, Criterion};
use firmres::{analyze_firmware, AnalysisConfig};
use firmres_corpus::{generate_device, GeneratedDevice};
use std::hint::black_box;

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/full");
    group.sample_size(20);
    for (label, id) in [
        ("small_dev15", 15u8),
        ("medium_dev10", 10),
        ("large_dev14", 14),
    ] {
        let dev: GeneratedDevice = generate_device(id, 7);
        group.bench_function(label, |b| {
            b.iter(|| {
                let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
                black_box(analysis.identified().count())
            })
        });
    }
    group.finish();
}

fn bench_overtaint_ablation(c: &mut Criterion) {
    let dev = generate_device(13, 7);
    let mut group = c.benchmark_group("pipeline/overtaint_ablation");
    group.sample_size(20);
    let mut on = AnalysisConfig::default();
    on.taint.overtaint = true;
    let mut off = AnalysisConfig::default();
    off.taint.overtaint = false;
    group.bench_function("overtaint_on", |b| {
        b.iter(|| {
            let a = analyze_firmware(&dev.firmware, None, &on);
            black_box(a.identified().map(|m| m.slices.len()).sum::<usize>())
        })
    });
    group.bench_function("overtaint_off", |b| {
        b.iter(|| {
            let a = analyze_firmware(&dev.firmware, None, &off);
            black_box(a.identified().map(|m| m.slices.len()).sum::<usize>())
        })
    });
    group.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus/generate");
    group.sample_size(20);
    group.bench_function("device14_full_generation", |b| {
        b.iter(|| black_box(generate_device(14, 7).plans.len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_pipeline,
    bench_overtaint_ablation,
    bench_corpus_generation
);
criterion_main!(benches);
