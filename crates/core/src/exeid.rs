//! Pinpointing device-cloud executables (paper §IV-A, Fig. 4).
//!
//! Two-step identification: (1) find request handlers by pairing
//! incoming/outgoing anchor callsites and scoring the functions between
//! them with the string-parsing factor `P_f = O_r / O` (Eq. 1); (2) keep
//! only *asynchronous* handlers — those whose recv-containing function is
//! never directly invoked (event-callback registration). An executable
//! containing at least one asynchronous handler is a device-cloud
//! executable.

use firmres_dataflow::{incoming_buffer_arg, is_outgoing, resolve_region, DefUse, OpRef, Region};
use firmres_ir::{Address, Function, Opcode, PcodeOp, Program, Varnode};
use std::collections::BTreeMap;

/// Identification tuning.
#[derive(Debug, Clone)]
pub struct ExeIdConfig {
    /// Minimum string-parsing score for a sequence to count as a request
    /// handler.
    pub score_threshold: f64,
}

impl Default for ExeIdConfig {
    fn default() -> Self {
        ExeIdConfig {
            score_threshold: 0.3,
        }
    }
}

/// One scored anchor pair / candidate handler.
#[derive(Debug, Clone)]
pub struct HandlerInfo {
    /// Function containing the incoming (`recv`) anchor.
    pub handler_func: Address,
    /// Name of that function.
    pub handler_name: String,
    /// The incoming anchor callsite.
    pub recv_callsite: Address,
    /// The paired outgoing anchor callsite.
    pub send_callsite: Address,
    /// Call-graph distance between the anchors' functions.
    pub distance: usize,
    /// The string-parsing factor score (max `P_f` over the sequence).
    pub score: f64,
    /// Whether the handler is asynchronously invoked.
    pub is_async: bool,
}

/// Compute all scored anchor pairs in `program` (step 1 of §IV-A).
pub fn score_handlers(program: &Program) -> Vec<HandlerInfo> {
    let cg = program.call_graph();
    // Collect anchors: (function entry, callsite op).
    let mut incoming: Vec<(Address, PcodeOp)> = Vec::new();
    let mut outgoing: Vec<(Address, PcodeOp)> = Vec::new();
    for f in program.functions() {
        for op in f.callsites() {
            let Some(name) = op.call_target().and_then(|t| program.callee_name(t)) else {
                continue;
            };
            if incoming_buffer_arg(name).is_some() {
                incoming.push((f.entry(), op.clone()));
            }
            if is_outgoing(name) {
                outgoing.push((f.entry(), op.clone()));
            }
        }
    }
    let mut out = Vec::new();
    let mut defuse: BTreeMap<Address, DefUse> = BTreeMap::new();
    for (in_func, in_op) in &incoming {
        // Pair with the closest outgoing anchor on the call graph.
        let mut best: Option<(usize, &(Address, PcodeOp))> = None;
        for o in &outgoing {
            let d = if o.0 == *in_func {
                0
            } else {
                match cg.distance(*in_func, o.0) {
                    Some(d) => d,
                    None => continue,
                }
            };
            if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                best = Some((d, o));
            }
        }
        let Some((distance, (out_func, out_op))) = best else {
            continue;
        };
        // The candidate sequence: functions on the path between anchors.
        let mut sequence = cg.path(*in_func, *out_func);
        if sequence.is_empty() {
            sequence = cg.path(*out_func, *in_func);
        }
        if sequence.is_empty() {
            sequence = vec![*in_func];
        }
        let mut score: f64 = 0.0;
        for func in &sequence {
            let Some(f) = program.function(*func) else {
                continue;
            };
            let du = defuse.entry(*func).or_insert_with(|| DefUse::compute(f));
            let pf = string_parsing_factor(
                program,
                f,
                du,
                if *func == *in_func { Some(in_op) } else { None },
            );
            score = score.max(pf);
        }
        let handler_f = program.function(*in_func).expect("anchor function exists");
        let is_async = !cg.has_callers(*in_func);
        out.push(HandlerInfo {
            handler_func: *in_func,
            handler_name: handler_f.name().to_string(),
            recv_callsite: in_op.addr,
            send_callsite: out_op.addr,
            distance,
            score,
            is_async,
        });
    }
    out
}

/// `P_f = O_r / O` for one function: the fraction of predicate operands
/// originating from the incoming request (the `recv` buffer).
///
/// When `in_op` is `None` (the function does not contain the recv anchor
/// itself), operands cannot originate from the request and `P_f` is 0 —
/// a sound under-approximation for sequences whose parsing happens in the
/// anchor function, which is where generated and real-world handlers
/// parse.
pub fn string_parsing_factor(
    program: &Program,
    f: &Function,
    du: &DefUse,
    in_op: Option<&PcodeOp>,
) -> f64 {
    let mut total = 0usize;
    let mut from_request = 0usize;
    // Resolve the recv buffer region once.
    let buf_region = in_op.and_then(|op| {
        let name = op.call_target().and_then(|t| program.callee_name(t))?;
        let arg_idx = incoming_buffer_arg(name)?;
        let arg = op.call_args().get(arg_idx)?;
        let at = du.position_of(op.addr)?;
        match resolve_region(program, f, du, at, arg) {
            r @ (Region::Stack(_) | Region::Alloc(_)) => Some(r),
            _ => None,
        }
    });
    for (block, op) in f.ops_with_blocks() {
        if !op.opcode.is_predicate() {
            continue;
        }
        let index = f
            .block(block)
            .ops
            .iter()
            .position(|o| o.addr == op.addr)
            .unwrap_or(0);
        let at = OpRef { block, index };
        for operand in &op.inputs {
            total += 1;
            if let Some(region) = &buf_region {
                if operand_from_region(f, du, at, operand, region, 4) {
                    from_request += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        from_request as f64 / total as f64
    }
}

/// Does `operand` (used at `at`) derive from storage inside `region`?
// Collapsing the `Load` arm into a match guard would fall through to the
// generic dataflow arm on guard failure, which inspects every input.
#[allow(clippy::collapsible_match)]
fn operand_from_region(
    f: &Function,
    du: &DefUse,
    at: OpRef,
    operand: &Varnode,
    region: &Region,
    budget: usize,
) -> bool {
    if budget == 0 || operand.is_const() {
        return false;
    }
    for d in du.reaching_defs(at, operand) {
        let op = &f.block(d.block).ops[d.index];
        match op.opcode {
            Opcode::Copy => {
                // Direct read of a stack slot inside the request buffer
                // (extent bounded by the next named local).
                if let (Region::Stack(base), Some(off)) = (region, op.inputs[0].stack_offset()) {
                    if off >= *base && off < *base + local_extent(f, *base) {
                        return true;
                    }
                }
                if operand_from_region(f, du, d, &op.inputs[0], region, budget - 1) {
                    return true;
                }
            }
            Opcode::Load => {
                if operand_from_region(f, du, d, &op.inputs[0], region, budget - 1) {
                    return true;
                }
            }
            op2 if op2.is_dataflow() => {
                for input in &op.inputs {
                    if operand_from_region(f, du, d, input, region, budget - 1) {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}

/// Size of the named local starting at `base`, bounded by the next named
/// local (256 bytes when it is the last one).
fn local_extent(f: &Function, base: i64) -> i64 {
    let mut next = i64::MAX;
    for (v, _) in f.symbols().iter() {
        if let Some(o) = v.stack_offset() {
            if o > base && o < next {
                next = o;
            }
        }
    }
    if next == i64::MAX {
        256
    } else {
        next - base
    }
}

/// Identify the asynchronous request handlers of `program` (both steps of
/// §IV-A). The program is a device-cloud executable when the result is
/// non-empty.
pub fn identify_device_cloud(program: &Program, config: &ExeIdConfig) -> Vec<HandlerInfo> {
    score_handlers(program)
        .into_iter()
        .filter(|h| h.score >= config.score_threshold && h.is_async)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_corpus::{generate_device, ipc_daemon_source, local_httpd_source, watchdog_source};
    use firmres_isa::{lift, Assembler};

    #[test]
    fn cloud_agent_is_identified() {
        let dev = generate_device(10, 7);
        let path = dev.cloud_executable.as_deref().unwrap();
        let exe = dev.firmware.load_executable(path).unwrap();
        let prog = lift(&exe, "agent").unwrap();
        let handlers = identify_device_cloud(&prog, &ExeIdConfig::default());
        assert!(!handlers.is_empty(), "async handler found");
        assert_eq!(handlers[0].handler_name, "on_cloud_request");
        assert!(handlers[0].score >= 0.3, "score {}", handlers[0].score);
    }

    #[test]
    fn ipc_daemon_rejected_for_synchrony() {
        let exe = Assembler::new().assemble(&ipc_daemon_source()).unwrap();
        let prog = lift(&exe, "ipc").unwrap();
        let all = score_handlers(&prog);
        assert!(!all.is_empty(), "it *is* a request handler");
        assert!(all.iter().all(|h| !h.is_async), "but a synchronous one");
        assert!(identify_device_cloud(&prog, &ExeIdConfig::default()).is_empty());
    }

    #[test]
    fn local_httpd_rejected() {
        let exe = Assembler::new().assemble(&local_httpd_source()).unwrap();
        let prog = lift(&exe, "httpd").unwrap();
        assert!(identify_device_cloud(&prog, &ExeIdConfig::default()).is_empty());
    }

    #[test]
    fn watchdog_has_no_anchors_at_all() {
        let exe = Assembler::new().assemble(&watchdog_source()).unwrap();
        let prog = lift(&exe, "wd").unwrap();
        assert!(score_handlers(&prog).is_empty());
    }

    #[test]
    fn handler_score_reflects_request_parsing() {
        let dev = generate_device(14, 7);
        let path = dev.cloud_executable.as_deref().unwrap();
        let exe = dev.firmware.load_executable(path).unwrap();
        let prog = lift(&exe, "agent").unwrap();
        let handlers = score_handlers(&prog);
        let main_handler = handlers
            .iter()
            .find(|h| h.handler_name == "on_cloud_request")
            .unwrap();
        // The dispatch chain compares request bytes against constants:
        // roughly half the predicate operands are request-derived.
        assert!(main_handler.score > 0.35, "score {}", main_handler.score);
        assert!(main_handler.score <= 0.75, "score {}", main_handler.score);
    }
}
