//! Cooperative cancellation for long-running analyses.
//!
//! A [`CancelToken`] is a cheaply clonable flag (plus an optional
//! deadline) that the cancellable pipeline driver
//! ([`crate::analyze_firmware_cancellable`]) polls at its natural safe
//! points: before stage 1 and at every message-unit boundary. Analysis
//! work is never interrupted *inside* a unit — a unit is the smallest
//! schedulable quantum — so cancellation latency is bounded by the cost
//! of one unit, and a run that is *not* cancelled is byte-identical to
//! an uncancellable one.
//!
//! The token is the serving layer's per-request control surface: the
//! `firmres-service` daemon hands every submitted job its own token,
//! trips it on an explicit `Cancel` request, and uses the deadline form
//! for per-request time budgets.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation flag with an optional deadline.
///
/// Clones share the same flag: cancelling any clone cancels them all.
/// The deadline, when set, makes [`is_cancelled`](Self::is_cancelled)
/// report `true` once the wall clock passes it, with no extra threads or
/// timers — pollers observe the expiry at their next check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh token that is not cancelled and never expires on its own.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that auto-expires `budget` from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + budget),
        }
    }

    /// Trip the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token was cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Whether the token reports cancelled *because of the deadline*
    /// (the flag itself was never tripped).
    pub fn deadline_exceeded(&self) -> bool {
        !self.flag.load(Ordering::Acquire)
            && matches!(self.deadline, Some(d) if Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        assert!(!a.deadline_exceeded(), "explicit cancel is not a timeout");
    }

    #[test]
    fn deadline_expires_without_an_explicit_cancel() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert!(t.deadline_exceeded());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        far.cancel();
        assert!(far.is_cancelled());
        assert!(!far.deadline_exceeded());
    }
}
