//! Message-form checking (paper §IV-E).
//!
//! Two automatic checks run on every reconstructed message:
//!
//! * **Primitive composition** — binding-phase messages must carry
//!   Dev-Identifier + Dev-Secret + User-Cred; business-phase messages
//!   must match one of the three compositions of §II-B
//!   (① Identifier+Bind-Token, ② Identifier+Signature,
//!   ③ Identifier+Dev-Secret+User-Cred).
//! * **Dev-Secret source tracking** — `<Var = Const>` means a hard-coded
//!   secret; `<Var = Function(Const)>` (a config-file read) means the
//!   secret sits in a readable file.

use firmres_dataflow::{FieldSource, SourceKind};
use firmres_mft::ReconstructedMessage;
use firmres_semantics::Primitive;
use std::fmt;

/// Which access-control phase a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessagePhase {
    /// Device registration / binding.
    Binding,
    /// Post-binding resource access.
    Business,
}

impl MessagePhase {
    /// Heuristic phase classification from endpoint/functionality text —
    /// registration and binding endpoints name themselves in practice.
    pub fn classify(endpoint: &str) -> MessagePhase {
        let e = endpoint.to_ascii_lowercase();
        if e.contains("regist") || e.contains("bind") || e.contains("auth") || e.contains("login") {
            MessagePhase::Binding
        } else {
            MessagePhase::Business
        }
    }
}

/// A message-form finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormFlaw {
    /// The message lacks the primitives its phase requires.
    MissingPrimitives {
        /// Classified phase.
        phase: MessagePhase,
        /// Primitives present in the message.
        present: Vec<Primitive>,
        /// The primitives whose absence breaks every valid composition.
        missing: Vec<Primitive>,
    },
    /// A Dev-Secret field is hard-coded in the program (`<Var = Const>`).
    HardcodedDevSecret {
        /// Field key.
        key: String,
        /// The hard-coded value.
        value: String,
    },
    /// A Dev-Secret field is read from a readable config file
    /// (`<Var = Function(Const)>`).
    SecretFromReadableFile {
        /// Field key.
        key: String,
        /// The file/config key it is read from.
        config_key: String,
    },
}

impl fmt::Display for FormFlaw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormFlaw::MissingPrimitives {
                phase,
                present,
                missing,
            } => {
                let p: Vec<&str> = present.iter().map(|x| x.label()).collect();
                let m: Vec<&str> = missing.iter().map(|x| x.label()).collect();
                write!(
                    f,
                    "{:?}-phase message lacks primitives: has [{}], needs [{}]",
                    phase,
                    p.join(", "),
                    m.join(", ")
                )
            }
            FormFlaw::HardcodedDevSecret { key, value } => {
                write!(f, "Dev-Secret `{key}` is hard-coded (\"{value}\")")
            }
            FormFlaw::SecretFromReadableFile { key, config_key } => {
                write!(
                    f,
                    "Dev-Secret `{key}` is read from readable config `{config_key}`"
                )
            }
        }
    }
}

fn parse_semantic(s: &str) -> Option<Primitive> {
    Primitive::ALL.into_iter().find(|p| p.label() == s)
}

/// Run both form checks on a reconstructed message whose fields carry
/// recovered semantics. `endpoint` is used for phase classification.
pub fn check_message(msg: &ReconstructedMessage, endpoint: &str) -> Vec<FormFlaw> {
    let mut flaws = Vec::new();
    let present: Vec<Primitive> = msg
        .fields
        .iter()
        .filter_map(|f| f.semantic.as_deref().and_then(parse_semantic))
        .filter(|p| p.is_access_control())
        .collect();
    let has = |p: Primitive| present.contains(&p);
    let phase = MessagePhase::classify(endpoint);

    let form_ok = match phase {
        MessagePhase::Binding => {
            // Identifier plus some authenticity proof; the strict form is
            // Identifier + Dev-Secret (+ User-Cred for user binding).
            has(Primitive::DevIdentifier)
                && (has(Primitive::DevSecret)
                    || has(Primitive::Signature)
                    || (has(Primitive::UserCred) && has(Primitive::BindToken)))
        }
        MessagePhase::Business => {
            has(Primitive::DevIdentifier)
                && (has(Primitive::BindToken)
                    || has(Primitive::Signature)
                    || (has(Primitive::DevSecret) && has(Primitive::UserCred)))
        }
    };
    if !form_ok {
        let mut missing = Vec::new();
        if !has(Primitive::DevIdentifier) {
            missing.push(Primitive::DevIdentifier);
        }
        match phase {
            MessagePhase::Binding => {
                if !has(Primitive::DevSecret) && !has(Primitive::Signature) {
                    missing.push(Primitive::DevSecret);
                }
            }
            MessagePhase::Business => {
                if !has(Primitive::BindToken)
                    && !has(Primitive::Signature)
                    && !has(Primitive::DevSecret)
                {
                    missing.push(Primitive::BindToken);
                }
            }
        }
        flaws.push(FormFlaw::MissingPrimitives {
            phase,
            present: present.clone(),
            missing,
        });
    }

    // Dev-Secret source tracking.
    for field in &msg.fields {
        if field.semantic.as_deref() != Some(Primitive::DevSecret.label()) {
            continue;
        }
        let key = field.key.clone().unwrap_or_else(|| "<secret>".to_string());
        match &field.origin {
            FieldSource::StringConstant { value, .. } => {
                flaws.push(FormFlaw::HardcodedDevSecret {
                    key,
                    value: value.clone(),
                });
            }
            FieldSource::LibCall {
                kind: SourceKind::ConfigFile,
                key: ck,
                ..
            } => {
                flaws.push(FormFlaw::SecretFromReadableFile {
                    key,
                    config_key: ck.clone().unwrap_or_default(),
                });
            }
            _ => {}
        }
    }
    flaws
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_mft::{MessageField, MessageFormat, Transport};

    fn msg(fields: Vec<(&str, Primitive, FieldSource)>) -> ReconstructedMessage {
        ReconstructedMessage {
            delivery: "SSL_write".into(),
            transport: Transport::Ssl,
            endpoint: None,
            format: MessageFormat::Query,
            fields: fields
                .into_iter()
                .map(|(k, p, origin)| MessageField {
                    key: Some(k.to_string()),
                    origin,
                    semantic: Some(p.label().to_string()),
                })
                .collect(),
            template: None,
        }
    }

    fn nv(key: &str) -> FieldSource {
        FieldSource::LibCall {
            kind: SourceKind::Nvram,
            callee: "nvram_get".into(),
            key: Some(key.into()),
        }
    }

    #[test]
    fn business_with_token_is_fine() {
        let m = msg(vec![
            ("deviceId", Primitive::DevIdentifier, nv("device_id")),
            ("token", Primitive::BindToken, nv("access_token")),
        ]);
        assert!(check_message(&m, "/api/upload").is_empty());
    }

    #[test]
    fn identifier_only_business_is_flagged() {
        let m = msg(vec![("uid", Primitive::DevIdentifier, nv("uid"))]);
        let flaws = check_message(&m, "/api/upload");
        assert_eq!(flaws.len(), 1);
        match &flaws[0] {
            FormFlaw::MissingPrimitives { phase, missing, .. } => {
                assert_eq!(*phase, MessagePhase::Business);
                assert!(missing.contains(&Primitive::BindToken));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binding_without_secret_is_flagged() {
        let m = msg(vec![
            ("serialNumber", Primitive::DevIdentifier, nv("serial_no")),
            ("mac", Primitive::DevIdentifier, nv("mac")),
        ]);
        let flaws = check_message(&m, "/cloud/registrations");
        assert!(matches!(
            flaws[0],
            FormFlaw::MissingPrimitives {
                phase: MessagePhase::Binding,
                ..
            }
        ));
    }

    #[test]
    fn binding_with_secret_passes() {
        let m = msg(vec![
            ("serialNumber", Primitive::DevIdentifier, nv("serial_no")),
            ("deviceSecret", Primitive::DevSecret, nv("device_secret")),
        ]);
        assert!(check_message(&m, "/cloud/registrations").is_empty());
    }

    #[test]
    fn signature_composition_passes_both_phases() {
        let m = msg(vec![
            ("mac", Primitive::DevIdentifier, nv("mac")),
            ("sign", Primitive::Signature, nv("_")),
        ]);
        assert!(check_message(&m, "/api/report").is_empty());
        assert!(check_message(&m, "/auth/bind").is_empty());
    }

    #[test]
    fn hardcoded_secret_detected() {
        let m = msg(vec![
            ("mac", Primitive::DevIdentifier, nv("mac")),
            (
                "secretKey",
                Primitive::DevSecret,
                FieldSource::StringConstant {
                    addr: 0x400000,
                    value: "sec-abc".into(),
                },
            ),
        ]);
        let flaws = check_message(&m, "/auth/register");
        assert!(flaws.iter().any(
            |f| matches!(f, FormFlaw::HardcodedDevSecret { value, .. } if value == "sec-abc")
        ));
    }

    #[test]
    fn config_file_secret_detected() {
        let m = msg(vec![
            ("mac", Primitive::DevIdentifier, nv("mac")),
            (
                "cert",
                Primitive::DevSecret,
                FieldSource::LibCall {
                    kind: SourceKind::ConfigFile,
                    callee: "cfg_get".into(),
                    key: Some("device_cert".into()),
                },
            ),
        ]);
        let flaws = check_message(&m, "/auth/register");
        assert!(flaws.iter().any(
            |f| matches!(f, FormFlaw::SecretFromReadableFile { config_key, .. } if config_key == "device_cert")
        ));
    }

    #[test]
    fn phase_classification() {
        assert_eq!(
            MessagePhase::classify("/cloud/registrations"),
            MessagePhase::Binding
        );
        assert_eq!(MessagePhase::classify("bindDevice"), MessagePhase::Binding);
        assert_eq!(
            MessagePhase::classify("/storages/auth"),
            MessagePhase::Binding
        );
        assert_eq!(
            MessagePhase::classify("/api/upload"),
            MessagePhase::Business
        );
    }

    #[test]
    fn flaws_display() {
        let m = msg(vec![("uid", Primitive::DevIdentifier, nv("uid"))]);
        let flaws = check_message(&m, "/x");
        let text = flaws[0].to_string();
        assert!(text.contains("lacks primitives"), "{text}");
        assert!(text.contains("Dev-Identifier"), "{text}");
    }
}
