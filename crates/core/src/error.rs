//! Unified error and diagnostic model for the pipeline.
//!
//! Historically every recoverable failure inside [`analyze_firmware`]
//! (an unparseable executable, a lift error, an unresolved taint source,
//! the keyword-labeling fallback) was silently dropped: the pipeline
//! degraded and the caller could not tell why. This module gives each of
//! those events a structured, severity-tagged [`Diagnostic`] attached to
//! the analysis result, and a fatal [`Error`] type for the fallible entry
//! points ([`try_analyze_firmware`], [`try_analyze_packed`]).
//!
//! [`analyze_firmware`]: crate::analyze_firmware
//! [`try_analyze_firmware`]: crate::try_analyze_firmware
//! [`try_analyze_packed`]: crate::try_analyze_packed

use firmres_firmware::FirmwareError;
use firmres_isa::{ExeError, LiftError};
use firmres_semantics::ModelError;
use std::fmt;

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Expected degradation: the pipeline took a documented fallback
    /// (keyword weak-labeling, an unresolved taint leaf).
    Info,
    /// A unit of work was dropped (an executable skipped, a lift
    /// failure) but the analysis as a whole continued.
    Warning,
    /// The analysis could not proceed past this point.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The pipeline stage (paper Fig. 3) a diagnostic or timing belongs to,
/// plus [`StageKind::Input`] for failures before the pipeline proper
/// (firmware unpacking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    /// Firmware container unpacking, before stage 1.
    Input,
    /// Stage 1: pinpointing device-cloud executables.
    ExeId,
    /// Stage 2: identifying message fields (backward taint).
    FieldId,
    /// Stage 3: recovering field semantics.
    Semantics,
    /// Stage 4: concatenating message fields.
    Concat,
    /// Stage 5: message-form checking.
    FormCheck,
    /// The content-addressed analysis cache consulted around the
    /// pipeline (not a pipeline stage itself): corrupted or
    /// schema-mismatched store entries are diagnosed here before the
    /// image falls back to a fresh analysis.
    Cache,
}

impl StageKind {
    /// Short stable label (used in rendered diagnostics and reports).
    pub fn label(&self) -> &'static str {
        match self {
            StageKind::Input => "input",
            StageKind::ExeId => "exeid",
            StageKind::FieldId => "field-id",
            StageKind::Semantics => "semantics",
            StageKind::Concat => "concat",
            StageKind::FormCheck => "form-check",
            StageKind::Cache => "cache",
        }
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured, severity-tagged event recorded during analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stage that produced the event.
    pub stage: StageKind,
    /// Seriousness.
    pub severity: Severity,
    /// What the event is about, when there is a natural subject (an
    /// executable path, a `function@callsite` locus).
    pub subject: Option<String>,
    /// Human-readable description.
    pub detail: String,
}

impl Diagnostic {
    /// Build a diagnostic with a subject.
    pub fn new(
        stage: StageKind,
        severity: Severity,
        subject: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        Diagnostic {
            stage,
            severity,
            subject: Some(subject.into()),
            detail: detail.into(),
        }
    }

    /// Build a diagnostic with no subject.
    pub fn bare(stage: StageKind, severity: Severity, detail: impl Into<String>) -> Self {
        Diagnostic {
            stage,
            severity,
            subject: None,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.subject {
            Some(s) => write!(
                f,
                "[{}] {}: {}: {}",
                self.severity, self.stage, s, self.detail
            ),
            None => write!(f, "[{}] {}: {}", self.severity, self.stage, self.detail),
        }
    }
}

/// Fatal analysis error returned by the fallible entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The firmware container could not be unpacked.
    Firmware(FirmwareError),
    /// An executable image could not be parsed.
    Exe(ExeError),
    /// An executable could not be lifted to IR.
    Lift(LiftError),
    /// A persisted semantics model could not be loaded.
    Model(ModelError),
    /// The image contained executables but every one of them failed to
    /// parse or lift — there is nothing left to analyze. (An image with
    /// no executables at all, e.g. a script-based device, is *not* an
    /// error: the analysis succeeds with no identified executable.)
    NoUsableExecutable {
        /// How many executable entries were attempted.
        tried: usize,
        /// The per-executable diagnostics explaining each failure.
        diagnostics: Vec<Diagnostic>,
    },
    /// The analysis was abandoned at a unit boundary because its
    /// [`CancelToken`] tripped — either an explicit cancellation or an
    /// expired deadline (the flag distinguishes the two).
    ///
    /// [`CancelToken`]: crate::CancelToken
    Cancelled {
        /// `true` when the token expired on its deadline rather than
        /// being cancelled explicitly.
        deadline_exceeded: bool,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Firmware(e) => write!(f, "firmware unpack failed: {e}"),
            Error::Exe(e) => write!(f, "executable parse failed: {e}"),
            Error::Lift(e) => write!(f, "lift failed: {e}"),
            Error::Model(e) => write!(f, "model load failed: {e}"),
            Error::NoUsableExecutable { tried, .. } => {
                write!(
                    f,
                    "no usable executable: all {tried} executable(s) failed to parse or lift"
                )
            }
            Error::Cancelled { deadline_exceeded } => {
                if *deadline_exceeded {
                    write!(f, "analysis deadline exceeded")
                } else {
                    write!(f, "analysis cancelled")
                }
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Firmware(e) => Some(e),
            Error::Exe(e) => Some(e),
            Error::Lift(e) => Some(e),
            Error::Model(e) => Some(e),
            Error::NoUsableExecutable { .. } | Error::Cancelled { .. } => None,
        }
    }
}

impl From<FirmwareError> for Error {
    fn from(e: FirmwareError) -> Self {
        Error::Firmware(e)
    }
}

impl From<ExeError> for Error {
    fn from(e: ExeError) -> Self {
        Error::Exe(e)
    }
}

impl From<LiftError> for Error {
    fn from(e: LiftError) -> Self {
        Error::Lift(e)
    }
}

impl From<ModelError> for Error {
    fn from(e: ModelError) -> Self {
        Error::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_seriousness() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn diagnostics_render_with_and_without_subject() {
        let d = Diagnostic::new(
            StageKind::ExeId,
            Severity::Warning,
            "/usr/bin/agent",
            "unparseable executable",
        );
        assert_eq!(
            d.to_string(),
            "[warning] exeid: /usr/bin/agent: unparseable executable"
        );
        let b = Diagnostic::bare(StageKind::Semantics, Severity::Info, "keyword fallback");
        assert_eq!(b.to_string(), "[info] semantics: keyword fallback");
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error as _;
        let e = Error::from(FirmwareError::Truncated);
        assert!(e.source().is_some());
        let n = Error::NoUsableExecutable {
            tried: 2,
            diagnostics: Vec::new(),
        };
        assert!(n.source().is_none());
        assert!(n.to_string().contains("all 2 executable(s)"));
    }
}
