//! Forging device-cloud messages from reconstructions and probing the
//! (simulated) vendor cloud — the §IV-E/§V-C validation step.
//!
//! The attacker model matches the paper: the analyst holds the firmware
//! image, so dynamic values are filled from what the firmware itself
//! discloses (NVRAM defaults, config files), with placeholders for
//! genuinely session-bound values.

use firmres_cloud::{Cloud, HttpRequest, ProbeOutcome};
use firmres_dataflow::{FieldSource, SourceKind};
use firmres_firmware::FirmwareImage;
use firmres_mft::{MessageFormat, ReconstructedMessage};
use std::collections::BTreeMap;

/// A reconstructed message with concrete values filled in, ready to send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilledMessage {
    /// Resolved endpoint (path/topic/method), when recoverable.
    pub endpoint: Option<String>,
    /// Parameter map (field key → concrete value).
    pub params: BTreeMap<String, String>,
    /// Rendered body in the message's inferred format.
    pub body: String,
}

/// Recover the endpoint of a message: an explicitly traced endpoint
/// argument, a `path`/`method` field, or the prefix of a formatted
/// template (`"/store/status?deviceId=%s"` → `/store/status`).
pub fn extract_endpoint(msg: &ReconstructedMessage) -> Option<String> {
    if let Some(e) = &msg.endpoint {
        return Some(e.clone());
    }
    for key in ["method", "path"] {
        if let Some(f) = msg.field(key) {
            if let FieldSource::StringConstant { value, .. } = &f.origin {
                return Some(value.clone());
            }
        }
    }
    if let Some(t) = &msg.template {
        if t.starts_with('/') {
            return Some(t.split('?').next().unwrap_or(t).to_string());
        }
        // JSON templates embed the path as a literal pair:
        // {"path":"/api/x","k":"%s"}.
        if let Some(rest) = t.split("\"path\":\"").nth(1) {
            if let Some(end) = rest.find('"') {
                return Some(rest[..end].to_string());
            }
        }
    }
    // strcat-style messages start with a standalone "<path>?" literal.
    for f in &msg.fields {
        if f.key.is_none() {
            if let FieldSource::StringConstant { value, .. } = &f.origin {
                if value.starts_with('/') {
                    return Some(
                        value
                            .trim_end_matches('?')
                            .split('?')
                            .next()
                            .unwrap_or(value)
                            .to_string(),
                    );
                }
            }
        }
    }
    None
}

/// Concrete value for one field origin, given the firmware image the
/// attacker holds.
pub fn value_for(origin: &FieldSource, fw: &FirmwareImage) -> String {
    match origin {
        FieldSource::StringConstant { value, .. } => value.clone(),
        FieldSource::NumericConstant { value } => value.to_string(),
        FieldSource::LibCall { kind, key, .. } => {
            let key = key.as_deref().unwrap_or("");
            match kind {
                SourceKind::Nvram => fw
                    .nvram()
                    .get(key)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("<nvram:{key}>")),
                SourceKind::ConfigFile => fw
                    .config_value(key)
                    .unwrap_or_else(|| format!("<cfg:{key}>")),
                SourceKind::HardwareId => {
                    // Getter keys map onto NVRAM identity fields.
                    let nv_key = match key {
                        "serial" => "serial_no",
                        "model" => "device_id",
                        other => other,
                    };
                    fw.nvram()
                        .get(nv_key)
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("<hw:{key}>"))
                }
                SourceKind::Environment => "env-value".to_string(),
                SourceKind::Time => "1751700000".to_string(),
                SourceKind::Random => "424242".to_string(),
                SourceKind::NetworkIn | SourceKind::UserInput => "probe-test".to_string(),
            }
        }
        FieldSource::EntryParam { .. } => "probe-test".to_string(),
        FieldSource::Unresolved { .. } => "probe-unresolved".to_string(),
    }
}

/// Fill a reconstructed message with concrete values from the firmware.
///
/// Fields recovered as `Signature` are *derived* rather than copied: the
/// analyst re-implements the signing scheme from the firmware's
/// `hmac_sign(secret, id)` call (exactly what the paper's manual
/// verification step does by hand).
pub fn fill_message(msg: &ReconstructedMessage, fw: &FirmwareImage) -> FilledMessage {
    let endpoint = extract_endpoint(msg);
    let mut params = BTreeMap::new();
    for f in &msg.fields {
        let Some(key) = &f.key else { continue };
        if key == "path" || key == "method" {
            continue; // routing, not a parameter
        }
        let value = if f.semantic.as_deref() == Some("Signature") {
            let nv = fw.nvram();
            match (nv.get("device_secret"), nv.get("device_id")) {
                (Some(secret), Some(id)) => firmres_cloud::mac::derive_signature(secret, id),
                _ => value_for(&f.origin, fw),
            }
        } else {
            value_for(&f.origin, fw)
        };
        params.insert(key.clone(), value);
    }
    let body = render_body(msg.format, &params);
    FilledMessage {
        endpoint,
        params,
        body,
    }
}

/// Render a parameter map in the given wire format.
pub fn render_body(format: MessageFormat, params: &BTreeMap<String, String>) -> String {
    match format {
        MessageFormat::Json => {
            let obj: std::collections::BTreeMap<String, firmres_cloud::json::Json> = params
                .iter()
                .map(|(k, v)| (k.clone(), firmres_cloud::json::Json::Str(v.clone())))
                .collect();
            firmres_cloud::json::Json::Obj(obj).to_string()
        }
        MessageFormat::Query | MessageFormat::KeyValue => params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("&"),
        MessageFormat::Raw => params.values().cloned().collect::<Vec<_>>().join(""),
    }
}

/// Send a filled message to the cloud and classify the outcome.
///
/// Messages without a recoverable endpoint are reported against the empty
/// path (which yields `Path Not Exists` — an invalid reconstruction, as
/// the paper counts it).
pub fn probe_cloud(cloud: &Cloud, filled: &FilledMessage) -> ProbeOutcome {
    let path = filled.endpoint.clone().unwrap_or_default();
    let req = HttpRequest::new(path.clone(), filled.body.clone());
    let resp = cloud.handle(&req);
    ProbeOutcome {
        path,
        status: resp.status,
        leaked: resp.leaked_values(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_mft::{MessageField, Transport};

    fn sample_msg() -> ReconstructedMessage {
        ReconstructedMessage {
            delivery: "http_post".into(),
            transport: Transport::Http,
            endpoint: Some("/api/upload".into()),
            format: MessageFormat::Query,
            fields: vec![
                MessageField {
                    key: Some("mac".into()),
                    origin: FieldSource::LibCall {
                        kind: SourceKind::HardwareId,
                        callee: "get_mac_addr".into(),
                        key: Some("mac".into()),
                    },
                    semantic: None,
                },
                MessageField {
                    key: Some("ts".into()),
                    origin: FieldSource::LibCall {
                        kind: SourceKind::Time,
                        callee: "time".into(),
                        key: None,
                    },
                    semantic: None,
                },
            ],
            template: None,
        }
    }

    fn fw_with_nvram() -> FirmwareImage {
        let mut fw = FirmwareImage::new(firmres_firmware::DeviceInfo {
            vendor: "v".into(),
            model: "m".into(),
            device_type: firmres_firmware::DeviceType::WifiRouter,
            firmware_version: "1".into(),
        });
        let mut nv = firmres_firmware::Nvram::new();
        nv.set("mac", "AA:BB:CC:DD:EE:FF");
        nv.set("serial_no", "SN777");
        fw.add_file(
            "/etc/nvram.default",
            firmres_firmware::FileEntry::NvramDefaults(nv),
        );
        fw.add_file(
            "/etc/config/cloud.conf",
            firmres_firmware::FileEntry::Config("fw_version=9.9\n".into()),
        );
        fw
    }

    #[test]
    fn fills_values_from_firmware() {
        let filled = fill_message(&sample_msg(), &fw_with_nvram());
        assert_eq!(filled.endpoint.as_deref(), Some("/api/upload"));
        assert_eq!(filled.params["mac"], "AA:BB:CC:DD:EE:FF");
        assert_eq!(filled.params["ts"], "1751700000");
        assert!(filled.body.contains("mac=AA:BB:CC:DD:EE:FF"));
    }

    #[test]
    fn endpoint_from_method_field() {
        let mut msg = sample_msg();
        msg.endpoint = None;
        msg.fields.insert(
            0,
            MessageField {
                key: Some("method".into()),
                origin: FieldSource::StringConstant {
                    addr: 0,
                    value: "bindDevice".into(),
                },
                semantic: None,
            },
        );
        assert_eq!(extract_endpoint(&msg).as_deref(), Some("bindDevice"));
        let filled = fill_message(&msg, &fw_with_nvram());
        assert!(
            !filled.params.contains_key("method"),
            "routing key not a param"
        );
    }

    #[test]
    fn endpoint_from_template_prefix() {
        let mut msg = sample_msg();
        msg.endpoint = None;
        msg.template = Some("/store/status?deviceId=%s".into());
        assert_eq!(extract_endpoint(&msg).as_deref(), Some("/store/status"));
    }

    #[test]
    fn endpoint_from_leading_literal() {
        let mut msg = sample_msg();
        msg.endpoint = None;
        msg.fields.insert(
            0,
            MessageField {
                key: None,
                origin: FieldSource::StringConstant {
                    addr: 0,
                    value: "/alarm/push?".into(),
                },
                semantic: None,
            },
        );
        assert_eq!(extract_endpoint(&msg).as_deref(), Some("/alarm/push"));
    }

    #[test]
    fn json_body_rendering() {
        let params: BTreeMap<String, String> =
            [("a".to_string(), "1".to_string())].into_iter().collect();
        assert_eq!(render_body(MessageFormat::Json, &params), "{\"a\":\"1\"}");
        assert_eq!(render_body(MessageFormat::Query, &params), "a=1");
    }

    #[test]
    fn missing_values_get_placeholders() {
        let mut fw = fw_with_nvram();
        // Remove nvram to force placeholders.
        fw.add_file(
            "/etc/nvram.default",
            firmres_firmware::FileEntry::NvramDefaults(Default::default()),
        );
        let filled = fill_message(&sample_msg(), &fw);
        assert!(
            filled.params["mac"].starts_with("<hw:"),
            "{}",
            filled.params["mac"]
        );
    }
}
