//! Parallel corpus driver: run the pipeline over many firmware images on
//! a worker pool.
//!
//! The paper's evaluation sweeps a whole device corpus; every analysis
//! is independent, so the sweep parallelizes trivially. [`analyze_corpus`]
//! fans the images out over `threads` scoped worker threads that share
//! one (optionally trained) classifier and one configuration, and
//! returns results in input order — bit-identical to a sequential run,
//! whatever the thread count.

use crate::pipeline::{analyze_firmware, AnalysisConfig, FirmwareAnalysis};
use firmres_firmware::FirmwareImage;
use firmres_semantics::Classifier;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Analyze every image in `images`, using up to `threads` worker
/// threads, and return one [`FirmwareAnalysis`] per image in input
/// order.
///
/// `threads` is clamped to `1..=images.len()`; `1` (or an empty input)
/// runs inline on the calling thread. The shared `classifier` and
/// `config` are borrowed by every worker — training happens once, not
/// per thread. Results are deterministic: the per-device output does not
/// depend on the thread count, only wall-clock time does.
pub fn analyze_corpus(
    images: &[&FirmwareImage],
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
    threads: usize,
) -> Vec<FirmwareAnalysis> {
    let threads = threads.clamp(1, images.len().max(1));
    if threads <= 1 {
        return images
            .iter()
            .map(|fw| analyze_firmware(fw, classifier, config))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<FirmwareAnalysis>> = Vec::new();
    slots.resize_with(images.len(), || None);
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, FirmwareAnalysis)>();
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= images.len() {
                    break;
                }
                let analysis = analyze_firmware(images[i], classifier, config);
                if tx.send((i, analysis)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, analysis) in rx {
            slots[i] = Some(analysis);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every image is analyzed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_corpus::generate_device;

    #[test]
    fn empty_corpus_is_fine() {
        let out = analyze_corpus(&[], None, &AnalysisConfig::default(), 8);
        assert!(out.is_empty());
    }

    #[test]
    fn results_come_back_in_input_order() {
        // One binary-handled device and one script device, analyzed on
        // more threads than images: order and content must match the
        // inputs, not completion order.
        let a = generate_device(10, 7);
        let b = generate_device(21, 7);
        let images = [&a.firmware, &b.firmware, &a.firmware];
        let out = analyze_corpus(&images, None, &AnalysisConfig::default(), 4);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].executable.as_deref(), a.cloud_executable.as_deref());
        assert!(out[1].executable.is_none());
        assert_eq!(out[2].executable, out[0].executable);
        assert_eq!(out[2].identified_fields(), out[0].identified_fields());
    }
}
