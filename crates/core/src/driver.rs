//! Parallel corpus driver: run the pipeline over many firmware images on
//! a worker pool.
//!
//! The paper's evaluation sweeps a whole device corpus; every analysis
//! is independent, so the sweep parallelizes trivially. [`analyze_corpus`]
//! fans the images out over `threads` scoped worker threads that share
//! one (optionally trained) classifier and one configuration, and
//! returns results in input order — bit-identical to a sequential run,
//! whatever the thread count.
//!
//! The pool itself is exposed as [`run_pool`] so other drivers (the
//! incremental cache-aware driver in `firmres-cache`) can reuse the
//! work-stealing scheduling without duplicating it.

use crate::pipeline::{analyze_firmware, AnalysisConfig, FirmwareAnalysis};
use firmres_firmware::FirmwareImage;
use firmres_semantics::Classifier;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// How a corpus driver spends its worker threads: across images, within
/// one image's message units, or both.
///
/// Pure throughput knobs — neither axis changes any analysis result, so
/// neither enters the analysis-cache key. A plain `usize` converts to
/// image-level parallelism (`n.into()`), keeping the historical
/// `threads: usize` call shape working.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads across images (the [`run_pool`] fan-out).
    pub images: usize,
    /// Worker threads across message units *within* each image
    /// ([`crate::analyze_firmware_jobs`]).
    pub units: usize,
}

impl Parallelism {
    /// Image-level parallelism only (units run inline per image).
    pub fn images(n: usize) -> Self {
        Parallelism {
            images: n,
            units: 1,
        }
    }

    /// Unit-level parallelism only (images processed one at a time).
    pub fn units(n: usize) -> Self {
        Parallelism {
            images: 1,
            units: n,
        }
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism {
            images: 1,
            units: 1,
        }
    }
}

impl From<usize> for Parallelism {
    fn from(threads: usize) -> Self {
        Parallelism::images(threads)
    }
}

/// Run `job(0..count)` across up to `threads` scoped worker threads and
/// return the results in index order.
///
/// `threads` is clamped to `1..=count`; `1` (or `count == 0`) runs
/// inline on the calling thread. Work is handed out through a shared
/// atomic cursor, so an expensive item does not serialize the rest of
/// the batch behind it. The output is deterministic: slot `i` always
/// holds `job(i)`, whatever the thread count or completion order.
pub fn run_pool<T, F>(count: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 {
        return (0..count).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(count, || None);
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = job(i);
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, out) in rx {
            slots[i] = Some(out);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index is processed exactly once"))
        .collect()
}

/// Analyze every image in `images`, using up to `threads` worker
/// threads, and return one [`FirmwareAnalysis`] per image in input
/// order.
///
/// `threads` is clamped to `1..=images.len()`; `1` (or an empty input)
/// runs inline on the calling thread. The shared `classifier` and
/// `config` are borrowed by every worker — training happens once, not
/// per thread. Results are deterministic: the per-device output does not
/// depend on the thread count, only wall-clock time does.
pub fn analyze_corpus(
    images: &[&FirmwareImage],
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
    threads: usize,
) -> Vec<FirmwareAnalysis> {
    run_pool(images.len(), threads, |i| {
        analyze_firmware(images[i], classifier, config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_corpus::generate_device;

    #[test]
    fn empty_corpus_is_fine() {
        let out = analyze_corpus(&[], None, &AnalysisConfig::default(), 8);
        assert!(out.is_empty());
    }

    #[test]
    fn run_pool_keeps_index_order() {
        let out = run_pool(17, 4, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        // Inline path agrees with the threaded path.
        assert_eq!(out, run_pool(17, 1, |i| i * i));
    }

    #[test]
    fn results_come_back_in_input_order() {
        // One binary-handled device and one script device, analyzed on
        // more threads than images: order and content must match the
        // inputs, not completion order.
        let a = generate_device(10, 7);
        let b = generate_device(21, 7);
        let images = [&a.firmware, &b.firmware, &a.firmware];
        let out = analyze_corpus(&images, None, &AnalysisConfig::default(), 4);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].executable.as_deref(), a.cloud_executable.as_deref());
        assert!(out[1].executable.is_none());
        assert_eq!(out[2].executable, out[0].executable);
        assert_eq!(out[2].identified_fields(), out[0].identified_fields());
    }
}
