//! The staged pipeline: five typed stages and the per-callsite
//! **message-unit** execution model.
//!
//! Each stage of the paper's Fig. 3 workflow is a function over shared
//! state producing a typed artifact:
//!
//! 1. [`ExeIdStage`] → [`ChosenExecutable`] — pinpoint the device-cloud
//!    executable (best-scoring candidate, paper §IV-A);
//! 2. [`FieldIdStage`] → [`RawMessage`]s — backward taint per delivery
//!    callsite;
//! 3. [`SemanticsStage`] → [`SliceSemantics`] — render and classify
//!    enriched code slices;
//! 4. [`ConcatStage`] → [`MessageRecord`]s — reconstruct and annotate
//!    messages, LAN/echo filtering;
//! 5. [`FormCheckStage`] — message-form findings in place.
//!
//! # The message-unit model
//!
//! Stages 2–5 share no state across delivery callsites: one callsite's
//! taint → slices → semantics → reconstruction → form-check chain is an
//! independent **message unit**. The unit path therefore splits the old
//! whole-image stage loops into:
//!
//! * [`enumerate_units`] — deterministically list the delivery callsites
//!   of the chosen executable as [`MessageUnit`] seeds;
//! * [`run_message_unit`] — execute one unit's four-stage chain against
//!   the shared read-only [`AnalysisInputs`] (plus the image-wide taint
//!   engine and slice renderer, both `Sync`), buffering its counter and
//!   diagnostic events in a private [`UnitContext`];
//! * [`merge_unit_outputs`] — fold the per-unit [`UnitOutput`]s back into
//!   the [`AnalysisContext`] *in callsite order*, replaying each unit's
//!   buffered events into the observer stage by stage.
//!
//! [`analyze_firmware_with_jobs`](crate::pipeline::analyze_firmware_with_jobs)
//! fans the units out over [`run_pool`](crate::driver::run_pool) workers;
//! because the merge consumes results in unit order and every unit is a
//! pure function of the immutable program, the analysis output is
//! byte-identical at any job count (see `DESIGN.md` §8 for the full
//! determinism argument).
//!
//! The classic per-stage API ([`FieldIdStage::run`] and friends) is kept
//! for callers that need intermediate artifacts; it executes the same
//! unit functions inline, so both paths produce identical event streams.
//!
//! The context owns the cross-cutting concerns: per-stage timing, work
//! counters, structured diagnostics, and fan-out to the caller's
//! [`Observer`]. Stage wall-clock brackets come from
//! [`AnalysisContext::run_stage`]; unit stages instead accumulate
//! *per-unit thread time* into the same buckets (CPU-time semantics —
//! the buckets stay comparable across job counts, wall-clock does not).

use crate::error::{Diagnostic, Severity, StageKind};
use crate::exeid::{identify_device_cloud, HandlerInfo};
use crate::formcheck::check_message;
use crate::observe::{Counter, Event, Observer, StageCounters, StageEvents};
use crate::pipeline::{AnalysisConfig, FirmwareAnalysis, MessageRecord, StageTimings};
use firmres_dataflow::{
    delivery_endpoint_arg, delivery_payload_arg, FieldSource, SourceKind, TaintEngine,
};
use firmres_firmware::FirmwareImage;
use firmres_ir::{Address, ColdPath, Program};
use firmres_mft::{mentions_lan, reconstruct, CodeSlice, Mft, SliceRenderer};
use firmres_semantics::{weak_label, ClassCache, Classifier, Primitive};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The read-only inputs of one analysis, shared by every message unit.
///
/// This is the immutable half of the old monolithic context: three
/// shared references, `Copy` and `Sync`, so the unit-parallel driver
/// hands one value to every worker. The mutable half (observer fan-out,
/// timings, counters, diagnostics) stays in [`AnalysisContext`] on the
/// coordinating thread.
#[derive(Clone, Copy)]
pub struct AnalysisInputs<'a> {
    /// The firmware image under analysis.
    pub fw: &'a FirmwareImage,
    /// The trained semantics model, if any (`None` falls back to keyword
    /// weak-labeling).
    pub classifier: Option<&'a Classifier>,
    /// Pipeline configuration.
    pub config: &'a AnalysisConfig,
}

/// Shared coordinator state threaded through the pipeline stages: the
/// read-only [`AnalysisInputs`] plus the accumulating timings, counters
/// and diagnostics. Lives on the coordinating thread only — worker
/// threads see [`AnalysisInputs`] and their own [`UnitContext`].
pub struct AnalysisContext<'a> {
    /// The read-only inputs (image, classifier, configuration).
    pub inputs: AnalysisInputs<'a>,
    observer: &'a mut dyn Observer,
    timings: StageTimings,
    counters: StageCounters,
    diagnostics: Vec<Diagnostic>,
}

impl<'a> AnalysisContext<'a> {
    /// Build a context over one firmware image.
    pub fn new(
        fw: &'a FirmwareImage,
        classifier: Option<&'a Classifier>,
        config: &'a AnalysisConfig,
        observer: &'a mut dyn Observer,
    ) -> Self {
        AnalysisContext {
            inputs: AnalysisInputs {
                fw,
                classifier,
                config,
            },
            observer,
            timings: StageTimings::default(),
            counters: StageCounters::default(),
            diagnostics: Vec::new(),
        }
    }

    /// File `elapsed` under the matching [`StageTimings`] bucket.
    fn file_time(&mut self, kind: StageKind, elapsed: Duration) {
        match kind {
            StageKind::ExeId => self.timings.exeid += elapsed,
            StageKind::FieldId => self.timings.field_identification += elapsed,
            StageKind::Semantics => self.timings.semantics += elapsed,
            StageKind::Concat => self.timings.concatenation += elapsed,
            StageKind::FormCheck => self.timings.form_check += elapsed,
            // Not pipeline stages: no timing bucket to file under.
            StageKind::Input | StageKind::Cache => {}
        }
    }

    /// Run `body` as stage `kind`: notifies the observer, times the run
    /// (wall-clock), and files the elapsed time under the matching
    /// [`StageTimings`] bucket.
    pub fn run_stage<T>(&mut self, kind: StageKind, body: impl FnOnce(&mut Self) -> T) -> T {
        self.observer.stage_started(kind);
        let start = Instant::now();
        let out = body(self);
        let elapsed = start.elapsed();
        self.file_time(kind, elapsed);
        self.observer.stage_finished(kind, elapsed);
        out
    }

    /// Replay one unit's buffered events for one stage into the counters,
    /// diagnostics and observer, preserving emission order.
    fn replay_events(&mut self, events: &StageEvents) {
        for ev in &events.events {
            match ev {
                Event::Count(counter, n) => self.count(*counter, *n),
                Event::Diagnostic(d) => self.diagnose(d.clone()),
                // Stage boundaries are emitted by the merge itself
                // (replay_stage), never buffered inside a unit; replaying
                // one here would double-fire the observer.
                Event::StageStarted(_) | Event::StageFinished(..) => {}
            }
        }
    }

    /// Run stage `kind` as a *merge* of already-executed unit work:
    /// replay each unit's buffered events in unit order, let `tail` emit
    /// any stage-global events, and file the summed per-unit thread time
    /// under the stage's timing bucket.
    fn replay_stage<'b>(
        &mut self,
        kind: StageKind,
        units: impl Iterator<Item = &'b StageEvents>,
        tail: impl FnOnce(&mut Self),
    ) {
        self.observer.stage_started(kind);
        let mut elapsed = Duration::ZERO;
        for ev in units {
            elapsed += ev.elapsed;
            self.replay_events(ev);
        }
        tail(self);
        self.file_time(kind, elapsed);
        self.observer.stage_finished(kind, elapsed);
    }

    /// Advance a work counter and forward the event to the observer.
    pub fn count(&mut self, counter: Counter, n: u64) {
        self.counters.record(counter, n);
        self.observer.count(counter, n);
    }

    /// Record a diagnostic and forward it to the observer.
    pub fn diagnose(&mut self, diagnostic: Diagnostic) {
        self.observer.diagnostic(&diagnostic);
        self.diagnostics.push(diagnostic);
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> &StageCounters {
        &self.counters
    }

    /// Diagnostics recorded so far.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Per-stage timings accumulated so far.
    pub fn timings(&self) -> &StageTimings {
        &self.timings
    }

    /// Consume the context into the final analysis result.
    pub fn finish(
        self,
        executable: Option<String>,
        handlers: Vec<HandlerInfo>,
        messages: Vec<MessageRecord>,
    ) -> FirmwareAnalysis {
        FirmwareAnalysis {
            executable,
            handlers,
            messages,
            timings: self.timings,
            counters: self.counters,
            diagnostics: self.diagnostics,
        }
    }
}

/// Stage-1 artifact: the pinpointed device-cloud executable.
pub struct ChosenExecutable {
    /// Path of the executable inside the firmware image.
    pub path: String,
    /// The lifted program.
    pub program: Program,
    /// Scored handler information (non-empty by construction).
    pub handlers: Vec<HandlerInfo>,
}

impl ChosenExecutable {
    /// The executable's identification score: the best handler `P_f`
    /// among its asynchronous request handlers (paper §IV-A ranks
    /// candidates by this factor).
    pub fn best_score(&self) -> f64 {
        self.handlers.iter().fold(0.0, |m, h| m.max(h.score))
    }
}

/// Stage-2 artifact: one delivery callsite with its backward-taint
/// results, before reconstruction.
#[derive(Debug, Clone)]
pub struct RawMessage {
    /// Function containing the delivery callsite.
    pub function: String,
    /// The delivery callsite address.
    pub callsite: Address,
    /// Whether the callsite sits inside an identified request handler.
    pub in_handler: bool,
    /// The message field tree built from the payload taint.
    pub mft: Mft,
    /// Endpoint string (MQTT topic / HTTP path), when resolvable and
    /// distinct from the payload argument.
    pub endpoint: Option<String>,
    /// Whether the delivery host resolved to a LAN address.
    pub host_lan: bool,
}

/// Stage-3 artifact: rendered slices and their classified semantics,
/// parallel to the stage-2 [`RawMessage`] list.
pub struct SliceSemantics {
    /// Enriched code slices per message (one inner vec per raw message).
    pub slices: Vec<Vec<CodeSlice>>,
    /// `(field origin, primitive)` pairs per message, consumed by the
    /// concatenation stage's origin matching.
    pub labeled: Vec<Vec<(FieldSource, Primitive)>>,
    /// Raw primitive per slice, parallel to `slices`.
    pub primitives: Vec<Vec<Primitive>>,
}

/// Classification front end shared by every message unit.
///
/// Dispatches on [`ColdPath`]: the reference mode classifies each slice
/// from scratch, one at a time (`Classifier::predict` with a model,
/// [`weak_label`] without), the optimized mode batches a unit's slices
/// into one [`ClassCache::classify_batch`] call — shared featurizer
/// scratch, argmax-only scoring, certified None pre-filter, and a
/// dedup cache that can be *corpus-wide*: [`UnitClassifier::with_cache`]
/// accepts a cache shared across images and service requests, while
/// [`UnitClassifier::new`] makes a private per-image one. Both modes
/// return the same primitive for every text; only the cost differs.
pub struct UnitClassifier<'a> {
    mode: ColdPath,
    classifier: Option<&'a Classifier>,
    cache: Arc<ClassCache>,
}

impl<'a> UnitClassifier<'a> {
    /// Build a front end over an optional trained model, with a private
    /// (per-image, unbounded) classification cache.
    pub fn new(classifier: Option<&'a Classifier>, mode: ColdPath) -> Self {
        Self::with_cache(classifier, mode, Arc::new(ClassCache::new(0)))
    }

    /// Build a front end over a shared classification cache (corpus
    /// drivers and the service pass one cache across many images; the
    /// cache never changes labels, so sharing is observability-safe).
    pub fn with_cache(
        classifier: Option<&'a Classifier>,
        mode: ColdPath,
        cache: Arc<ClassCache>,
    ) -> Self {
        UnitClassifier {
            mode,
            classifier,
            cache,
        }
    }

    /// Classify one unit's slice texts: with the trained classifier when
    /// given, otherwise the keyword weak-labeler.
    pub fn classify_batch(&self, texts: &[&str]) -> Vec<Primitive> {
        match self.mode {
            ColdPath::Reference => texts
                .iter()
                .map(|text| match self.classifier {
                    Some(c) => c.predict(text).0,
                    None => weak_label(text),
                })
                .collect(),
            ColdPath::Optimized => self.cache.classify_batch(self.classifier, texts),
        }
    }

    /// The classification cache behind the optimized mode (for
    /// stats reporting; empty under [`ColdPath::Reference`]).
    pub fn cache(&self) -> &ClassCache {
        &self.cache
    }
}

// ---------------------------------------------------------------------------
// Message units
// ---------------------------------------------------------------------------

/// One delivery callsite awaiting analysis: the seed of a message unit.
///
/// Seeds are enumerated deterministically ([`enumerate_units`]) before
/// any unit work runs; the seed's position in that list is the unit's
/// canonical order, used by [`merge_unit_outputs`] whatever the workers'
/// completion order.
#[derive(Debug, Clone)]
pub struct MessageUnit {
    /// Entry address of the function containing the callsite.
    pub function: Address,
    /// Name of that function.
    pub function_name: String,
    /// The delivery callsite address.
    pub callsite: Address,
    /// Name of the delivery callee (e.g. `mosquitto_publish`).
    pub callee: String,
    /// Index of the payload argument at the callsite.
    pub payload_arg: usize,
    /// Whether the callsite sits inside an identified request handler.
    pub in_handler: bool,
}

/// The four pipeline stages a message unit executes (stages 2–5 of the
/// paper workflow; stages 1 is image-wide and runs before units exist).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitStage {
    /// Backward taint from the delivery callsite (stage 2).
    FieldId,
    /// Slice rendering and semantics classification (stage 3).
    Semantics,
    /// Message reconstruction and origin matching (stage 4).
    Concat,
    /// Message-form checking (stage 5).
    FormCheck,
}

impl UnitStage {
    /// The pipeline-wide stage this unit stage belongs to.
    pub fn kind(self) -> StageKind {
        match self {
            UnitStage::FieldId => StageKind::FieldId,
            UnitStage::Semantics => StageKind::Semantics,
            UnitStage::Concat => StageKind::Concat,
            UnitStage::FormCheck => StageKind::FormCheck,
        }
    }
}

/// The buffered per-stage events of one message unit.
#[derive(Debug, Clone, Default)]
pub struct UnitEvents {
    /// Field-identification events (stage 2).
    pub field_id: StageEvents,
    /// Semantics-recovery events (stage 3).
    pub semantics: StageEvents,
    /// Concatenation events (stage 4).
    pub concat: StageEvents,
    /// Form-check events (stage 5).
    pub form_check: StageEvents,
}

impl UnitEvents {
    fn buffer_mut(&mut self, stage: UnitStage) -> &mut StageEvents {
        match stage {
            UnitStage::FieldId => &mut self.field_id,
            UnitStage::Semantics => &mut self.semantics,
            UnitStage::Concat => &mut self.concat,
            UnitStage::FormCheck => &mut self.form_check,
        }
    }
}

/// A memoized-taint query key: `(function entry, callsite, argument)`.
pub type TraceKey = (Address, Address, usize);

/// The per-unit mutable state: buffered events and the taint queries the
/// unit issued, in order.
///
/// This is the worker-side counterpart of [`AnalysisContext`]: a unit
/// never touches the observer (it is `&mut` and single-threaded) — it
/// records what it did here, and [`merge_unit_outputs`] replays the
/// buffers deterministically on the coordinating thread.
#[derive(Debug, Default)]
pub struct UnitContext {
    events: UnitEvents,
    taint_keys: Vec<TraceKey>,
    current: Option<UnitStage>,
}

impl UnitContext {
    /// A fresh, empty unit context.
    pub fn new() -> Self {
        UnitContext::default()
    }

    /// Run `body` as unit stage `stage`, accumulating the elapsed thread
    /// time into that stage's event buffer.
    pub fn run_stage<T>(&mut self, stage: UnitStage, body: impl FnOnce(&mut Self) -> T) -> T {
        self.current = Some(stage);
        let start = Instant::now();
        let out = body(self);
        self.events.buffer_mut(stage).elapsed += start.elapsed();
        self.current = None;
        out
    }

    /// Record a counter advance in the current stage's buffer.
    pub fn count(&mut self, counter: Counter, n: u64) {
        let stage = self.current.expect("count() outside run_stage");
        self.events.buffer_mut(stage).count(counter, n);
    }

    /// Record a diagnostic in the current stage's buffer.
    pub fn diagnose(&mut self, diagnostic: Diagnostic) {
        let stage = self.current.expect("diagnose() outside run_stage");
        self.events.buffer_mut(stage).diagnose(diagnostic);
    }

    /// Note a taint query so the merge can account memo hits in the
    /// canonical unit order.
    fn taint_query(&mut self, func: Address, callsite: Address, arg: usize) {
        self.taint_keys.push((func, callsite, arg));
    }
}

/// What one message unit produced: its finished record plus the buffered
/// events the merge replays.
#[derive(Debug)]
pub struct UnitOutput {
    /// The fully analyzed message record (flaws filled in).
    pub record: MessageRecord,
    /// Buffered counter/diagnostic events per stage.
    pub events: UnitEvents,
    taint_keys: Vec<TraceKey>,
}

impl UnitOutput {
    /// The taint queries this unit issued, in issue order.
    pub fn taint_keys(&self) -> &[TraceKey] {
        &self.taint_keys
    }
}

/// Deterministically enumerate the delivery callsites of `program` as
/// message-unit seeds, in function-then-callsite order.
pub fn enumerate_units(program: &Program, handlers: &[HandlerInfo]) -> Vec<MessageUnit> {
    let handler_funcs: HashSet<Address> = handlers.iter().map(|h| h.handler_func).collect();
    let mut units = Vec::new();
    for f in program.functions() {
        for op in f.callsites() {
            let Some(name) = op.call_target().and_then(|t| program.callee_name(t)) else {
                continue;
            };
            let Some(payload_arg) = delivery_payload_arg(name) else {
                continue;
            };
            units.push(MessageUnit {
                function: f.entry(),
                function_name: f.name().to_string(),
                callsite: op.addr,
                callee: name.to_string(),
                payload_arg,
                in_handler: handler_funcs.contains(&f.entry()),
            });
        }
    }
    units
}

/// Stage 2 for one unit: backward taint from the delivery callsite.
fn field_id_unit(
    engine: &TaintEngine<'_>,
    unit: &MessageUnit,
    ucx: &mut UnitContext,
) -> RawMessage {
    let mut lib_stats = firmres_dataflow::LibStats::default();
    ucx.count(Counter::TaintQueries, 1);
    ucx.taint_query(unit.function, unit.callsite, unit.payload_arg);
    let (tree, stats) = engine.trace_with_stats(unit.function, unit.callsite, unit.payload_arg);
    lib_stats.merge(&stats);
    let unresolved = tree
        .sources()
        .filter(|n| matches!(n.source(), Some(FieldSource::Unresolved { .. })))
        .count();
    if unresolved > 0 {
        ucx.diagnose(Diagnostic::new(
            StageKind::FieldId,
            Severity::Info,
            format!("{}@{:#x}", unit.function_name, unit.callsite),
            format!(
                "{unresolved} unresolved taint source(s) in {} payload",
                unit.callee
            ),
        ));
    }
    let mft = Mft::from_taint(&tree);
    // Endpoint argument (MQTT topic / HTTP path), when distinct.
    let mut endpoint = None;
    if let Some(ep_arg) = delivery_endpoint_arg(&unit.callee) {
        if ep_arg != unit.payload_arg {
            ucx.count(Counter::TaintQueries, 1);
            ucx.taint_query(unit.function, unit.callsite, ep_arg);
            let (ep_tree, stats) = engine.trace_with_stats(unit.function, unit.callsite, ep_arg);
            lib_stats.merge(&stats);
            endpoint = ep_tree.sources().find_map(|n| match n.source() {
                Some(FieldSource::StringConstant { value, .. }) => Some(value.clone()),
                _ => None,
            });
        }
    }
    // Address argument (HTTP host) for the LAN filter.
    let mut host_lan = false;
    if matches!(unit.callee.as_str(), "http_post" | "http_get") {
        ucx.count(Counter::TaintQueries, 1);
        ucx.taint_query(unit.function, unit.callsite, 0);
        let (host_tree, stats) = engine.trace_with_stats(unit.function, unit.callsite, 0);
        lib_stats.merge(&stats);
        host_lan = host_tree.sources().any(|n| {
            matches!(n.source(), Some(FieldSource::StringConstant { value, .. })
                if firmres_mft::is_lan_address(value))
        });
    }
    // Library-summary accounting, emitted only when nonzero so a run
    // without an index keeps its event stream byte-identical.
    if lib_stats.traversals_skipped > 0 {
        ucx.count(Counter::LibTraversalsSkipped, lib_stats.traversals_skipped);
    }
    if lib_stats.summary_applications > 0 {
        ucx.count(Counter::LibSummaryApplies, lib_stats.summary_applications);
    }
    RawMessage {
        function: unit.function_name.clone(),
        callsite: unit.callsite,
        in_handler: unit.in_handler,
        mft,
        endpoint,
        host_lan,
    }
}

/// Stage 3 for one unit: render the field slices and classify each.
///
/// The image-wide "no trained classifier" diagnostic is *not* emitted
/// here — it depends on every unit's output, so the merge (or the legacy
/// stage driver) emits it once after all units.
fn semantics_unit(
    renderer: &SliceRenderer<'_>,
    classes: &UnitClassifier<'_>,
    raw: &RawMessage,
    ucx: &mut UnitContext,
) -> (
    Vec<CodeSlice>,
    Vec<(FieldSource, Primitive)>,
    Vec<Primitive>,
) {
    let rendered = renderer.slices_for_tree(&raw.mft);
    ucx.count(Counter::SlicesRendered, rendered.len() as u64);
    // One call for the whole unit: the optimized mode classifies the
    // batch with a shared featurize pass and the corpus cache. Batch
    // telemetry (SlicesBatched and friends) is warmth- and
    // mode-dependent, so it is *not* emitted into the unit's event
    // buffer — corpus drivers report it from cache stats instead,
    // keeping per-unit events (and thus report bytes) identical across
    // modes and job counts.
    let texts: Vec<&str> = rendered.iter().map(|s| s.text.as_str()).collect();
    let primitives = classes.classify_batch(&texts);
    let labeled = rendered
        .iter()
        .zip(&primitives)
        .map(|(s, primitive)| (s.source.clone(), *primitive))
        .collect();
    (rendered, labeled, primitives)
}

/// Stage 4 for one unit: reconstruct the message, attach recovered
/// semantics by origin, and apply the LAN/echo filters.
fn concat_unit(
    raw: RawMessage,
    slices: Vec<CodeSlice>,
    labeled: Vec<(FieldSource, Primitive)>,
    primitives: Vec<Primitive>,
    ucx: &mut UnitContext,
) -> MessageRecord {
    let RawMessage {
        function,
        callsite,
        in_handler,
        mft,
        endpoint,
        host_lan,
    } = raw;
    let mut message = reconstruct(&mft);
    message.endpoint = endpoint;
    // Attach recovered semantics to fields by matching origins. Each
    // origin keys a FIFO of its primitives: successive fields with the
    // same origin consume successive labels, exactly as the old linear
    // scan-and-remove did, but in O(fields) instead of O(fields²).
    let mut by_origin: HashMap<FieldSource, VecDeque<Primitive>> = HashMap::new();
    for (src, primitive) in labeled {
        by_origin.entry(src).or_default().push_back(primitive);
    }
    for field in &mut message.fields {
        if let Some(primitive) = by_origin
            .get_mut(&field.origin)
            .and_then(VecDeque::pop_front)
        {
            field.semantic = Some(primitive.label().to_string());
            ucx.count(Counter::FieldsMatched, 1);
        }
    }
    let lan_discarded = host_lan || mentions_lan(&mft);
    // A delivery whose payload is entirely network input inside the
    // request handler is the handler's response echo, not a constructed
    // device-cloud message.
    let is_response_echo = in_handler
        && !message.fields.is_empty()
        && message.fields.iter().all(|f| {
            matches!(
                &f.origin,
                FieldSource::LibCall {
                    kind: SourceKind::NetworkIn,
                    ..
                } | FieldSource::Unresolved { .. }
            )
        });
    MessageRecord {
        function,
        callsite,
        mft,
        slices,
        slice_semantics: primitives,
        message,
        lan_discarded,
        is_response_echo,
        flaws: Vec::new(),
    }
}

/// Stage 5 for one unit: fill `flaws` in place for counting records.
fn form_check_unit(record: &mut MessageRecord) {
    if !record.counts() {
        return;
    }
    let endpoint = crate::probe::extract_endpoint(&record.message).unwrap_or_default();
    record.flaws = check_message(&record.message, &endpoint);
}

/// Execute one message unit end to end: taint → slices → semantics →
/// reconstruction → form check, buffering all events in the returned
/// [`UnitOutput`].
///
/// Safe to call from any thread: `engine`, `renderer` and `classes` are
/// `Sync` (their memo caches are lock-protected and only ever filled
/// with deterministic values), and everything else is read-only.
pub fn run_message_unit(
    engine: &TaintEngine<'_>,
    renderer: &SliceRenderer<'_>,
    classes: &UnitClassifier<'_>,
    unit: &MessageUnit,
) -> UnitOutput {
    let mut ucx = UnitContext::new();
    let raw = ucx.run_stage(UnitStage::FieldId, |u| field_id_unit(engine, unit, u));
    let (slices, labeled, primitives) = ucx.run_stage(UnitStage::Semantics, |u| {
        semantics_unit(renderer, classes, &raw, u)
    });
    let mut record = ucx.run_stage(UnitStage::Concat, |u| {
        concat_unit(raw, slices, labeled, primitives, u)
    });
    ucx.run_stage(UnitStage::FormCheck, |_| form_check_unit(&mut record));
    UnitOutput {
        record,
        events: ucx.events,
        taint_keys: ucx.taint_keys,
    }
}

/// Memo hits a single shared engine would report for `keys` issued in
/// this exact order: a query hits iff its key was queried before.
///
/// Replaying the canonical key sequence makes the
/// [`Counter::TaintCacheHits`] total a pure function of the unit list —
/// the engine's own (scheduling-dependent) hit counter is never used by
/// the pipeline, so the count is identical at any job count.
fn memo_hits(keys: impl Iterator<Item = TraceKey>) -> u64 {
    let mut seen = HashSet::new();
    let mut hits = 0;
    for key in keys {
        if !seen.insert(key) {
            hits += 1;
        }
    }
    hits
}

/// Fold completed unit outputs back into the context **in unit order**,
/// replaying each unit's buffered events stage by stage, and return the
/// message records.
///
/// The observer sees exactly the event stream a sequential run produces:
/// stages 2–5 in order, each containing its units' events in canonical
/// unit order, with the stage-global events (taint memo hits, the
/// classifier-fallback diagnostic) at the same positions. Timing buckets
/// receive the *sum of per-unit thread time* — CPU-time semantics, so
/// `perf_breakdown` shares stay meaningful at any job count.
pub fn merge_unit_outputs(
    cx: &mut AnalysisContext<'_>,
    outputs: Vec<UnitOutput>,
    lib_matched: u64,
) -> Vec<MessageRecord> {
    let (records, views): (Vec<_>, Vec<_>) = outputs
        .into_iter()
        .map(|o| {
            let view = UnitView {
                slices_nonempty: !o.record.slices.is_empty(),
                events: o.events,
                taint_keys: o.taint_keys,
            };
            (o.record, view)
        })
        .unzip();
    merge_unit_event_streams(cx, &views, lib_matched);
    records
}

/// The merge-relevant view of one executed message unit: its buffered
/// events, the taint queries it issued, and whether it rendered slices.
///
/// [`UnitOutput`] carries this implicitly; incremental drivers that
/// replay *persisted* unit artifacts (where the record travels as opaque
/// encoded bytes and is never decoded) construct it directly.
#[derive(Debug, Clone, Default)]
pub struct UnitView {
    /// Buffered counter/diagnostic events per stage.
    pub events: UnitEvents,
    /// Taint queries issued, in issue order.
    pub taint_keys: Vec<TraceKey>,
    /// Whether the unit rendered any code slices (drives the image-wide
    /// classifier-fallback diagnostic).
    pub slices_nonempty: bool,
}

/// Replay unit event streams into the context **in unit order** — the
/// event-folding half of [`merge_unit_outputs`], over [`UnitView`]s.
///
/// The stage-global tail events are recomputed from the views: the
/// [`Counter::TaintCacheHits`] total from the canonical concatenated
/// taint-key order, the classifier-fallback diagnostic from the
/// classifier's absence plus any unit having rendered slices. Both are
/// pure functions of the view list, so replaying stored views produces
/// the exact stream a fresh run of the same units emits.
///
/// `lib_matched` is the image-wide count of functions the taint engine
/// hash-matched against the known-library index
/// ([`TaintEngine::lib_matched`] — a pure function of program and index,
/// so warm drivers recompute the identical value). It is emitted as a
/// FieldId-stage tail event only when nonzero, keeping index-less
/// streams byte-identical.
///
/// [`TaintEngine::lib_matched`]: firmres_dataflow::TaintEngine::lib_matched
pub fn merge_unit_event_streams(
    cx: &mut AnalysisContext<'_>,
    units: &[UnitView],
    lib_matched: u64,
) {
    cx.replay_stage(
        StageKind::FieldId,
        units.iter().map(|u| &u.events.field_id),
        |cx| {
            let hits = memo_hits(units.iter().flat_map(|u| u.taint_keys.iter().copied()));
            if hits > 0 {
                cx.count(Counter::TaintCacheHits, hits);
            }
            if lib_matched > 0 {
                cx.count(Counter::LibFnsMatched, lib_matched);
            }
        },
    );
    cx.replay_stage(
        StageKind::Semantics,
        units.iter().map(|u| &u.events.semantics),
        |cx| {
            if cx.inputs.classifier.is_none() && units.iter().any(|u| u.slices_nonempty) {
                cx.diagnose(Diagnostic::bare(
                    StageKind::Semantics,
                    Severity::Info,
                    "no trained classifier; falling back to keyword weak-labeling",
                ));
            }
        },
    );
    cx.replay_stage(
        StageKind::Concat,
        units.iter().map(|u| &u.events.concat),
        |_| {},
    );
    cx.replay_stage(
        StageKind::FormCheck,
        units.iter().map(|u| &u.events.form_check),
        |_| {},
    );
}

// ---------------------------------------------------------------------------
// The classic per-stage API
// ---------------------------------------------------------------------------

/// Stage 1: pinpoint the device-cloud executable (paper §IV-A).
///
/// Every executable entry in the image is tried; among those that parse,
/// lift and exhibit device-cloud handler sequences, the one with the
/// highest handler score wins (earliest image order breaks ties), and the
/// runners-up are noted at info severity. Parse and lift failures become
/// warnings; executables with no handler sequences are noted at info
/// severity.
pub struct ExeIdStage;

/// Probe one executable entry as a device-cloud candidate, buffering the
/// stage-1 counter advances and diagnostics into `events` instead of a
/// live context.
///
/// This is the per-executable body of [`ExeIdStage::run`], factored out so
/// incremental drivers can (re-)probe individual executables and persist
/// or replay their exact event streams: replaying `events` into the
/// ExeId stage reproduces what a live probe of the same bytes emits,
/// event for event. Returns the candidate when the entry parses, lifts
/// and exhibits device-cloud handler sequences.
pub fn probe_executable(
    path: &str,
    bytes: &[u8],
    config: &crate::exeid::ExeIdConfig,
    events: &mut StageEvents,
) -> Option<ChosenExecutable> {
    events.count(Counter::ExecutablesTried, 1);
    let exe = match firmres_isa::Executable::from_bytes(bytes) {
        Ok(exe) => exe,
        Err(e) => {
            events.count(Counter::ParseFailures, 1);
            events.diagnose(Diagnostic::new(
                StageKind::ExeId,
                Severity::Warning,
                path,
                format!("unparseable executable: {e}"),
            ));
            return None;
        }
    };
    let program = match firmres_isa::lift(&exe, path) {
        Ok(program) => program,
        Err(e) => {
            events.count(Counter::LiftFailures, 1);
            events.diagnose(Diagnostic::new(
                StageKind::ExeId,
                Severity::Warning,
                path,
                format!("lift failed: {e}"),
            ));
            return None;
        }
    };
    let handlers = identify_device_cloud(&program, config);
    if handlers.is_empty() {
        events.diagnose(Diagnostic::new(
            StageKind::ExeId,
            Severity::Info,
            path,
            "no device-cloud handler sequences",
        ));
        return None;
    }
    Some(ChosenExecutable {
        path: path.to_string(),
        program,
        handlers,
    })
}

impl ExeIdStage {
    /// Run the stage. `None` means no usable device-cloud executable was
    /// found (the diagnostics say why).
    pub fn run(cx: &mut AnalysisContext<'_>) -> Option<ChosenExecutable> {
        cx.run_stage(StageKind::ExeId, |cx| {
            let mut candidates: Vec<ChosenExecutable> = Vec::new();
            for (path, bytes) in cx.inputs.fw.executables() {
                let mut events = StageEvents::default();
                let candidate =
                    probe_executable(path, bytes, &cx.inputs.config.exeid, &mut events);
                cx.replay_events(&events);
                if let Some(candidate) = candidate {
                    candidates.push(candidate);
                }
            }
            // Rank the qualifying executables by best handler score
            // (§IV-A scores candidates rather than taking the first
            // hit); earliest image order wins ties.
            let mut best = 0usize;
            for (i, c) in candidates.iter().enumerate().skip(1) {
                if c.best_score() > candidates[best].best_score() {
                    best = i;
                }
            }
            if candidates.len() > 1 {
                let winner = candidates[best].path.clone();
                let winner_score = candidates[best].best_score();
                for (i, c) in candidates.iter().enumerate() {
                    if i != best {
                        cx.diagnose(Diagnostic::new(
                            StageKind::ExeId,
                            Severity::Info,
                            &c.path,
                            format!(
                                "device-cloud candidate (best P_f {:.2}) outscored by {winner} (best P_f {winner_score:.2})",
                                c.best_score()
                            ),
                        ));
                    }
                }
            }
            candidates.into_iter().nth(best)
        })
    }
}

/// Stage 2: identify message fields via backward taint per delivery
/// callsite (paper §IV-B).
pub struct FieldIdStage;

impl FieldIdStage {
    /// Run the stage over the chosen executable, inline on the calling
    /// thread (the unit-parallel path is
    /// [`analyze_firmware_with_jobs`](crate::pipeline::analyze_firmware_with_jobs)).
    pub fn run(cx: &mut AnalysisContext<'_>, chosen: &ChosenExecutable) -> Vec<RawMessage> {
        cx.run_stage(StageKind::FieldId, |cx| {
            let engine = TaintEngine::with_config(&chosen.program, cx.inputs.config.taint.clone());
            let units = enumerate_units(&chosen.program, &chosen.handlers);
            let mut raws = Vec::with_capacity(units.len());
            let mut keys = Vec::new();
            for unit in &units {
                let mut ucx = UnitContext::new();
                let raw = ucx.run_stage(UnitStage::FieldId, |u| field_id_unit(&engine, unit, u));
                cx.replay_events(&ucx.events.field_id);
                keys.extend(ucx.taint_keys);
                raws.push(raw);
            }
            let hits = memo_hits(keys.into_iter());
            if hits > 0 {
                cx.count(Counter::TaintCacheHits, hits);
            }
            let matched = engine.lib_matched();
            if matched > 0 {
                cx.count(Counter::LibFnsMatched, matched);
            }
            raws
        })
    }
}

/// Stage 3: recover field semantics from enriched code slices (paper
/// §IV-C).
pub struct SemanticsStage;

impl SemanticsStage {
    /// Run the stage: render one slice per field leaf and classify each.
    pub fn run(
        cx: &mut AnalysisContext<'_>,
        chosen: &ChosenExecutable,
        raws: &[RawMessage],
    ) -> SliceSemantics {
        cx.run_stage(StageKind::Semantics, |cx| {
            let mode = cx.inputs.config.taint.cold_path;
            let renderer = SliceRenderer::with_mode(&chosen.program, mode);
            let classes = UnitClassifier::new(cx.inputs.classifier, mode);
            let mut slices = Vec::with_capacity(raws.len());
            let mut labeled = Vec::with_capacity(raws.len());
            let mut primitives = Vec::with_capacity(raws.len());
            for raw in raws {
                let mut ucx = UnitContext::new();
                let (s, l, p) = ucx.run_stage(UnitStage::Semantics, |u| {
                    semantics_unit(&renderer, &classes, raw, u)
                });
                cx.replay_events(&ucx.events.semantics);
                slices.push(s);
                labeled.push(l);
                primitives.push(p);
            }
            if cx.inputs.classifier.is_none() && slices.iter().any(|s| !s.is_empty()) {
                cx.diagnose(Diagnostic::bare(
                    StageKind::Semantics,
                    Severity::Info,
                    "no trained classifier; falling back to keyword weak-labeling",
                ));
            }
            SliceSemantics {
                slices,
                labeled,
                primitives,
            }
        })
    }
}

/// Stage 4: concatenate fields into messages; group and LAN-filter
/// (paper §IV-D).
pub struct ConcatStage;

impl ConcatStage {
    /// Run the stage, consuming the stage-2 and stage-3 artifacts.
    pub fn run(
        cx: &mut AnalysisContext<'_>,
        raws: Vec<RawMessage>,
        sem: SliceSemantics,
    ) -> Vec<MessageRecord> {
        cx.run_stage(StageKind::Concat, |cx| {
            let mut records = Vec::with_capacity(raws.len());
            for (((raw, slices), labeled), primitives) in raws
                .into_iter()
                .zip(sem.slices)
                .zip(sem.labeled)
                .zip(sem.primitives)
            {
                let mut ucx = UnitContext::new();
                let record = ucx.run_stage(UnitStage::Concat, |u| {
                    concat_unit(raw, slices, labeled, primitives, u)
                });
                cx.replay_events(&ucx.events.concat);
                records.push(record);
            }
            records
        })
    }
}

/// Stage 5: message-form checking of the counted records (paper §IV-E).
pub struct FormCheckStage;

impl FormCheckStage {
    /// Run the stage, filling `flaws` in place.
    pub fn run(cx: &mut AnalysisContext<'_>, records: &mut [MessageRecord]) {
        cx.run_stage(StageKind::FormCheck, |_cx| {
            for r in records.iter_mut() {
                form_check_unit(r);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::NullObserver;
    use firmres_corpus::generate_device;

    #[test]
    fn stages_compose_to_the_full_pipeline() {
        let dev = generate_device(10, 7);
        let config = AnalysisConfig::default();
        let mut obs = NullObserver;
        let mut cx = AnalysisContext::new(&dev.firmware, None, &config, &mut obs);
        let chosen = ExeIdStage::run(&mut cx).expect("device 10 has a cloud executable");
        assert_eq!(Some(chosen.path.as_str()), dev.cloud_executable.as_deref());
        let raws = FieldIdStage::run(&mut cx, &chosen);
        assert!(!raws.is_empty());
        let sem = SemanticsStage::run(&mut cx, &chosen, &raws);
        assert_eq!(sem.slices.len(), raws.len());
        let mut records = ConcatStage::run(&mut cx, raws, sem);
        FormCheckStage::run(&mut cx, &mut records);
        let analysis = cx.finish(Some(chosen.path), chosen.handlers, records);
        let reference = crate::analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        assert_eq!(
            analysis.identified().count(),
            reference.identified().count(),
            "manual stage composition matches the driver"
        );
        assert_eq!(analysis.identified_fields(), reference.identified_fields());
        // The per-stage path and the unit-merge path agree on every
        // observable, not just the headline numbers.
        assert_eq!(analysis.counters, reference.counters);
        assert_eq!(analysis.diagnostics, reference.diagnostics);
    }

    #[test]
    fn context_counters_track_work() {
        let dev = generate_device(10, 7);
        let config = AnalysisConfig::default();
        let mut obs = NullObserver;
        let mut cx = AnalysisContext::new(&dev.firmware, None, &config, &mut obs);
        let chosen = ExeIdStage::run(&mut cx).unwrap();
        let raws = FieldIdStage::run(&mut cx, &chosen);
        assert!(cx.counters().executables_tried >= 1);
        assert!(cx.counters().taint_queries >= raws.len() as u64);
    }

    #[test]
    fn unit_enumeration_is_deterministic() {
        let dev = generate_device(10, 7);
        let config = AnalysisConfig::default();
        let mut obs = NullObserver;
        let mut cx = AnalysisContext::new(&dev.firmware, None, &config, &mut obs);
        let chosen = ExeIdStage::run(&mut cx).unwrap();
        let a = enumerate_units(&chosen.program, &chosen.handlers);
        let b = enumerate_units(&chosen.program, &chosen.handlers);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.callsite, y.callsite);
            assert_eq!(x.callee, y.callee);
        }
    }

    #[test]
    fn memo_hits_replays_the_canonical_order() {
        let k = |a: u64, b: u64, c: usize| (a, b, c);
        assert_eq!(memo_hits([].into_iter()), 0);
        assert_eq!(memo_hits([k(1, 2, 0), k(1, 2, 1)].into_iter()), 0);
        assert_eq!(
            memo_hits([k(1, 2, 0), k(1, 2, 0), k(1, 2, 0)].into_iter()),
            2
        );
    }
}
