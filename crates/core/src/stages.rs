//! The staged pipeline: five typed stages over a shared
//! [`AnalysisContext`].
//!
//! Each stage of the paper's Fig. 3 workflow is a function over the
//! context producing a typed artifact:
//!
//! 1. [`ExeIdStage`] → [`ChosenExecutable`] — pinpoint the device-cloud
//!    executable;
//! 2. [`FieldIdStage`] → [`RawMessage`]s — backward taint per delivery
//!    callsite;
//! 3. [`SemanticsStage`] → [`SliceSemantics`] — render and classify
//!    enriched code slices;
//! 4. [`ConcatStage`] → [`MessageRecord`]s — reconstruct and annotate
//!    messages, LAN/echo filtering;
//! 5. [`FormCheckStage`] — message-form findings in place.
//!
//! The context owns the cross-cutting concerns: wall-clock timing per
//! stage, work counters, structured diagnostics, and fan-out to the
//! caller's [`Observer`]. Stages never call `Instant::now` themselves —
//! [`AnalysisContext::run_stage`] brackets each run.
//!
//! [`analyze_firmware`](crate::analyze_firmware) drives all five stages;
//! use the stages directly when you need intermediate artifacts (e.g.
//! raw taint results before reconstruction).

use crate::error::{Diagnostic, Severity, StageKind};
use crate::exeid::{identify_device_cloud, HandlerInfo};
use crate::formcheck::check_message;
use crate::observe::{Counter, Observer, StageCounters};
use crate::pipeline::{AnalysisConfig, FirmwareAnalysis, MessageRecord, StageTimings};
use firmres_dataflow::{
    delivery_endpoint_arg, delivery_payload_arg, FieldSource, SourceKind, TaintEngine,
};
use firmres_firmware::FirmwareImage;
use firmres_ir::{Address, Program};
use firmres_mft::{mentions_lan, reconstruct, CodeSlice, Mft};
use firmres_semantics::{weak_label, Classifier, Primitive};
use std::collections::HashSet;
use std::time::Instant;

/// Shared state threaded through the pipeline stages: the inputs plus
/// the accumulating timings, counters and diagnostics.
pub struct AnalysisContext<'a> {
    /// The firmware image under analysis.
    pub fw: &'a FirmwareImage,
    /// The trained semantics model, if any (`None` falls back to keyword
    /// weak-labeling).
    pub classifier: Option<&'a Classifier>,
    /// Pipeline configuration.
    pub config: &'a AnalysisConfig,
    observer: &'a mut dyn Observer,
    timings: StageTimings,
    counters: StageCounters,
    diagnostics: Vec<Diagnostic>,
}

impl<'a> AnalysisContext<'a> {
    /// Build a context over one firmware image.
    pub fn new(
        fw: &'a FirmwareImage,
        classifier: Option<&'a Classifier>,
        config: &'a AnalysisConfig,
        observer: &'a mut dyn Observer,
    ) -> Self {
        AnalysisContext {
            fw,
            classifier,
            config,
            observer,
            timings: StageTimings::default(),
            counters: StageCounters::default(),
            diagnostics: Vec::new(),
        }
    }

    /// Run `body` as stage `kind`: notifies the observer, times the run,
    /// and files the elapsed time under the matching [`StageTimings`]
    /// bucket.
    pub fn run_stage<T>(&mut self, kind: StageKind, body: impl FnOnce(&mut Self) -> T) -> T {
        self.observer.stage_started(kind);
        let start = Instant::now();
        let out = body(self);
        let elapsed = start.elapsed();
        match kind {
            StageKind::ExeId => self.timings.exeid += elapsed,
            StageKind::FieldId => self.timings.field_identification += elapsed,
            StageKind::Semantics => self.timings.semantics += elapsed,
            StageKind::Concat => self.timings.concatenation += elapsed,
            StageKind::FormCheck => self.timings.form_check += elapsed,
            // Not pipeline stages: no timing bucket to file under.
            StageKind::Input | StageKind::Cache => {}
        }
        self.observer.stage_finished(kind, elapsed);
        out
    }

    /// Advance a work counter and forward the event to the observer.
    pub fn count(&mut self, counter: Counter, n: u64) {
        self.counters.record(counter, n);
        self.observer.count(counter, n);
    }

    /// Record a diagnostic and forward it to the observer.
    pub fn diagnose(&mut self, diagnostic: Diagnostic) {
        self.observer.diagnostic(&diagnostic);
        self.diagnostics.push(diagnostic);
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> &StageCounters {
        &self.counters
    }

    /// Diagnostics recorded so far.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consume the context into the final analysis result.
    pub fn finish(
        self,
        executable: Option<String>,
        handlers: Vec<HandlerInfo>,
        messages: Vec<MessageRecord>,
    ) -> FirmwareAnalysis {
        FirmwareAnalysis {
            executable,
            handlers,
            messages,
            timings: self.timings,
            counters: self.counters,
            diagnostics: self.diagnostics,
        }
    }
}

/// Stage-1 artifact: the pinpointed device-cloud executable.
pub struct ChosenExecutable {
    /// Path of the executable inside the firmware image.
    pub path: String,
    /// The lifted program.
    pub program: Program,
    /// Scored handler information (non-empty by construction).
    pub handlers: Vec<HandlerInfo>,
}

/// Stage-2 artifact: one delivery callsite with its backward-taint
/// results, before reconstruction.
#[derive(Debug, Clone)]
pub struct RawMessage {
    /// Function containing the delivery callsite.
    pub function: String,
    /// The delivery callsite address.
    pub callsite: Address,
    /// Whether the callsite sits inside an identified request handler.
    pub in_handler: bool,
    /// The message field tree built from the payload taint.
    pub mft: Mft,
    /// Endpoint string (MQTT topic / HTTP path), when resolvable and
    /// distinct from the payload argument.
    pub endpoint: Option<String>,
    /// Whether the delivery host resolved to a LAN address.
    pub host_lan: bool,
}

/// Stage-3 artifact: rendered slices and their classified semantics,
/// parallel to the stage-2 [`RawMessage`] list.
pub struct SliceSemantics {
    /// Enriched code slices per message (one inner vec per raw message).
    pub slices: Vec<Vec<CodeSlice>>,
    /// `(field origin, primitive)` pairs per message, consumed by the
    /// concatenation stage's origin matching.
    pub labeled: Vec<Vec<(FieldSource, Primitive)>>,
    /// Raw primitive per slice, parallel to `slices`.
    pub primitives: Vec<Vec<Primitive>>,
}

/// Classify one slice's semantics: with a trained classifier when given,
/// otherwise the keyword weak-labeler.
fn classify(classifier: Option<&Classifier>, text: &str) -> Primitive {
    match classifier {
        Some(c) => c.predict(text).0,
        None => weak_label(text),
    }
}

/// Stage 1: pinpoint the device-cloud executable (paper §IV-A).
///
/// Tries every executable entry in the image; the first one that parses,
/// lifts and exhibits device-cloud handler sequences wins. Parse and
/// lift failures become warnings; executables with no handler sequences
/// are noted at info severity.
pub struct ExeIdStage;

impl ExeIdStage {
    /// Run the stage. `None` means no usable device-cloud executable was
    /// found (the diagnostics say why).
    pub fn run(cx: &mut AnalysisContext<'_>) -> Option<ChosenExecutable> {
        cx.run_stage(StageKind::ExeId, |cx| {
            let mut chosen = None;
            for (path, bytes) in cx.fw.executables() {
                cx.count(Counter::ExecutablesTried, 1);
                let exe = match firmres_isa::Executable::from_bytes(bytes) {
                    Ok(exe) => exe,
                    Err(e) => {
                        cx.count(Counter::ParseFailures, 1);
                        cx.diagnose(Diagnostic::new(
                            StageKind::ExeId,
                            Severity::Warning,
                            path,
                            format!("unparseable executable: {e}"),
                        ));
                        continue;
                    }
                };
                let program = match firmres_isa::lift(&exe, path) {
                    Ok(program) => program,
                    Err(e) => {
                        cx.count(Counter::LiftFailures, 1);
                        cx.diagnose(Diagnostic::new(
                            StageKind::ExeId,
                            Severity::Warning,
                            path,
                            format!("lift failed: {e}"),
                        ));
                        continue;
                    }
                };
                let handlers = identify_device_cloud(&program, &cx.config.exeid);
                if handlers.is_empty() {
                    cx.diagnose(Diagnostic::new(
                        StageKind::ExeId,
                        Severity::Info,
                        path,
                        "no device-cloud handler sequences",
                    ));
                    continue;
                }
                chosen = Some(ChosenExecutable {
                    path: path.to_string(),
                    program,
                    handlers,
                });
                break;
            }
            chosen
        })
    }
}

/// Stage 2: identify message fields via backward taint per delivery
/// callsite (paper §IV-B).
pub struct FieldIdStage;

impl FieldIdStage {
    /// Run the stage over the chosen executable.
    pub fn run(cx: &mut AnalysisContext<'_>, chosen: &ChosenExecutable) -> Vec<RawMessage> {
        cx.run_stage(StageKind::FieldId, |cx| {
            let program = &chosen.program;
            let handler_funcs: HashSet<Address> =
                chosen.handlers.iter().map(|h| h.handler_func).collect();
            let mut engine = TaintEngine::with_config(program, cx.config.taint.clone());
            let mut raws: Vec<RawMessage> = Vec::new();
            for f in program.functions() {
                for op in f.callsites() {
                    let Some(name) = op.call_target().and_then(|t| program.callee_name(t)) else {
                        continue;
                    };
                    let Some(payload_arg) = delivery_payload_arg(name) else {
                        continue;
                    };
                    cx.count(Counter::TaintQueries, 1);
                    let tree = engine.trace(f.entry(), op.addr, payload_arg);
                    let unresolved = tree
                        .sources()
                        .filter(|n| matches!(n.source(), Some(FieldSource::Unresolved { .. })))
                        .count();
                    if unresolved > 0 {
                        cx.diagnose(Diagnostic::new(
                            StageKind::FieldId,
                            Severity::Info,
                            format!("{}@{:#x}", f.name(), op.addr),
                            format!("{unresolved} unresolved taint source(s) in {name} payload"),
                        ));
                    }
                    let mft = Mft::from_taint(&tree);
                    // Endpoint argument (MQTT topic / HTTP path), when
                    // distinct.
                    let mut endpoint = None;
                    if let Some(ep_arg) = delivery_endpoint_arg(name) {
                        if ep_arg != payload_arg {
                            cx.count(Counter::TaintQueries, 1);
                            let ep_tree = engine.trace(f.entry(), op.addr, ep_arg);
                            endpoint = ep_tree.sources().find_map(|n| match n.source() {
                                Some(FieldSource::StringConstant { value, .. }) => {
                                    Some(value.clone())
                                }
                                _ => None,
                            });
                        }
                    }
                    // Address argument (HTTP host) for the LAN filter.
                    let mut host_lan = false;
                    if matches!(name, "http_post" | "http_get") {
                        cx.count(Counter::TaintQueries, 1);
                        let host_tree = engine.trace(f.entry(), op.addr, 0);
                        host_lan = host_tree.sources().any(|n| {
                            matches!(n.source(), Some(FieldSource::StringConstant { value, .. })
                                if firmres_mft::is_lan_address(value))
                        });
                    }
                    raws.push(RawMessage {
                        function: f.name().to_string(),
                        callsite: op.addr,
                        in_handler: handler_funcs.contains(&f.entry()),
                        mft,
                        endpoint,
                        host_lan,
                    });
                }
            }
            let (hits, _misses) = engine.cache_stats();
            if hits > 0 {
                cx.count(Counter::TaintCacheHits, hits);
            }
            raws
        })
    }
}

/// Stage 3: recover field semantics from enriched code slices (paper
/// §IV-C).
pub struct SemanticsStage;

impl SemanticsStage {
    /// Run the stage: render one slice per field leaf and classify each.
    pub fn run(
        cx: &mut AnalysisContext<'_>,
        chosen: &ChosenExecutable,
        raws: &[RawMessage],
    ) -> SliceSemantics {
        cx.run_stage(StageKind::Semantics, |cx| {
            let mut renderer = firmres_mft::SliceRenderer::new(&chosen.program);
            let mut slices: Vec<Vec<CodeSlice>> = Vec::with_capacity(raws.len());
            for raw in raws {
                let rendered = renderer.slices_for_tree(&raw.mft);
                cx.count(Counter::SlicesRendered, rendered.len() as u64);
                slices.push(rendered);
            }
            if cx.classifier.is_none() && slices.iter().any(|s| !s.is_empty()) {
                cx.diagnose(Diagnostic::bare(
                    StageKind::Semantics,
                    Severity::Info,
                    "no trained classifier; falling back to keyword weak-labeling",
                ));
            }
            let mut labeled: Vec<Vec<(FieldSource, Primitive)>> = Vec::with_capacity(slices.len());
            let mut primitives: Vec<Vec<Primitive>> = Vec::with_capacity(slices.len());
            for per_msg in &slices {
                let mut sems = Vec::new();
                let mut raw_sems = Vec::new();
                for s in per_msg {
                    let primitive = classify(cx.classifier, &s.text);
                    sems.push((s.source.clone(), primitive));
                    raw_sems.push(primitive);
                }
                labeled.push(sems);
                primitives.push(raw_sems);
            }
            SliceSemantics {
                slices,
                labeled,
                primitives,
            }
        })
    }
}

/// Stage 4: concatenate fields into messages; group and LAN-filter
/// (paper §IV-D).
pub struct ConcatStage;

impl ConcatStage {
    /// Run the stage, consuming the stage-2 and stage-3 artifacts.
    pub fn run(
        cx: &mut AnalysisContext<'_>,
        raws: Vec<RawMessage>,
        sem: SliceSemantics,
    ) -> Vec<MessageRecord> {
        cx.run_stage(StageKind::Concat, |cx| {
            let mut records: Vec<MessageRecord> = Vec::with_capacity(raws.len());
            for (((raw, slices), sems), slice_semantics) in raws
                .into_iter()
                .zip(sem.slices)
                .zip(sem.labeled)
                .zip(sem.primitives)
            {
                let mut message = reconstruct(&raw.mft);
                message.endpoint = raw.endpoint.clone();
                // Attach recovered semantics to fields by matching
                // origins.
                let mut pool = sems;
                for field in &mut message.fields {
                    if let Some(pos) = pool.iter().position(|(src, _)| *src == field.origin) {
                        let (_, primitive) = pool.remove(pos);
                        field.semantic = Some(primitive.label().to_string());
                        cx.count(Counter::FieldsMatched, 1);
                    }
                }
                let lan_discarded = raw.host_lan || mentions_lan(&raw.mft);
                // A delivery whose payload is entirely network input
                // inside the request handler is the handler's response
                // echo, not a constructed device-cloud message.
                let is_response_echo = raw.in_handler
                    && !message.fields.is_empty()
                    && message.fields.iter().all(|f| {
                        matches!(
                            &f.origin,
                            FieldSource::LibCall {
                                kind: SourceKind::NetworkIn,
                                ..
                            } | FieldSource::Unresolved { .. }
                        )
                    });
                records.push(MessageRecord {
                    function: raw.function,
                    callsite: raw.callsite,
                    mft: raw.mft,
                    slices,
                    slice_semantics,
                    message,
                    lan_discarded,
                    is_response_echo,
                    flaws: Vec::new(),
                });
            }
            records
        })
    }
}

/// Stage 5: message-form checking of the counted records (paper §IV-E).
pub struct FormCheckStage;

impl FormCheckStage {
    /// Run the stage, filling `flaws` in place.
    pub fn run(cx: &mut AnalysisContext<'_>, records: &mut [MessageRecord]) {
        cx.run_stage(StageKind::FormCheck, |_cx| {
            for r in records.iter_mut() {
                if !r.counts() {
                    continue;
                }
                let endpoint = crate::probe::extract_endpoint(&r.message).unwrap_or_default();
                r.flaws = check_message(&r.message, &endpoint);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::NullObserver;
    use firmres_corpus::generate_device;

    #[test]
    fn stages_compose_to_the_full_pipeline() {
        let dev = generate_device(10, 7);
        let config = AnalysisConfig::default();
        let mut obs = NullObserver;
        let mut cx = AnalysisContext::new(&dev.firmware, None, &config, &mut obs);
        let chosen = ExeIdStage::run(&mut cx).expect("device 10 has a cloud executable");
        assert_eq!(Some(chosen.path.as_str()), dev.cloud_executable.as_deref());
        let raws = FieldIdStage::run(&mut cx, &chosen);
        assert!(!raws.is_empty());
        let sem = SemanticsStage::run(&mut cx, &chosen, &raws);
        assert_eq!(sem.slices.len(), raws.len());
        let mut records = ConcatStage::run(&mut cx, raws, sem);
        FormCheckStage::run(&mut cx, &mut records);
        let analysis = cx.finish(Some(chosen.path), chosen.handlers, records);
        let reference = crate::analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        assert_eq!(
            analysis.identified().count(),
            reference.identified().count(),
            "manual stage composition matches the driver"
        );
        assert_eq!(analysis.identified_fields(), reference.identified_fields());
    }

    #[test]
    fn context_counters_track_work() {
        let dev = generate_device(10, 7);
        let config = AnalysisConfig::default();
        let mut obs = NullObserver;
        let mut cx = AnalysisContext::new(&dev.firmware, None, &config, &mut obs);
        let chosen = ExeIdStage::run(&mut cx).unwrap();
        let raws = FieldIdStage::run(&mut cx, &chosen);
        assert!(cx.counters().executables_tried >= 1);
        assert!(cx.counters().taint_queries >= raws.len() as u64);
    }
}
