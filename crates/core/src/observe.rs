//! Pipeline observability: the [`Observer`] trait, owned [`Event`]
//! values, and per-stage counters.
//!
//! The staged pipeline ([`crate::stages`]) reports *everything it does* —
//! stage boundaries with timing, per-stage work counters, and structured
//! [`Diagnostic`]s — through a caller-supplied [`Observer`] instead of
//! ad-hoc inline timing. [`analyze_firmware`] uses [`NullObserver`];
//! callers that want live progress or telemetry pass their own
//! implementation to [`analyze_firmware_with`]. The analysis result
//! always carries the accumulated [`StageTimings`], [`StageCounters`]
//! and diagnostics regardless of the observer.
//!
//! The `Observer` trait itself is a single-threaded adapter (`&mut
//! self`). The unit-parallel stages 2–5 therefore never call it from a
//! worker: each message unit buffers its counter/diagnostic events as
//! owned, `Send` [`Event`] values in a [`StageEvents`] buffer, the pool
//! funnels the buffers back over its channel, and the merge step replays
//! them into the observer in deterministic unit order (see
//! [`crate::stages`]).
//!
//! [`analyze_firmware`]: crate::analyze_firmware
//! [`analyze_firmware_with`]: crate::analyze_firmware_with
//! [`StageTimings`]: crate::StageTimings

use crate::error::{Diagnostic, StageKind};
use std::time::Duration;

/// Which [`StageCounters`] field an event increments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Executable entries attempted during pinpointing.
    ExecutablesTried,
    /// Executables that failed MRE parsing.
    ParseFailures,
    /// Executables that parsed but failed to lift to IR.
    LiftFailures,
    /// Backward-taint queries issued (payload, endpoint and host traces).
    TaintQueries,
    /// Taint queries answered from the engine's memo cache.
    TaintCacheHits,
    /// Enriched code slices rendered for classification.
    SlicesRendered,
    /// Message fields matched to a recovered semantic primitive.
    FieldsMatched,
    /// Analysis-cache lookups answered from the store (the whole
    /// pipeline was skipped).
    CacheHits,
    /// Analysis-cache lookups that missed (including corrupted entries
    /// that fell back to re-analysis).
    CacheMisses,
    /// Bytes read from the analysis cache store.
    CacheBytesRead,
    /// Bytes written to the analysis cache store.
    CacheBytesWritten,
    /// Functions hash-matched against the known-library index.
    LibFnsMatched,
    /// Library-body traversals replaced by taint-script replay.
    LibTraversalsSkipped,
    /// Taint-tree nodes emitted by script replay.
    LibSummaryApplies,
    /// Slice texts classified through the batched semantics path.
    SlicesBatched,
    /// Slices the certified None pre-filter resolved without scoring.
    PrefilterSkips,
    /// Slice classifications answered by the corpus-wide class cache.
    ClassCacheHits,
}

/// Per-stage work counters accumulated over one analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Executable entries attempted during pinpointing (stage 1).
    pub executables_tried: u64,
    /// Executables that failed MRE parsing (stage 1).
    pub parse_failures: u64,
    /// Executables that parsed but failed to lift (stage 1).
    pub lift_failures: u64,
    /// Backward-taint queries issued (stage 2).
    pub taint_queries: u64,
    /// Taint queries answered from the memo cache (stage 2).
    pub taint_cache_hits: u64,
    /// Enriched code slices rendered (stage 3).
    pub slices_rendered: u64,
    /// Fields matched to a semantic primitive (stage 4).
    pub fields_matched: u64,
    /// Analysis-cache hits (corpus drivers; always 0 inside one
    /// pipeline run — cached results skip the pipeline entirely).
    pub cache_hits: u64,
    /// Analysis-cache misses (corpus drivers).
    pub cache_misses: u64,
    /// Bytes read from the analysis cache store.
    pub cache_bytes_read: u64,
    /// Bytes written to the analysis cache store.
    pub cache_bytes_written: u64,
    /// Functions hash-matched against the known-library index (stage 2).
    pub lib_fns_matched: u64,
    /// Library-body traversals replaced by script replay (stage 2).
    pub lib_traversals_skipped: u64,
    /// Taint-tree nodes emitted by script replay (stage 2).
    pub lib_summary_applies: u64,
    /// Slice texts classified through the batched semantics path
    /// (stage 3; corpus drivers — warmth-dependent, so never emitted
    /// per unit).
    pub slices_batched: u64,
    /// Slices the certified None pre-filter skipped scoring for
    /// (corpus drivers; see `slices_batched` on why).
    pub prefilter_skips: u64,
    /// Slice classifications answered by the corpus-wide class cache
    /// (corpus drivers; see `slices_batched` on why).
    pub class_cache_hits: u64,
}

impl StageCounters {
    /// Add `n` to the counter identified by `counter`.
    pub fn record(&mut self, counter: Counter, n: u64) {
        match counter {
            Counter::ExecutablesTried => self.executables_tried += n,
            Counter::ParseFailures => self.parse_failures += n,
            Counter::LiftFailures => self.lift_failures += n,
            Counter::TaintQueries => self.taint_queries += n,
            Counter::TaintCacheHits => self.taint_cache_hits += n,
            Counter::SlicesRendered => self.slices_rendered += n,
            Counter::FieldsMatched => self.fields_matched += n,
            Counter::CacheHits => self.cache_hits += n,
            Counter::CacheMisses => self.cache_misses += n,
            Counter::CacheBytesRead => self.cache_bytes_read += n,
            Counter::CacheBytesWritten => self.cache_bytes_written += n,
            Counter::LibFnsMatched => self.lib_fns_matched += n,
            Counter::LibTraversalsSkipped => self.lib_traversals_skipped += n,
            Counter::LibSummaryApplies => self.lib_summary_applies += n,
            Counter::SlicesBatched => self.slices_batched += n,
            Counter::PrefilterSkips => self.prefilter_skips += n,
            Counter::ClassCacheHits => self.class_cache_hits += n,
        }
    }

    /// Read the counter identified by `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        match counter {
            Counter::ExecutablesTried => self.executables_tried,
            Counter::ParseFailures => self.parse_failures,
            Counter::LiftFailures => self.lift_failures,
            Counter::TaintQueries => self.taint_queries,
            Counter::TaintCacheHits => self.taint_cache_hits,
            Counter::SlicesRendered => self.slices_rendered,
            Counter::FieldsMatched => self.fields_matched,
            Counter::CacheHits => self.cache_hits,
            Counter::CacheMisses => self.cache_misses,
            Counter::CacheBytesRead => self.cache_bytes_read,
            Counter::CacheBytesWritten => self.cache_bytes_written,
            Counter::LibFnsMatched => self.lib_fns_matched,
            Counter::LibTraversalsSkipped => self.lib_traversals_skipped,
            Counter::LibSummaryApplies => self.lib_summary_applies,
            Counter::SlicesBatched => self.slices_batched,
            Counter::PrefilterSkips => self.prefilter_skips,
            Counter::ClassCacheHits => self.class_cache_hits,
        }
    }
}

/// One pipeline event as a plain owned value.
///
/// Unlike the [`Observer`] callbacks, an `Event` borrows nothing: it is
/// `Send + 'static`, so message units running on worker threads can
/// buffer the events they produce and hand them back across the pool's
/// channel for deterministic replay.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A stage is about to run.
    StageStarted(StageKind),
    /// A stage finished after the given wall-clock time.
    StageFinished(StageKind, Duration),
    /// A work counter advanced by `n`.
    Count(Counter, u64),
    /// A diagnostic was recorded.
    Diagnostic(Diagnostic),
}

/// The events one message unit produced in one pipeline stage, in
/// emission order, plus the CPU time the unit spent there.
///
/// This is the thread-safe half of the observability story: workers fill
/// `StageEvents` buffers (plain `Send` values — the pool's result channel
/// is the fan-in), and the merge step replays them into the
/// single-threaded [`Observer`] in unit order, so the observer sees the
/// same deterministic stream whatever the job count.
#[derive(Debug, Clone, Default)]
pub struct StageEvents {
    /// Counter and diagnostic events in emission order.
    pub events: Vec<Event>,
    /// CPU time the unit spent in the stage (summed into the stage's
    /// [`StageTimings`] bucket at merge).
    ///
    /// [`StageTimings`]: crate::StageTimings
    pub elapsed: Duration,
}

impl StageEvents {
    /// Record a counter advance.
    pub fn count(&mut self, counter: Counter, n: u64) {
        self.events.push(Event::Count(counter, n));
    }

    /// Record a diagnostic.
    pub fn diagnose(&mut self, diagnostic: Diagnostic) {
        self.events.push(Event::Diagnostic(diagnostic));
    }

    /// Replay the buffered events into `observer`, preserving emission
    /// order.
    pub fn replay(&self, observer: &mut dyn Observer) {
        for ev in &self.events {
            match ev {
                Event::StageStarted(stage) => observer.stage_started(*stage),
                Event::StageFinished(stage, elapsed) => observer.stage_finished(*stage, *elapsed),
                Event::Count(counter, n) => observer.count(*counter, *n),
                Event::Diagnostic(d) => observer.diagnostic(d),
            }
        }
    }
}

/// Receives pipeline events as they happen.
///
/// All methods have empty default bodies, so an implementation only
/// overrides what it cares about. Events arrive strictly in pipeline
/// order within one analysis; for the unit-parallel stages that order is
/// reconstructed at merge time (per-unit buffers replayed in unit
/// order), not the workers' completion order.
pub trait Observer {
    /// A stage is about to run.
    fn stage_started(&mut self, stage: StageKind) {
        let _ = stage;
    }

    /// A stage finished after `elapsed` wall-clock time.
    fn stage_finished(&mut self, stage: StageKind, elapsed: Duration) {
        let _ = (stage, elapsed);
    }

    /// A work counter advanced by `n`.
    fn count(&mut self, counter: Counter, n: u64) {
        let _ = (counter, n);
    }

    /// A diagnostic was recorded.
    fn diagnostic(&mut self, diagnostic: &Diagnostic) {
        let _ = diagnostic;
    }
}

/// The do-nothing observer used by the infallible convenience entry
/// points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// An observer that records everything it sees — stage timings in
/// pipeline order, accumulated counters, and cloned diagnostics.
///
/// Useful in tests and tools that want the event stream without
/// implementing [`Observer`] themselves.
#[derive(Debug, Clone, Default)]
pub struct CollectingObserver {
    /// `(stage, elapsed)` pairs in the order stages finished.
    pub stages: Vec<(StageKind, Duration)>,
    /// Accumulated counters.
    pub counters: StageCounters,
    /// All diagnostics, in the order they were recorded.
    pub diagnostics: Vec<Diagnostic>,
}

impl Observer for CollectingObserver {
    fn stage_finished(&mut self, stage: StageKind, elapsed: Duration) {
        self.stages.push((stage, elapsed));
    }

    fn count(&mut self, counter: Counter, n: u64) {
        self.counters.record(counter, n);
    }

    fn diagnostic(&mut self, diagnostic: &Diagnostic) {
        self.diagnostics.push(diagnostic.clone());
    }
}

/// An observer that forwards every callback as an owned [`Event`] to a
/// closure.
///
/// This is the bridge between the borrow-based [`Observer`] trait and
/// consumers that need `Send + 'static` values — the `firmres-service`
/// daemon wraps one around a frame encoder to stream live pipeline
/// progress to a remote client, and tests use it to capture the raw
/// event stream.
#[derive(Debug)]
pub struct FnObserver<F: FnMut(Event)> {
    sink: F,
}

impl<F: FnMut(Event)> FnObserver<F> {
    /// Forward every event to `sink`.
    pub fn new(sink: F) -> Self {
        FnObserver { sink }
    }
}

impl<F: FnMut(Event)> Observer for FnObserver<F> {
    fn stage_started(&mut self, stage: StageKind) {
        (self.sink)(Event::StageStarted(stage));
    }

    fn stage_finished(&mut self, stage: StageKind, elapsed: Duration) {
        (self.sink)(Event::StageFinished(stage, elapsed));
    }

    fn count(&mut self, counter: Counter, n: u64) {
        (self.sink)(Event::Count(counter, n));
    }

    fn diagnostic(&mut self, diagnostic: &Diagnostic) {
        (self.sink)(Event::Diagnostic(diagnostic.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Severity;

    #[test]
    fn counters_round_trip() {
        let mut c = StageCounters::default();
        c.record(Counter::TaintQueries, 3);
        c.record(Counter::TaintQueries, 2);
        c.record(Counter::FieldsMatched, 1);
        assert_eq!(c.get(Counter::TaintQueries), 5);
        assert_eq!(c.get(Counter::FieldsMatched), 1);
        assert_eq!(c.get(Counter::LiftFailures), 0);
    }

    #[test]
    fn fn_observer_bridges_callbacks_to_owned_events() {
        let mut seen = Vec::new();
        {
            let mut obs = FnObserver::new(|ev| seen.push(ev));
            obs.stage_started(StageKind::FieldId);
            obs.count(Counter::TaintQueries, 2);
            obs.diagnostic(&Diagnostic::bare(StageKind::FieldId, Severity::Info, "d"));
            obs.stage_finished(StageKind::FieldId, Duration::from_millis(1));
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], Event::StageStarted(StageKind::FieldId));
        assert_eq!(
            seen[3],
            Event::StageFinished(StageKind::FieldId, Duration::from_millis(1))
        );
        // Replaying the captured stream into a collector reconstructs it.
        let events = StageEvents {
            events: seen,
            ..StageEvents::default()
        };
        let mut collector = CollectingObserver::default();
        events.replay(&mut collector);
        assert_eq!(collector.counters.taint_queries, 2);
        assert_eq!(collector.stages.len(), 1);
        assert_eq!(collector.diagnostics.len(), 1);
    }

    #[test]
    fn collecting_observer_records_events() {
        let mut obs = CollectingObserver::default();
        obs.stage_started(StageKind::ExeId);
        obs.stage_finished(StageKind::ExeId, Duration::from_millis(2));
        obs.count(Counter::ExecutablesTried, 4);
        obs.diagnostic(&Diagnostic::bare(StageKind::ExeId, Severity::Warning, "x"));
        assert_eq!(
            obs.stages,
            vec![(StageKind::ExeId, Duration::from_millis(2))]
        );
        assert_eq!(obs.counters.executables_tried, 4);
        assert_eq!(obs.diagnostics.len(), 1);
    }
}
