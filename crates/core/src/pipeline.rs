//! The end-to-end FIRMRES pipeline (paper Fig. 3) with per-stage timing.

use crate::exeid::{identify_device_cloud, ExeIdConfig, HandlerInfo};
use crate::formcheck::{check_message, FormFlaw};
use firmres_dataflow::{
    delivery_endpoint_arg, delivery_payload_arg, FieldSource, SourceKind, TaintConfig,
    TaintEngine,
};
use firmres_firmware::FirmwareImage;
use firmres_ir::{Address, Program};
use firmres_mft::{mentions_lan, reconstruct, CodeSlice, Mft, ReconstructedMessage};
use firmres_semantics::{weak_label, Classifier, Primitive};
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    /// Executable-identification tuning.
    pub exeid: ExeIdConfig,
    /// Taint-engine tuning (over-taint toggle lives here).
    pub taint: TaintConfig,
}

/// Wall-clock cost of each pipeline stage (paper §V-E reports the same
/// five buckets).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Pinpointing device-cloud executables.
    pub exeid: Duration,
    /// Identifying message fields (taint analysis).
    pub field_identification: Duration,
    /// Recovering field semantics.
    pub semantics: Duration,
    /// Concatenating message fields.
    pub concatenation: Duration,
    /// Message-form checking.
    pub form_check: Duration,
}

impl StageTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.exeid
            + self.field_identification
            + self.semantics
            + self.concatenation
            + self.form_check
    }

    /// Per-stage share of the total, in the paper's reporting order.
    pub fn shares(&self) -> [f64; 5] {
        let total = self.total().as_secs_f64().max(1e-12);
        [
            self.exeid.as_secs_f64() / total,
            self.field_identification.as_secs_f64() / total,
            self.semantics.as_secs_f64() / total,
            self.concatenation.as_secs_f64() / total,
            self.form_check.as_secs_f64() / total,
        ]
    }
}

/// One reconstructed device-cloud message with its analysis artifacts.
#[derive(Debug, Clone)]
pub struct MessageRecord {
    /// Function containing the delivery callsite.
    pub function: String,
    /// The delivery callsite address.
    pub callsite: Address,
    /// The message field tree (original, pre-simplification).
    pub mft: Mft,
    /// Enriched code slices (one per field leaf).
    pub slices: Vec<CodeSlice>,
    /// Recovered primitive per slice (parallel to `slices`).
    pub slice_semantics: Vec<Primitive>,
    /// The reconstructed message, fields annotated with semantics.
    pub message: ReconstructedMessage,
    /// Whether the grouping step discarded it as LAN-addressed.
    pub lan_discarded: bool,
    /// Whether it was classified as a handler response (echo of received
    /// data) rather than a constructed device-cloud message.
    pub is_response_echo: bool,
    /// Message-form findings.
    pub flaws: Vec<FormFlaw>,
}

impl MessageRecord {
    /// Whether this record counts as an identified device-cloud message
    /// (not LAN-discarded, not a response echo).
    pub fn counts(&self) -> bool {
        !self.lan_discarded && !self.is_response_echo
    }
}

/// Full analysis result for one firmware image.
#[derive(Debug)]
pub struct FirmwareAnalysis {
    /// Path of the identified device-cloud executable, if any.
    pub executable: Option<String>,
    /// Scored handler information for the identified executable.
    pub handlers: Vec<HandlerInfo>,
    /// All reconstructed messages.
    pub messages: Vec<MessageRecord>,
    /// Per-stage timings.
    pub timings: StageTimings,
}

impl FirmwareAnalysis {
    /// Messages that count as identified (excludes LAN/echo records).
    pub fn identified(&self) -> impl Iterator<Item = &MessageRecord> {
        self.messages.iter().filter(|m| m.counts())
    }

    /// Total identified fields across counted messages.
    pub fn identified_fields(&self) -> usize {
        self.identified().map(|m| m.message.fields.len()).sum()
    }

    /// Messages flagged by the form check.
    pub fn flagged(&self) -> impl Iterator<Item = &MessageRecord> {
        self.identified().filter(|m| !m.flaws.is_empty())
    }
}

/// Classify one slice's semantics: with a trained classifier when given,
/// otherwise the keyword weak-labeler.
fn classify(classifier: Option<&Classifier>, text: &str) -> Primitive {
    match classifier {
        Some(c) => c.predict(text).0,
        None => weak_label(text),
    }
}

/// Analyze a firmware image end to end.
///
/// `classifier` is the trained semantics model; pass `None` to fall back
/// to keyword labeling (useful for quick runs — the benchmark harness
/// trains and passes a real model).
pub fn analyze_firmware(
    fw: &FirmwareImage,
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
) -> FirmwareAnalysis {
    let mut timings = StageTimings::default();

    // Stage 1: pinpoint the device-cloud executable.
    let t0 = Instant::now();
    let mut chosen: Option<(String, Program, Vec<HandlerInfo>)> = None;
    for (path, bytes) in fw.executables() {
        let Ok(exe) = firmres_isa::Executable::from_bytes(bytes) else { continue };
        let Ok(program) = firmres_isa::lift(&exe, path) else { continue };
        let handlers = identify_device_cloud(&program, &config.exeid);
        if !handlers.is_empty() {
            chosen = Some((path.to_string(), program, handlers));
            break;
        }
    }
    timings.exeid = t0.elapsed();
    let Some((path, program, handlers)) = chosen else {
        return FirmwareAnalysis { executable: None, handlers: Vec::new(), messages: Vec::new(), timings };
    };

    // Stage 2: identify message fields via backward taint per delivery
    // callsite.
    let t1 = Instant::now();
    let handler_funcs: Vec<Address> = handlers.iter().map(|h| h.handler_func).collect();
    let mut engine = TaintEngine::with_config(&program, config.taint.clone());
    struct Raw {
        function: String,
        callsite: Address,
        in_handler: bool,
        mft: Mft,
        endpoint: Option<String>,
        host_lan: bool,
    }
    let mut raws: Vec<Raw> = Vec::new();
    for f in program.functions() {
        for op in f.callsites() {
            let Some(name) = op.call_target().and_then(|t| program.callee_name(t)) else {
                continue;
            };
            let Some(payload_arg) = delivery_payload_arg(name) else { continue };
            let tree = engine.trace(f.entry(), op.addr, payload_arg);
            let mft = Mft::from_taint(&tree);
            // Endpoint argument (MQTT topic / HTTP path), when distinct.
            let mut endpoint = None;
            if let Some(ep_arg) = delivery_endpoint_arg(name) {
                if ep_arg != payload_arg {
                    let ep_tree = engine.trace(f.entry(), op.addr, ep_arg);
                    endpoint = ep_tree.sources().find_map(|n| match n.source() {
                        Some(FieldSource::StringConstant { value, .. }) => Some(value.clone()),
                        _ => None,
                    });
                }
            }
            // Address argument (HTTP host) for the LAN filter.
            let mut host_lan = false;
            if matches!(name, "http_post" | "http_get") {
                let host_tree = engine.trace(f.entry(), op.addr, 0);
                host_lan = host_tree.sources().any(|n| {
                    matches!(n.source(), Some(FieldSource::StringConstant { value, .. })
                        if firmres_mft::is_lan_address(value))
                });
            }
            raws.push(Raw {
                function: f.name().to_string(),
                callsite: op.addr,
                in_handler: handler_funcs.contains(&f.entry()),
                mft,
                endpoint,
                host_lan,
            });
        }
    }
    timings.field_identification = t1.elapsed();

    // Stage 3: semantics recovery on slices.
    let t2 = Instant::now();
    let mut renderer = firmres_mft::SliceRenderer::new(&program);
    let mut slices_per_msg: Vec<Vec<CodeSlice>> = Vec::with_capacity(raws.len());
    for raw in &raws {
        slices_per_msg.push(renderer.slices_for_tree(&raw.mft));
    }
    let mut semantics_per_msg: Vec<Vec<(FieldSource, Primitive)>> = Vec::new();
    let mut slice_semantics_per_msg: Vec<Vec<Primitive>> = Vec::new();
    for slices in &slices_per_msg {
        let mut sems = Vec::new();
        let mut raw_sems = Vec::new();
        for s in slices {
            let primitive = classify(classifier, &s.text);
            sems.push((s.source.clone(), primitive));
            raw_sems.push(primitive);
        }
        semantics_per_msg.push(sems);
        slice_semantics_per_msg.push(raw_sems);
    }
    timings.semantics = t2.elapsed();

    // Stage 4: concatenate fields into messages; group & LAN-filter.
    let t3 = Instant::now();
    let mut records: Vec<MessageRecord> = Vec::new();
    for (((raw, slices), sems), slice_semantics) in raws
        .into_iter()
        .zip(slices_per_msg.into_iter())
        .zip(semantics_per_msg.into_iter())
        .zip(slice_semantics_per_msg.into_iter())
    {
        let mut message = reconstruct(&raw.mft);
        message.endpoint = raw.endpoint.clone();
        // Attach recovered semantics to fields by matching origins.
        let mut pool = sems;
        for field in &mut message.fields {
            if let Some(pos) = pool.iter().position(|(src, _)| *src == field.origin) {
                let (_, primitive) = pool.remove(pos);
                field.semantic = Some(primitive.label().to_string());
            }
        }
        let lan_discarded = raw.host_lan || mentions_lan(&raw.mft);
        // A delivery whose payload is entirely network input inside the
        // request handler is the handler's response echo, not a
        // constructed device-cloud message.
        let is_response_echo = raw.in_handler
            && !message.fields.is_empty()
            && message.fields.iter().all(|f| {
                matches!(
                    &f.origin,
                    FieldSource::LibCall { kind: SourceKind::NetworkIn, .. }
                        | FieldSource::Unresolved { .. }
                )
            });
        records.push(MessageRecord {
            function: raw.function,
            callsite: raw.callsite,
            mft: raw.mft,
            slices,
            slice_semantics,
            message,
            lan_discarded,
            is_response_echo,
            flaws: Vec::new(),
        });
    }
    timings.concatenation = t3.elapsed();

    // Stage 5: message-form check.
    let t4 = Instant::now();
    for r in &mut records {
        if !r.counts() {
            continue;
        }
        let endpoint = crate::probe::extract_endpoint(&r.message).unwrap_or_default();
        r.flaws = check_message(&r.message, &endpoint);
    }
    timings.form_check = t4.elapsed();

    FirmwareAnalysis { executable: Some(path), handlers, messages: records, timings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_corpus::generate_device;

    #[test]
    fn analyzes_binary_device_end_to_end() {
        let dev = generate_device(10, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        assert_eq!(analysis.executable.as_deref(), dev.cloud_executable.as_deref());
        let identified = analysis.identified().count();
        let expected = dev.plans.iter().filter(|p| !p.lan).count();
        assert_eq!(identified, expected, "one message per non-LAN plan");
        assert!(analysis.identified_fields() > 0);
        assert!(analysis.timings.total() > Duration::ZERO);
    }

    #[test]
    fn script_device_yields_no_executable() {
        let dev = generate_device(21, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        assert!(analysis.executable.is_none());
        assert!(analysis.messages.is_empty());
    }

    #[test]
    fn lan_messages_are_discarded() {
        // Devices with id % 4 == 2 carry one LAN-addressed message.
        let dev = generate_device(6, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        let lan = analysis.messages.iter().filter(|m| m.lan_discarded).count();
        assert_eq!(lan, 1, "the LAN sync message is filtered");
    }

    #[test]
    fn handler_echo_is_not_a_message() {
        let dev = generate_device(10, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        let echoes = analysis.messages.iter().filter(|m| m.is_response_echo).count();
        assert_eq!(echoes, 1, "the handler ack send");
    }

    #[test]
    fn vulnerable_messages_are_flagged_by_form_check() {
        let dev = generate_device(20, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        // Device 20's storage endpoints are identifier-only: their
        // messages lack authenticity primitives and must be flagged.
        let flagged: Vec<&MessageRecord> = analysis.flagged().collect();
        assert!(
            flagged.len() >= 3,
            "storage trio flagged, got {} flagged messages",
            flagged.len()
        );
    }

    #[test]
    fn timings_shares_sum_to_one() {
        let dev = generate_device(15, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        let shares = analysis.timings.shares();
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to 1: {shares:?}");
    }
}
