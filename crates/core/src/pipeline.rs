//! The end-to-end FIRMRES pipeline (paper Fig. 3): entry points and
//! result types.
//!
//! The pipeline itself is staged — see [`crate::stages`] for the five
//! typed stages and the shared [`AnalysisContext`]. This module hosts the
//! drivers over those stages:
//!
//! * [`analyze_firmware`] — infallible convenience entry point; failures
//!   degrade into [`Diagnostic`]s on the result.
//! * [`analyze_firmware_with`] — same, streaming events to an
//!   [`Observer`].
//! * [`analyze_firmware_jobs`] / [`analyze_firmware_with_jobs`] — same
//!   again, fanning the per-callsite message units out over up to `jobs`
//!   worker threads ([`crate::stages`] describes the unit model). Every
//!   entry point funnels through this driver; `jobs = 1` runs inline, and
//!   the output is byte-identical at any job count.
//! * [`try_analyze_firmware`] — fallible variant returning
//!   [`Error::NoUsableExecutable`] when executables existed but none
//!   could be parsed and lifted.
//! * [`analyze_packed`] / [`try_analyze_packed`] — accept a packed
//!   firmware container and surface unpack failures as diagnostics or a
//!   typed [`Error`].
//!
//! [`AnalysisContext`]: crate::stages::AnalysisContext

use crate::driver::run_pool;
use crate::error::{Diagnostic, Error, Severity, StageKind};
use crate::exeid::{ExeIdConfig, HandlerInfo};
use crate::formcheck::FormFlaw;
use crate::observe::{NullObserver, Observer, StageCounters};
use crate::stages::{
    enumerate_units, merge_unit_outputs, run_message_unit, AnalysisContext, ExeIdStage,
    UnitClassifier,
};
use firmres_dataflow::{TaintConfig, TaintEngine};
use firmres_firmware::FirmwareImage;
use firmres_ir::Address;
use firmres_mft::{CodeSlice, Mft, ReconstructedMessage};
use firmres_semantics::{Classifier, Primitive};
use std::time::Duration;

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    /// Executable-identification tuning.
    pub exeid: ExeIdConfig,
    /// Taint-engine tuning (over-taint toggle lives here).
    pub taint: TaintConfig,
}

/// Cost of each pipeline stage (paper §V-E reports the same five
/// buckets).
///
/// `exeid` is wall-clock time. The unit-parallel stages 2–5 report the
/// **sum of per-unit thread time** (CPU time): with `jobs > 1` the
/// buckets exceed the stages' wall-clock span, but the values — and the
/// [`shares`](Self::shares) breakdown built on them — stay comparable
/// across job counts, which wall-clock would not.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Pinpointing device-cloud executables.
    pub exeid: Duration,
    /// Identifying message fields (taint analysis).
    pub field_identification: Duration,
    /// Recovering field semantics.
    pub semantics: Duration,
    /// Concatenating message fields.
    pub concatenation: Duration,
    /// Message-form checking.
    pub form_check: Duration,
}

impl StageTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.exeid
            + self.field_identification
            + self.semantics
            + self.concatenation
            + self.form_check
    }

    /// Per-stage share of the total, in the paper's reporting order.
    pub fn shares(&self) -> [f64; 5] {
        let total = self.total().as_secs_f64().max(1e-12);
        [
            self.exeid.as_secs_f64() / total,
            self.field_identification.as_secs_f64() / total,
            self.semantics.as_secs_f64() / total,
            self.concatenation.as_secs_f64() / total,
            self.form_check.as_secs_f64() / total,
        ]
    }
}

/// One reconstructed device-cloud message with its analysis artifacts.
#[derive(Debug, Clone)]
pub struct MessageRecord {
    /// Function containing the delivery callsite.
    pub function: String,
    /// The delivery callsite address.
    pub callsite: Address,
    /// The message field tree (original, pre-simplification).
    pub mft: Mft,
    /// Enriched code slices (one per field leaf).
    pub slices: Vec<CodeSlice>,
    /// Recovered primitive per slice (parallel to `slices`).
    pub slice_semantics: Vec<Primitive>,
    /// The reconstructed message, fields annotated with semantics.
    pub message: ReconstructedMessage,
    /// Whether the grouping step discarded it as LAN-addressed.
    pub lan_discarded: bool,
    /// Whether it was classified as a handler response (echo of received
    /// data) rather than a constructed device-cloud message.
    pub is_response_echo: bool,
    /// Message-form findings.
    pub flaws: Vec<FormFlaw>,
}

impl MessageRecord {
    /// Whether this record counts as an identified device-cloud message
    /// (not LAN-discarded, not a response echo).
    pub fn counts(&self) -> bool {
        !self.lan_discarded && !self.is_response_echo
    }
}

/// Full analysis result for one firmware image.
#[derive(Debug)]
pub struct FirmwareAnalysis {
    /// Path of the identified device-cloud executable, if any.
    pub executable: Option<String>,
    /// Scored handler information for the identified executable.
    pub handlers: Vec<HandlerInfo>,
    /// All reconstructed messages.
    pub messages: Vec<MessageRecord>,
    /// Per-stage timings.
    pub timings: StageTimings,
    /// Per-stage work counters.
    pub counters: StageCounters,
    /// Structured diagnostics: every degradation the pipeline took
    /// (skipped executables, lift failures, unresolved taint sources,
    /// classifier fallback), severity-tagged.
    pub diagnostics: Vec<Diagnostic>,
}

impl FirmwareAnalysis {
    /// Messages that count as identified (excludes LAN/echo records).
    pub fn identified(&self) -> impl Iterator<Item = &MessageRecord> {
        self.messages.iter().filter(|m| m.counts())
    }

    /// Total identified fields across counted messages.
    pub fn identified_fields(&self) -> usize {
        self.identified().map(|m| m.message.fields.len()).sum()
    }

    /// Messages flagged by the form check.
    pub fn flagged(&self) -> impl Iterator<Item = &MessageRecord> {
        self.identified().filter(|m| !m.flaws.is_empty())
    }

    /// The most serious diagnostic severity recorded, if any.
    pub fn worst_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Diagnostics at or above `severity`.
    pub fn diagnostics_at_least(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity >= severity)
    }
}

/// Analyze a firmware image end to end.
///
/// `classifier` is the trained semantics model; pass `None` to fall back
/// to keyword labeling (useful for quick runs — the benchmark harness
/// trains and passes a real model).
///
/// This entry point never fails: degradations (unparseable executables,
/// lift errors, unresolved taint sources, the keyword fallback) are
/// recorded as [`Diagnostic`]s on the result. Use [`try_analyze_firmware`]
/// for a typed error when nothing could be analyzed at all.
pub fn analyze_firmware(
    fw: &FirmwareImage,
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
) -> FirmwareAnalysis {
    analyze_firmware_with(fw, classifier, config, &mut NullObserver)
}

/// [`analyze_firmware`] streaming stage boundaries, counters and
/// diagnostics to `observer` as they happen.
pub fn analyze_firmware_with(
    fw: &FirmwareImage,
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
    observer: &mut dyn Observer,
) -> FirmwareAnalysis {
    analyze_firmware_with_jobs(fw, classifier, config, 1, observer)
}

/// [`analyze_firmware`] with intra-image parallelism: the per-callsite
/// message units run on up to `jobs` worker threads.
///
/// `jobs` is a pure throughput knob — it is not part of
/// [`AnalysisConfig`] and does not enter the analysis-cache key, because
/// the result is byte-identical at any value (see [`crate::stages`] for
/// the determinism argument). `jobs <= 1` runs inline on the calling
/// thread.
pub fn analyze_firmware_jobs(
    fw: &FirmwareImage,
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
    jobs: usize,
) -> FirmwareAnalysis {
    analyze_firmware_with_jobs(fw, classifier, config, jobs, &mut NullObserver)
}

/// [`analyze_firmware_jobs`] streaming events to `observer`.
///
/// This is the driver every other entry point funnels through. Stage 1
/// (executable pinpointing) runs on the calling thread; stages 2–5 are
/// enumerated into message units, executed on the shared pool
/// ([`crate::run_pool`]), and merged back in canonical unit order, so the
/// observer sees the sequential event stream whatever `jobs` is.
pub fn analyze_firmware_with_jobs(
    fw: &FirmwareImage,
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
    jobs: usize,
    observer: &mut dyn Observer,
) -> FirmwareAnalysis {
    let mut cx = AnalysisContext::new(fw, classifier, config, observer);
    let Some(chosen) = ExeIdStage::run(&mut cx) else {
        return cx.finish(None, Vec::new(), Vec::new());
    };
    let units = enumerate_units(&chosen.program, &chosen.handlers);
    let engine = TaintEngine::with_config(&chosen.program, config.taint.clone());
    let renderer = firmres_mft::SliceRenderer::with_mode(&chosen.program, config.taint.cold_path);
    let classes = UnitClassifier::new(classifier, config.taint.cold_path);
    let outputs = run_pool(units.len(), jobs, |i| {
        run_message_unit(&engine, &renderer, &classes, &units[i])
    });
    let records = merge_unit_outputs(&mut cx, outputs, engine.lib_matched());
    cx.finish(Some(chosen.path), chosen.handlers, records)
}

/// [`analyze_firmware_with_jobs`] with cooperative cancellation: the
/// token is polled before stage 1 and at every message-unit boundary.
///
/// A run whose token never trips returns exactly what
/// [`analyze_firmware_with_jobs`] would — the token adds checks, never
/// different work — so served results stay byte-identical to local ones.
/// A tripped token abandons the remaining units and returns
/// [`Error::Cancelled`]; already-finished unit work is discarded, and
/// cancellation latency is bounded by the cost of one unit. This is the
/// serving layer's hook: the `firmres-service` daemon gives each
/// submitted job its own token (with the request deadline folded in) and
/// trips it on an explicit `Cancel`.
pub fn analyze_firmware_cancellable(
    fw: &FirmwareImage,
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
    jobs: usize,
    observer: &mut dyn Observer,
    cancel: &crate::CancelToken,
) -> Result<FirmwareAnalysis, Error> {
    let cancelled = |cancel: &crate::CancelToken| Error::Cancelled {
        deadline_exceeded: cancel.deadline_exceeded(),
    };
    if cancel.is_cancelled() {
        return Err(cancelled(cancel));
    }
    let mut cx = AnalysisContext::new(fw, classifier, config, observer);
    let Some(chosen) = ExeIdStage::run(&mut cx) else {
        return Ok(cx.finish(None, Vec::new(), Vec::new()));
    };
    if cancel.is_cancelled() {
        return Err(cancelled(cancel));
    }
    let units = enumerate_units(&chosen.program, &chosen.handlers);
    let engine = TaintEngine::with_config(&chosen.program, config.taint.clone());
    let renderer = firmres_mft::SliceRenderer::with_mode(&chosen.program, config.taint.cold_path);
    let classes = UnitClassifier::new(classifier, config.taint.cold_path);
    // Each worker polls the token at the unit boundary; a unit skipped by
    // a tripped token yields `None`, which poisons the whole run below.
    let outputs = run_pool(units.len(), jobs, |i| {
        if cancel.is_cancelled() {
            return None;
        }
        Some(run_message_unit(&engine, &renderer, &classes, &units[i]))
    });
    if cancel.is_cancelled() || outputs.iter().any(Option::is_none) {
        return Err(cancelled(cancel));
    }
    let outputs = outputs.into_iter().flatten().collect();
    let records = merge_unit_outputs(&mut cx, outputs, engine.lib_matched());
    Ok(cx.finish(Some(chosen.path), chosen.handlers, records))
}

/// Fallible [`analyze_firmware`].
///
/// Returns [`Error::NoUsableExecutable`] when the image contained at
/// least one executable entry but every one of them failed to parse or
/// lift. An image with no executables at all (e.g. the corpus's
/// script-based devices) is *not* an error: the analysis succeeds with
/// `executable: None`.
pub fn try_analyze_firmware(
    fw: &FirmwareImage,
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
) -> Result<FirmwareAnalysis, Error> {
    let analysis = analyze_firmware(fw, classifier, config);
    if analysis.executable.is_none() {
        let c = &analysis.counters;
        if c.executables_tried > 0 && c.parse_failures + c.lift_failures == c.executables_tried {
            return Err(Error::NoUsableExecutable {
                tried: c.executables_tried as usize,
                diagnostics: analysis.diagnostics,
            });
        }
    }
    Ok(analysis)
}

/// Analyze a *packed* firmware container (the raw bytes of
/// [`FirmwareImage::pack`]).
///
/// An unpack failure degrades into an empty analysis carrying one
/// error-severity [`StageKind::Input`] diagnostic.
pub fn analyze_packed(
    packed: &[u8],
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
) -> FirmwareAnalysis {
    match FirmwareImage::unpack(packed) {
        Ok(fw) => analyze_firmware(&fw, classifier, config),
        Err(e) => FirmwareAnalysis {
            executable: None,
            handlers: Vec::new(),
            messages: Vec::new(),
            timings: StageTimings::default(),
            counters: StageCounters::default(),
            diagnostics: vec![Diagnostic::bare(
                StageKind::Input,
                Severity::Error,
                format!("firmware unpack failed: {e}"),
            )],
        },
    }
}

/// Fallible [`analyze_packed`]: an unpack failure is returned as
/// [`Error::Firmware`].
pub fn try_analyze_packed(
    packed: &[u8],
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
) -> Result<FirmwareAnalysis, Error> {
    let fw = FirmwareImage::unpack(packed)?;
    try_analyze_firmware(&fw, classifier, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::CollectingObserver;
    use firmres_corpus::generate_device;

    #[test]
    fn analyzes_binary_device_end_to_end() {
        let dev = generate_device(10, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        assert_eq!(
            analysis.executable.as_deref(),
            dev.cloud_executable.as_deref()
        );
        let identified = analysis.identified().count();
        let expected = dev.plans.iter().filter(|p| !p.lan).count();
        assert_eq!(identified, expected, "one message per non-LAN plan");
        assert!(analysis.identified_fields() > 0);
        assert!(analysis.timings.total() > Duration::ZERO);
    }

    #[test]
    fn script_device_yields_no_executable() {
        let dev = generate_device(21, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        assert!(analysis.executable.is_none());
        assert!(analysis.messages.is_empty());
        // Not an error either: there was nothing to parse.
        assert!(try_analyze_firmware(&dev.firmware, None, &AnalysisConfig::default()).is_ok());
    }

    #[test]
    fn lan_messages_are_discarded() {
        // Devices with id % 4 == 2 carry one LAN-addressed message.
        let dev = generate_device(6, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        let lan = analysis.messages.iter().filter(|m| m.lan_discarded).count();
        assert_eq!(lan, 1, "the LAN sync message is filtered");
    }

    #[test]
    fn handler_echo_is_not_a_message() {
        let dev = generate_device(10, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        let echoes = analysis
            .messages
            .iter()
            .filter(|m| m.is_response_echo)
            .count();
        assert_eq!(echoes, 1, "the handler ack send");
    }

    #[test]
    fn vulnerable_messages_are_flagged_by_form_check() {
        let dev = generate_device(20, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        // Device 20's storage endpoints are identifier-only: their
        // messages lack authenticity primitives and must be flagged.
        let flagged: Vec<&MessageRecord> = analysis.flagged().collect();
        assert!(
            flagged.len() >= 3,
            "storage trio flagged, got {} flagged messages",
            flagged.len()
        );
    }

    #[test]
    fn timings_shares_sum_to_one() {
        let dev = generate_device(15, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        let shares = analysis.timings.shares();
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to 1: {shares:?}");
    }

    #[test]
    fn counters_reflect_pipeline_work() {
        let dev = generate_device(10, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        let c = &analysis.counters;
        assert!(
            c.executables_tried >= 1,
            "at least the cloud agent was tried"
        );
        assert_eq!(c.parse_failures, 0);
        assert_eq!(c.lift_failures, 0);
        assert!(
            c.taint_queries >= analysis.messages.len() as u64,
            "one payload trace per delivery callsite at minimum"
        );
        assert!(c.slices_rendered > 0);
        assert!(c.fields_matched > 0);
    }

    #[test]
    fn keyword_fallback_is_diagnosed() {
        let dev = generate_device(10, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        assert!(
            analysis
                .diagnostics
                .iter()
                .any(|d| d.stage == StageKind::Semantics && d.severity == Severity::Info),
            "running without a classifier is recorded: {:?}",
            analysis.diagnostics
        );
    }

    #[test]
    fn observer_sees_all_five_stages_in_order() {
        let dev = generate_device(10, 7);
        let mut obs = CollectingObserver::default();
        let analysis =
            analyze_firmware_with(&dev.firmware, None, &AnalysisConfig::default(), &mut obs);
        let kinds: Vec<StageKind> = obs.stages.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                StageKind::ExeId,
                StageKind::FieldId,
                StageKind::Semantics,
                StageKind::Concat,
                StageKind::FormCheck,
            ]
        );
        // The observer's view agrees with the result's own accounting.
        assert_eq!(obs.counters, analysis.counters);
        assert_eq!(obs.diagnostics, analysis.diagnostics);
        let observed_total: Duration = obs.stages.iter().map(|(_, d)| *d).sum();
        assert_eq!(observed_total, analysis.timings.total());
    }

    #[test]
    fn cancellable_run_with_untripped_token_matches_plain_analysis() {
        let dev = generate_device(10, 7);
        let config = AnalysisConfig::default();
        let token = crate::CancelToken::new();
        let cancellable = analyze_firmware_cancellable(
            &dev.firmware,
            None,
            &config,
            2,
            &mut NullObserver,
            &token,
        )
        .expect("untripped token never fails the run");
        let plain = analyze_firmware(&dev.firmware, None, &config);
        assert_eq!(cancellable.executable, plain.executable);
        assert_eq!(cancellable.counters, plain.counters);
        assert_eq!(cancellable.diagnostics, plain.diagnostics);
        assert_eq!(cancellable.messages.len(), plain.messages.len());
    }

    #[test]
    fn pre_tripped_token_cancels_before_any_work() {
        let dev = generate_device(10, 7);
        let token = crate::CancelToken::new();
        token.cancel();
        let err = analyze_firmware_cancellable(
            &dev.firmware,
            None,
            &AnalysisConfig::default(),
            1,
            &mut NullObserver,
            &token,
        )
        .unwrap_err();
        assert_eq!(
            err,
            Error::Cancelled {
                deadline_exceeded: false
            }
        );
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let dev = generate_device(10, 7);
        let token = crate::CancelToken::with_deadline(Duration::ZERO);
        let err = analyze_firmware_cancellable(
            &dev.firmware,
            None,
            &AnalysisConfig::default(),
            1,
            &mut NullObserver,
            &token,
        )
        .unwrap_err();
        assert_eq!(
            err,
            Error::Cancelled {
                deadline_exceeded: true
            }
        );
    }

    #[test]
    fn packed_round_trip_matches_unpacked_analysis() {
        let dev = generate_device(15, 7);
        let packed = dev.firmware.pack();
        let a = analyze_packed(&packed, None, &AnalysisConfig::default());
        let b = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        assert_eq!(a.executable, b.executable);
        assert_eq!(a.identified().count(), b.identified().count());
        assert_eq!(a.identified_fields(), b.identified_fields());
    }

    #[test]
    fn truncated_packed_image_is_an_input_diagnostic() {
        let dev = generate_device(15, 7);
        let packed = dev.firmware.pack();
        let analysis = analyze_packed(
            &packed[..packed.len() / 2],
            None,
            &AnalysisConfig::default(),
        );
        assert!(analysis.executable.is_none());
        assert!(analysis.messages.is_empty());
        assert_eq!(analysis.worst_severity(), Some(Severity::Error));
        assert!(analysis
            .diagnostics
            .iter()
            .any(|d| d.stage == StageKind::Input));
        // The fallible variant surfaces the typed unpack error instead.
        let err = try_analyze_packed(&packed[..7], None, &AnalysisConfig::default());
        assert!(matches!(err, Err(Error::Firmware(_))));
    }
}
