//! # firmres
//!
//! FIRMRES: automatic reconstruction of IoT device-cloud messages through
//! static firmware analysis — a full Rust reproduction of the DSN 2024
//! paper's pipeline (Fig. 3):
//!
//! 1. **Pinpoint device-cloud executables** ([`exeid`]): pair incoming
//!    (`recv`) and outgoing (`send`) anchor callsites on the call graph,
//!    score candidate handler sequences with the string-parsing factor
//!    `P_f = O_r / O` (Eq. 1), and keep asynchronously-invoked handlers.
//! 2. **Identify message fields**: backward inter-procedural taint from
//!    delivery callsites to field sources (`firmres-dataflow`).
//! 3. **Recover field semantics**: enriched code slices classified into
//!    the §II-B primitives (`firmres-mft` + `firmres-semantics`).
//! 4. **Concatenate message fields**: MFT simplification/inversion and
//!    format inference (`firmres-mft`).
//! 5. **Assess access control** ([`formcheck`], [`probe`]): message-form
//!    checks against the primitive compositions, hard-coded Dev-Secret
//!    tracking, and probing of the (simulated) vendor cloud.
//!
//! The pipeline is *staged* ([`stages`]): each step above is a typed
//! stage over a shared [`stages::AnalysisContext`] that accumulates
//! per-stage timings, work counters ([`StageCounters`]) and structured,
//! severity-tagged [`Diagnostic`]s, all streamed to a caller-supplied
//! [`Observer`]. The one-call entry point is [`analyze_firmware`]; see
//! also [`try_analyze_firmware`] for a fallible variant, [`analyze_packed`]
//! for packed containers, and [`analyze_corpus`] for parallel sweeps.
//!
//! # Examples
//!
//! ```
//! use firmres::{analyze_firmware, AnalysisConfig};
//! use firmres_corpus::generate_device;
//!
//! let device = generate_device(11, 7); // Teltonika RUT241
//! let analysis = analyze_firmware(&device.firmware, None, &AnalysisConfig::default());
//! assert!(analysis.executable.is_some(), "device-cloud executable found");
//! assert!(!analysis.messages.is_empty());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod driver;
pub mod error;
pub mod exeid;
pub mod formcheck;
pub mod observe;
pub mod pipeline;
pub mod probe;
pub mod stages;

pub use cancel::CancelToken;
pub use driver::{analyze_corpus, run_pool, Parallelism};
pub use error::{Diagnostic, Error, Severity, StageKind};
pub use exeid::{identify_device_cloud, score_handlers, ExeIdConfig, HandlerInfo};
pub use formcheck::{check_message, FormFlaw, MessagePhase};
pub use observe::{
    CollectingObserver, Counter, Event, FnObserver, NullObserver, Observer, StageCounters,
    StageEvents,
};
pub use pipeline::{
    analyze_firmware, analyze_firmware_cancellable, analyze_firmware_jobs, analyze_firmware_with,
    analyze_firmware_with_jobs, analyze_packed, try_analyze_firmware, try_analyze_packed,
    AnalysisConfig, FirmwareAnalysis, MessageRecord, StageTimings,
};
pub use probe::{extract_endpoint, fill_message, probe_cloud, render_body, FilledMessage};
