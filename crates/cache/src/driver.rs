//! The incremental corpus driver: consult the store, analyze only the
//! misses, persist what was computed.
//!
//! [`analyze_corpus_incremental`] is the cache-aware counterpart of
//! [`firmres::analyze_corpus`]. Per image it computes the [`CacheKey`],
//! loads a valid entry when one exists (the whole pipeline is skipped),
//! and otherwise runs the pipeline on the shared worker pool
//! ([`firmres::run_pool`]) and writes the result back. A damaged entry —
//! truncation, checksum or schema mismatch, undecodable section — is
//! never fatal: it is diagnosed ([`StageKind::Cache`], warning severity),
//! counted as a miss, re-analyzed, and overwritten.
//!
//! Determinism contract: a warm run returns **byte-identical** analyses
//! to the cold run that populated the store (timings included — they are
//! persisted, not re-measured). Cache traffic is reported only through
//! the corpus-level `observer` and [`CacheStats`], never folded into the
//! per-analysis [`StageCounters`] — so hitting the cache cannot perturb
//! the results themselves.
//!
//! [`StageCounters`]: firmres::StageCounters

use crate::key::CacheKey;
use crate::store::AnalysisCache;
use firmres::{
    analyze_firmware_jobs, run_pool, AnalysisConfig, Counter, Diagnostic, FirmwareAnalysis,
    Observer, Parallelism, Severity, StageKind,
};
use firmres_firmware::FirmwareImage;
use firmres_semantics::Classifier;

/// Cache traffic accumulated over one incremental corpus run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Images served from the store.
    pub hits: u64,
    /// Images that ran the pipeline (no entry, or a damaged one).
    pub misses: u64,
    /// The subset of `misses` caused by a damaged entry rather than a
    /// plain absent one.
    pub corrupt: u64,
    /// Entry bytes read on hits.
    pub bytes_read: u64,
    /// Entry bytes written after analyzing misses.
    pub bytes_written: u64,
}

impl CacheStats {
    /// Hits over total lookups, in `0.0..=1.0` (`0.0` for an empty run).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What an incremental corpus run produced.
#[derive(Debug)]
pub struct CorpusOutcome {
    /// One analysis per input image, in input order — hits and fresh
    /// results interleaved, indistinguishable by content.
    pub analyses: Vec<FirmwareAnalysis>,
    /// Cache traffic for the whole run.
    pub stats: CacheStats,
}

/// Analyze `images` through `cache`: load hits, pipeline the misses on
/// the worker budget described by `par`, persist what was computed.
///
/// `par` accepts a plain thread count (image-level parallelism, the
/// historical shape) or a full [`Parallelism`] to also fan each missed
/// image's message units out over `par.units` workers. Neither axis
/// changes any result byte, so cached entries stay valid whatever the
/// caller picks.
///
/// Results come back in input order, exactly as from
/// [`firmres::analyze_corpus`]. `observer` receives the cache counters
/// ([`Counter::CacheHits`] and friends) and any [`StageKind::Cache`]
/// diagnostics; per-image pipeline events are not streamed (misses run
/// on worker threads), but every analysis still carries its own timings,
/// counters and diagnostics.
pub fn analyze_corpus_incremental(
    images: &[&FirmwareImage],
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
    par: impl Into<Parallelism>,
    cache: &AnalysisCache,
    observer: &mut dyn Observer,
) -> CorpusOutcome {
    let par = par.into();
    let mut stats = CacheStats::default();
    let mut slots: Vec<Option<FirmwareAnalysis>> = Vec::new();
    slots.resize_with(images.len(), || None);
    let keys: Vec<CacheKey> = images
        .iter()
        .map(|fw| CacheKey::compute(fw, classifier, config))
        .collect();

    // Phase 1: consult the store. `misses` collects (input index,
    // diagnostic for a damaged entry, if any).
    let mut misses: Vec<(usize, Option<Diagnostic>)> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        match cache.load(key) {
            Ok(entry) => {
                stats.hits += 1;
                stats.bytes_read += entry.bytes;
                observer.count(Counter::CacheHits, 1);
                observer.count(Counter::CacheBytesRead, entry.bytes);
                slots[i] = Some(entry.analysis);
            }
            Err(e) => {
                stats.misses += 1;
                observer.count(Counter::CacheMisses, 1);
                let diag = if e.is_miss() {
                    None
                } else {
                    stats.corrupt += 1;
                    let d = Diagnostic::new(
                        StageKind::Cache,
                        Severity::Warning,
                        key.file_name(),
                        format!("entry unusable, re-analyzing: {e}"),
                    );
                    observer.diagnostic(&d);
                    Some(d)
                };
                misses.push((i, diag));
            }
        }
    }

    // Phase 2: pipeline the misses on the shared worker pool.
    let fresh = run_pool(misses.len(), par.images, |j| {
        analyze_firmware_jobs(images[misses[j].0], classifier, config, par.units)
    });

    // Phase 3: persist, then attach any corruption diagnostics. Storing
    // first keeps the entry free of them, so the next warm run is
    // byte-identical to this one.
    for ((i, diag), analysis) in misses.into_iter().zip(fresh) {
        match cache.store(&keys[i], &analysis) {
            Ok(written) => {
                stats.bytes_written += written;
                observer.count(Counter::CacheBytesWritten, written);
            }
            Err(e) => {
                // A write failure costs only the next run's warm start.
                let d = Diagnostic::new(
                    StageKind::Cache,
                    Severity::Warning,
                    keys[i].file_name(),
                    format!("store failed: {e}"),
                );
                observer.diagnostic(&d);
            }
        }
        let mut analysis = analysis;
        if let Some(d) = diag {
            analysis.diagnostics.push(d);
        }
        slots[i] = Some(analysis);
    }

    CorpusOutcome {
        analyses: slots
            .into_iter()
            .map(|s| s.expect("every image is analyzed or loaded"))
            .collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres::CollectingObserver;
    use firmres_corpus::generate_device;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("firmres-cache-driver-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cold_then_warm_hits_everything() {
        let devices: Vec<_> = (5..9).map(|id| generate_device(id, 7)).collect();
        let images: Vec<&FirmwareImage> = devices.iter().map(|d| &d.firmware).collect();
        let config = AnalysisConfig::default();
        let cache = AnalysisCache::new(temp_dir("coldwarm"));

        let mut obs = CollectingObserver::default();
        let cold = analyze_corpus_incremental(&images, None, &config, 2, &cache, &mut obs);
        assert_eq!(cold.stats.hits, 0);
        assert_eq!(cold.stats.misses, images.len() as u64);
        assert!(cold.stats.bytes_written > 0);
        assert_eq!(obs.counters.cache_misses, images.len() as u64);

        let mut obs = CollectingObserver::default();
        let warm = analyze_corpus_incremental(&images, None, &config, 2, &cache, &mut obs);
        assert_eq!(warm.stats.misses, 0);
        assert_eq!(warm.stats.hits, images.len() as u64);
        assert_eq!(warm.stats.hit_rate(), 1.0);
        assert!(warm.stats.bytes_read > 0);
        assert_eq!(obs.counters.cache_hits, images.len() as u64);
        for (a, b) in cold.analyses.iter().zip(&warm.analyses) {
            assert_eq!(a.executable, b.executable);
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.diagnostics, b.diagnostics);
            assert_eq!(a.messages.len(), b.messages.len());
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn classifier_change_forces_a_miss() {
        use firmres_semantics::{Primitive, TrainConfig};
        let dev = generate_device(6, 7);
        let image: &FirmwareImage = &dev.firmware;
        let config = AnalysisConfig::default();
        let cache = AnalysisCache::new(temp_dir("classifier"));

        let bare = analyze_corpus_incremental(
            &[image],
            None,
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        assert_eq!(bare.stats.misses, 1);

        // Supplying a model must not serve the cached no-model analysis:
        // classify() output and the "no trained classifier" diagnostic
        // both depend on it.
        let data = vec![
            ("mac address".to_string(), Primitive::DevIdentifier),
            ("password login".to_string(), Primitive::UserCred),
        ];
        let model = firmres_semantics::Classifier::train(
            &data,
            &TrainConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        let with_model = analyze_corpus_incremental(
            &[image],
            Some(&model),
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        assert_eq!(
            with_model.stats.misses, 1,
            "model run must not hit no-model entry"
        );

        // Both variants are now independently cached.
        let warm_bare = analyze_corpus_incremental(
            &[image],
            None,
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        let warm_model = analyze_corpus_incremental(
            &[image],
            Some(&model),
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        assert_eq!(warm_bare.stats.hits, 1);
        assert_eq!(warm_model.stats.hits, 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn parallel_produced_entry_serves_a_sequential_run() {
        // An entry written by a unit-parallel miss must be byte-identical
        // to what a sequential run computes — the warm sequential run may
        // not even notice who populated the store.
        let dev = generate_device(10, 7);
        let image: &FirmwareImage = &dev.firmware;
        let config = AnalysisConfig::default();
        let cache = AnalysisCache::new(temp_dir("parunits"));

        let cold = analyze_corpus_incremental(
            &[image],
            None,
            &config,
            Parallelism::units(8),
            &cache,
            &mut firmres::NullObserver,
        );
        assert_eq!(cold.stats.misses, 1);

        let mut warm = analyze_corpus_incremental(
            &[image],
            None,
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        assert_eq!(warm.stats.hits, 1, "parallel-produced entry is served");

        let mut sequential = firmres::analyze_firmware(image, None, &config);
        let mut served = warm.analyses.remove(0);
        assert_eq!(served.counters, sequential.counters);
        assert_eq!(served.diagnostics, sequential.diagnostics);
        // Byte-compare through the codec, timings zeroed (the entry holds
        // the cold run's measured durations; everything else must match).
        served.timings = Default::default();
        sequential.timings = Default::default();
        let enc = |a: &FirmwareAnalysis| {
            let mut out = Vec::new();
            crate::codec::put_analysis(&mut out, a);
            out
        };
        assert_eq!(enc(&served), enc(&sequential));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn empty_corpus_has_zero_rate() {
        let cache = AnalysisCache::new(temp_dir("empty"));
        let out = analyze_corpus_incremental(
            &[],
            None,
            &AnalysisConfig::default(),
            4,
            &cache,
            &mut firmres::NullObserver,
        );
        assert!(out.analyses.is_empty());
        assert_eq!(out.stats.hit_rate(), 0.0);
    }
}
