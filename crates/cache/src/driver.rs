//! The incremental corpus driver: consult the store, analyze only the
//! misses, persist what was computed.
//!
//! [`analyze_corpus_incremental`] is the cache-aware counterpart of
//! [`firmres::analyze_corpus`]. Per image it computes the [`CacheKey`],
//! loads a valid entry when one exists (the whole pipeline is skipped),
//! and otherwise re-analyzes the image on the shared worker pool
//! ([`firmres::run_pool`]) and writes the result back. Misses do not run
//! the pipeline blindly: each goes through the unit-granular funnel
//! ([`crate::unit::analyze_image_units_incremental`]), so an image whose
//! entry was invalidated by a small change still splices every clean
//! message unit from the bank files and re-executes only the dirty
//! closure. A damaged entry — truncation, checksum or schema mismatch,
//! undecodable section — is never fatal: it is diagnosed
//! ([`StageKind::Cache`], warning severity), counted as a miss,
//! re-analyzed, and overwritten.
//!
//! Determinism contract: a warm run returns **byte-identical** analyses
//! to the cold run that populated the store (timings included — they are
//! persisted, not re-measured). Cache traffic is reported only through
//! the corpus-level `observer` and [`CacheStats`], never folded into the
//! per-analysis [`StageCounters`] — so hitting the cache cannot perturb
//! the results themselves.
//!
//! [`StageCounters`]: firmres::StageCounters

use crate::codec::{self, Reader};
use crate::key::CacheKey;
use crate::store::AnalysisCache;
use crate::unit::analyze_image_units_incremental;
use firmres::{
    analyze_firmware_jobs, run_pool, AnalysisConfig, CollectingObserver, Counter, Diagnostic,
    FirmwareAnalysis, Observer, Parallelism, Severity, StageKind,
};
use firmres_firmware::FirmwareImage;
use firmres_semantics::Classifier;

/// Cache traffic accumulated over one incremental corpus run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Images served from the store.
    pub hits: u64,
    /// Images that ran the pipeline (no entry, or a damaged one).
    pub misses: u64,
    /// The subset of `misses` caused by a damaged entry rather than a
    /// plain absent one.
    pub corrupt: u64,
    /// Entry bytes read on hits.
    pub bytes_read: u64,
    /// Entry bytes written after analyzing misses.
    pub bytes_written: u64,
    /// Message units spliced from bank artifacts while re-analyzing
    /// missed images (locator found, footprint clean).
    pub unit_hits: u64,
    /// Message units re-executed while re-analyzing missed images.
    pub unit_misses: u64,
    /// Executable probes replayed from verdict artifacts on misses.
    pub verdict_hits: u64,
    /// Executable probes run live on misses.
    pub verdict_misses: u64,
    /// Slice texts that went through the batched semantics path while
    /// re-analyzing misses.
    pub slices_batched: u64,
    /// Slices the certified None pre-filter resolved without scoring.
    pub prefilter_skips: u64,
    /// Slice classifications answered by the corpus-wide class cache
    /// (cross-image and cross-run dedup under a shared store handle).
    pub class_cache_hits: u64,
}

impl CacheStats {
    /// Hits over total lookups, in `0.0..=1.0` (`0.0` for an empty run).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Unit hits over units considered while re-analyzing misses, in
    /// `0.0..=1.0` (`0.0` when no image missed or none had units).
    pub fn unit_reuse_rate(&self) -> f64 {
        let total = self.unit_hits + self.unit_misses;
        if total == 0 {
            0.0
        } else {
            self.unit_hits as f64 / total as f64
        }
    }
}

/// What an incremental corpus run produced.
#[derive(Debug)]
pub struct CorpusOutcome {
    /// One analysis per input image, in input order — hits and fresh
    /// results interleaved, indistinguishable by content.
    pub analyses: Vec<FirmwareAnalysis>,
    /// Cache traffic for the whole run.
    pub stats: CacheStats,
}

/// Analyze `images` through `cache`: load hits, pipeline the misses on
/// the worker budget described by `par`, persist what was computed.
///
/// `par` accepts a plain thread count (image-level parallelism, the
/// historical shape) or a full [`Parallelism`] to also fan each missed
/// image's message units out over `par.units` workers. Neither axis
/// changes any result byte, so cached entries stay valid whatever the
/// caller picks.
///
/// Results come back in input order, exactly as from
/// [`firmres::analyze_corpus`]. `observer` receives the cache counters
/// ([`Counter::CacheHits`] and friends) and any [`StageKind::Cache`]
/// diagnostics; per-image pipeline events are not streamed (misses run
/// on worker threads), but every analysis still carries its own timings,
/// counters and diagnostics.
pub fn analyze_corpus_incremental(
    images: &[&FirmwareImage],
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
    par: impl Into<Parallelism>,
    cache: &AnalysisCache,
    observer: &mut dyn Observer,
) -> CorpusOutcome {
    let par = par.into();
    let mut stats = CacheStats::default();
    let mut slots: Vec<Option<FirmwareAnalysis>> = Vec::new();
    slots.resize_with(images.len(), || None);
    let keys: Vec<CacheKey> = images
        .iter()
        .map(|fw| CacheKey::compute(fw, classifier, config))
        .collect();

    // Phase 1: consult the store. `misses` collects (input index,
    // diagnostic for a damaged entry, if any).
    let mut misses: Vec<(usize, Option<Diagnostic>)> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        match cache.load(key) {
            Ok(entry) => {
                stats.hits += 1;
                stats.bytes_read += entry.bytes;
                observer.count(Counter::CacheHits, 1);
                observer.count(Counter::CacheBytesRead, entry.bytes);
                slots[i] = Some(entry.analysis);
            }
            Err(e) => {
                stats.misses += 1;
                observer.count(Counter::CacheMisses, 1);
                let diag = if e.is_miss() {
                    None
                } else {
                    stats.corrupt += 1;
                    let d = Diagnostic::new(
                        StageKind::Cache,
                        Severity::Warning,
                        key.file_name(),
                        format!("entry unusable, re-analyzing: {e}"),
                    );
                    observer.diagnostic(&d);
                    Some(d)
                };
                misses.push((i, diag));
            }
        }
    }

    // Phase 2: re-analyze the misses on the shared worker pool, each
    // through the unit-granular funnel so clean units splice from the
    // bank files. Cache diagnostics are collected per worker and
    // replayed on the caller's observer afterwards (pipeline events are
    // not streamed for misses, as documented). Class-cache telemetry is
    // measured as a delta over the run — the shared cache may arrive
    // pre-warmed by an earlier corpus under the same store handle.
    let class_before = cache.class_cache_stats();
    let fresh = run_pool(misses.len(), par.images, |j| {
        let mut local = CollectingObserver::default();
        let out = analyze_image_units_incremental(
            images[misses[j].0],
            classifier,
            config,
            par.units,
            cache,
            &mut local,
            None,
        );
        (out, local.diagnostics)
    });

    // Phase 3: persist, then attach any corruption diagnostics. Storing
    // first keeps the entry free of them, so the next warm run is
    // byte-identical to this one. A *spliced* analysis (the funnel served
    // at least one unit from a bank) earns no image entry: it is already
    // cheap to reproduce from the unit artifacts, and skipping the write
    // keeps update re-analysis off the store's write path entirely. The
    // exception is a miss caused by a *damaged* entry — that file stays
    // on disk and would be re-diagnosed on every future run, so it is
    // repaired (overwritten) even when the analysis was spliced.
    for ((i, diag), (result, cache_diags)) in misses.into_iter().zip(fresh) {
        let mut spliced = false;
        let analysis = match result {
            Ok(out) => {
                stats.unit_hits += out.stats.unit_hits;
                stats.unit_misses += out.stats.unit_misses;
                stats.verdict_hits += out.stats.verdict_hits;
                stats.verdict_misses += out.stats.verdict_misses;
                spliced = out.stats.unit_hits > 0;
                observer.count(Counter::CacheBytesRead, out.stats.bytes_read);
                observer.count(Counter::CacheBytesWritten, out.stats.bytes_written);
                for d in cache_diags.iter().filter(|d| d.stage == StageKind::Cache) {
                    observer.diagnostic(d);
                }
                codec::get_analysis(&mut Reader::new(&out.bytes)).ok()
            }
            // Uncancellable funnel runs don't error; fall back anyway.
            Err(_) => None,
        }
        .unwrap_or_else(|| analyze_firmware_jobs(images[i], classifier, config, par.units));
        if !spliced || diag.is_some() {
            match cache.store(&keys[i], &analysis) {
                Ok(written) => {
                    stats.bytes_written += written;
                    observer.count(Counter::CacheBytesWritten, written);
                }
                Err(e) => {
                    // A write failure costs only the next run's warm start.
                    let d = Diagnostic::new(
                        StageKind::Cache,
                        Severity::Warning,
                        keys[i].file_name(),
                        format!("store failed: {e}"),
                    );
                    observer.diagnostic(&d);
                }
            }
        }
        let mut analysis = analysis;
        if let Some(d) = diag {
            analysis.diagnostics.push(d);
        }
        slots[i] = Some(analysis);
    }

    // Batched-semantics telemetry: deltas of the store's class-cache
    // counters over this run, reported corpus-level only (cache warmth
    // must never perturb per-analysis counters or report bytes).
    let class_after = cache.class_cache_stats();
    stats.slices_batched = class_after.batched.saturating_sub(class_before.batched);
    stats.prefilter_skips = class_after
        .prefilter_skips
        .saturating_sub(class_before.prefilter_skips);
    stats.class_cache_hits = class_after.hits.saturating_sub(class_before.hits);
    if stats.slices_batched > 0 {
        observer.count(Counter::SlicesBatched, stats.slices_batched);
    }
    if stats.prefilter_skips > 0 {
        observer.count(Counter::PrefilterSkips, stats.prefilter_skips);
    }
    if stats.class_cache_hits > 0 {
        observer.count(Counter::ClassCacheHits, stats.class_cache_hits);
    }

    CorpusOutcome {
        analyses: slots
            .into_iter()
            .map(|s| s.expect("every image is analyzed or loaded"))
            .collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres::CollectingObserver;
    use firmres_corpus::generate_device;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("firmres-cache-driver-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cold_then_warm_hits_everything() {
        let devices: Vec<_> = (5..9).map(|id| generate_device(id, 7)).collect();
        let images: Vec<&FirmwareImage> = devices.iter().map(|d| &d.firmware).collect();
        let config = AnalysisConfig::default();
        let cache = AnalysisCache::new(temp_dir("coldwarm"));

        let mut obs = CollectingObserver::default();
        let cold = analyze_corpus_incremental(&images, None, &config, 2, &cache, &mut obs);
        assert_eq!(cold.stats.hits, 0);
        assert_eq!(cold.stats.misses, images.len() as u64);
        assert!(cold.stats.bytes_written > 0);
        assert_eq!(obs.counters.cache_misses, images.len() as u64);

        let mut obs = CollectingObserver::default();
        let warm = analyze_corpus_incremental(&images, None, &config, 2, &cache, &mut obs);
        assert_eq!(warm.stats.misses, 0);
        assert_eq!(warm.stats.hits, images.len() as u64);
        assert_eq!(warm.stats.hit_rate(), 1.0);
        assert!(warm.stats.bytes_read > 0);
        assert_eq!(obs.counters.cache_hits, images.len() as u64);
        for (a, b) in cold.analyses.iter().zip(&warm.analyses) {
            assert_eq!(a.executable, b.executable);
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.diagnostics, b.diagnostics);
            assert_eq!(a.messages.len(), b.messages.len());
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn classifier_change_forces_a_miss() {
        use firmres_semantics::{Primitive, TrainConfig};
        let dev = generate_device(6, 7);
        let image: &FirmwareImage = &dev.firmware;
        let config = AnalysisConfig::default();
        let cache = AnalysisCache::new(temp_dir("classifier"));

        let bare = analyze_corpus_incremental(
            &[image],
            None,
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        assert_eq!(bare.stats.misses, 1);

        // Supplying a model must not serve the cached no-model analysis:
        // classify() output and the "no trained classifier" diagnostic
        // both depend on it.
        let data = vec![
            ("mac address".to_string(), Primitive::DevIdentifier),
            ("password login".to_string(), Primitive::UserCred),
        ];
        let model = firmres_semantics::Classifier::train(
            &data,
            &TrainConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        let with_model = analyze_corpus_incremental(
            &[image],
            Some(&model),
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        assert_eq!(
            with_model.stats.misses, 1,
            "model run must not hit no-model entry"
        );

        // Both variants are now independently cached.
        let warm_bare = analyze_corpus_incremental(
            &[image],
            None,
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        let warm_model = analyze_corpus_incremental(
            &[image],
            Some(&model),
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        assert_eq!(warm_bare.stats.hits, 1);
        assert_eq!(warm_model.stats.hits, 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn parallel_produced_entry_serves_a_sequential_run() {
        // An entry written by a unit-parallel miss must be byte-identical
        // to what a sequential run computes — the warm sequential run may
        // not even notice who populated the store.
        let dev = generate_device(10, 7);
        let image: &FirmwareImage = &dev.firmware;
        let config = AnalysisConfig::default();
        let cache = AnalysisCache::new(temp_dir("parunits"));

        let cold = analyze_corpus_incremental(
            &[image],
            None,
            &config,
            Parallelism::units(8),
            &cache,
            &mut firmres::NullObserver,
        );
        assert_eq!(cold.stats.misses, 1);

        let mut warm = analyze_corpus_incremental(
            &[image],
            None,
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        assert_eq!(warm.stats.hits, 1, "parallel-produced entry is served");

        let mut sequential = firmres::analyze_firmware(image, None, &config);
        let mut served = warm.analyses.remove(0);
        assert_eq!(served.counters, sequential.counters);
        assert_eq!(served.diagnostics, sequential.diagnostics);
        // Byte-compare through the codec, timings zeroed (the entry holds
        // the cold run's measured durations; everything else must match).
        served.timings = Default::default();
        sequential.timings = Default::default();
        let enc = |a: &FirmwareAnalysis| {
            let mut out = Vec::new();
            crate::codec::put_analysis(&mut out, a);
            out
        };
        assert_eq!(enc(&served), enc(&sequential));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn mutating_one_function_reruns_only_its_closure() {
        let dev = generate_device(10, 7);
        let image: &FirmwareImage = &dev.firmware;
        let config = AnalysisConfig::default();
        let cache = AnalysisCache::new(temp_dir("mutate"));

        let cold = analyze_corpus_incremental(
            &[image],
            None,
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        let total = cold.stats.unit_hits + cold.stats.unit_misses;
        assert!(total > 0, "device 10 has message units");
        assert_eq!(cold.stats.unit_hits, 0, "cold store has nothing to splice");
        assert_eq!(cold.stats.unit_reuse_rate(), 0.0);

        let update = firmres_corpus::mutate_firmware(image, 1.0, 42);
        assert!(!update.mutated.is_empty());
        let warm = analyze_corpus_incremental(
            &[&update.image],
            None,
            &config,
            1,
            &cache,
            &mut firmres::NullObserver,
        );
        assert_eq!(warm.stats.hits, 0, "image-level entry no longer matches");
        assert!(warm.stats.unit_hits > 0, "clean units are spliced");
        assert!(
            warm.stats.unit_misses < total,
            "only the dirty closure re-runs ({} of {total})",
            warm.stats.unit_misses
        );

        // Byte-identity: the incremental result matches a from-scratch
        // run of the mutated image (timings zeroed — re-executed stages
        // measure fresh time).
        let mut incremental = warm.analyses.into_iter().next().unwrap();
        let mut scratch = firmres::analyze_firmware(&update.image, None, &config);
        incremental.timings = Default::default();
        scratch.timings = Default::default();
        let enc = |a: &FirmwareAnalysis| {
            let mut out = Vec::new();
            crate::codec::put_analysis(&mut out, a);
            out
        };
        assert_eq!(enc(&incremental), enc(&scratch));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn empty_corpus_has_zero_rate() {
        let cache = AnalysisCache::new(temp_dir("empty"));
        let out = analyze_corpus_incremental(
            &[],
            None,
            &AnalysisConfig::default(),
            4,
            &cache,
            &mut firmres::NullObserver,
        );
        assert!(out.analyses.is_empty());
        assert_eq!(out.stats.hit_rate(), 0.0);
    }
}
