//! Unit-granular incremental re-analysis: persist per-unit artifacts and
//! re-run only what a firmware update actually changed.
//!
//! The image-granular store (`.frac` entries) is all-or-nothing: any
//! change to the image bytes misses the cache and re-runs the whole
//! pipeline. But the pipeline's own unit of execution is the per-callsite
//! **message unit** (stages 2–5 share no state across delivery
//! callsites), and a typical firmware update leaves most lifted functions
//! byte-identical — so most units would recompute exactly what the
//! previous version already computed.
//!
//! [`analyze_image_units_incremental`] closes that gap with two sibling
//! artifact files next to the `.frac` entries:
//!
//! * **Unit banks** (`.fru`) — one per *device family* (vendor + model +
//!   executable path + pipeline/config/classifier fingerprints, firmware
//!   version deliberately excluded so successive versions share a bank).
//!   Each entry maps a **unit locator** to the unit's *input footprint*
//!   (content hashes of every function its taint traces visited, plus
//!   caller-enumeration edge hashes), its buffered event stream, its
//!   taint-query keys, and its finished [`MessageRecord`] as opaque
//!   encoded bytes.
//! * **Executable verdicts** (`.frv`) — one per executable *bytes* (the
//!   key hashes the raw MRE image), holding the stage-1 probe's exact
//!   event stream, whether the executable qualified as a device-cloud
//!   candidate, and its scored handlers. An update that does not touch an
//!   executable replays its verdict instead of re-probing it.
//!
//! # The dirty-closure rule
//!
//! A stored unit is reused iff its identity *and* its inputs are intact:
//!
//! 1. **Locator match** — the locator hashes the unit's seed (function
//!    entry/name, callsite, callee, payload argument, handler membership)
//!    together with the program's *context hash* (data segment, function
//!    directory, imports — everything analyses read besides function
//!    bodies). A symbol-table- or data-changing update therefore shifts
//!    every locator and degrades to a plain cold run, by design.
//! 2. **Footprint match** — every function the unit's taint traces
//!    visited still hashes the same ([`function_content_hash`]); a
//!    function the trace found *absent* (hash sentinel `0`) must still be
//!    absent; every function whose callers the trace enumerated still has
//!    the same `(caller, callsite)` edge set ([`caller_edges_hash`]).
//!
//! Everything a unit's stages read is covered by locator + footprint:
//! taint walks only visited functions, slice rendering and semantics read
//! code of visited functions plus strings (context hash), reconstruction
//! and form-check are pure functions of the taint tree. So units whose
//! checks pass are byte-identical to what a cold run would recompute —
//! the re-assembled analysis is spliced from stored record bytes without
//! decoding them, and `incremental_bench` asserts the byte-identity
//! end to end.
//!
//! # Determinism
//!
//! The assembled output replays the same merge
//! ([`merge_unit_event_streams`]) over the same unit order as a cold run,
//! with each unit's counters and diagnostics coming from its (stored or
//! fresh) buffered events; the stage-global tail events are pure
//! functions of the unit views. Cache traffic is reported only to the
//! caller's observer and [`UnitStats`] — never folded into the analysis
//! itself.
//!
//! [`function_content_hash`]: firmres_ir::function_content_hash
//! [`caller_edges_hash`]: firmres_ir::caller_edges_hash
//! [`merge_unit_event_streams`]: firmres::stages::merge_unit_event_streams
//! [`MessageRecord`]: firmres::MessageRecord

use crate::codec::{
    self, get_handler, get_stage_events, get_unit_events, put_handler, put_stage_events,
    put_unit_events, DecodeError, Reader,
};
use crate::key::{classifier_fingerprint, config_fingerprint, PIPELINE_VERSION};
use crate::store::AnalysisCache;
use firmres::stages::{
    enumerate_units, merge_unit_event_streams, probe_executable, run_message_unit, AnalysisContext,
    ChosenExecutable, MessageUnit, TraceKey, UnitClassifier, UnitView,
};
use firmres::{
    AnalysisConfig, CancelToken, Counter, Diagnostic, Error, Event, HandlerInfo, Observer,
    Severity, StageEvents, StageKind,
};
use firmres_dataflow::{TaintEngine, TraceDeps};
use firmres_firmware::{content_hash_packed, FirmwareImage};
use firmres_ir::{
    caller_edges_hash, function_content_hash, program_context_hash, Address, CallGraph, Fnv128,
    Program,
};
use firmres_mft::SliceRenderer;
use firmres_semantics::Classifier;
use std::collections::BTreeMap;
use std::path::Path;

/// Unit-granular cache traffic of one funnel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitStats {
    /// Message units served from a bank (footprint intact).
    pub unit_hits: u64,
    /// Message units re-executed (no bank entry, or a dirty footprint).
    pub unit_misses: u64,
    /// Executable probes replayed from a verdict artifact.
    pub verdict_hits: u64,
    /// Executable probes run live.
    pub verdict_misses: u64,
    /// Bytes read from unit-granular artifact files.
    pub bytes_read: u64,
    /// Bytes written to unit-granular artifact files.
    pub bytes_written: u64,
}

impl UnitStats {
    /// Unit hits over total units, in `0.0..=1.0` (`0.0` for no units).
    pub fn reuse_rate(&self) -> f64 {
        let total = self.unit_hits + self.unit_misses;
        if total == 0 {
            0.0
        } else {
            self.unit_hits as f64 / total as f64
        }
    }
}

/// What one funnel run produced.
#[derive(Debug)]
pub struct UnitFunnelOutcome {
    /// The complete encoded analysis — the exact bytes
    /// [`codec::put_analysis`] produces for the equivalent cold run
    /// (timings excepted: stages re-executed report fresh wall/thread
    /// time, replayed stages report their stored per-unit time).
    pub bytes: Vec<u8>,
    /// Unit-granular cache traffic.
    pub stats: UnitStats,
}

// ---------------------------------------------------------------------------
// Artifact keys
// ---------------------------------------------------------------------------

fn verdict_key(fw: &FirmwareImage, path: &str, bytes: &[u8], config_fp: u64) -> u128 {
    let mut h = Fnv128::new();
    h.write_str("exeid");
    h.write_str(&fw.device().vendor);
    h.write_str(&fw.device().model);
    h.write_str(path);
    let mut body = Fnv128::new();
    body.write(bytes);
    h.write_u128(body.finish());
    h.write_u32(PIPELINE_VERSION);
    h.write_u64(config_fp);
    // The classifier is deliberately excluded: stage 1 never consults it,
    // so one verdict serves every classifier variant.
    h.finish()
}

fn bank_key(fw: &FirmwareImage, exe_path: &str, config_fp: u64, classifier_fp: u64) -> u128 {
    let mut h = Fnv128::new();
    h.write_str("bank");
    // Vendor + model, *not* firmware version: successive versions of the
    // same device must resolve to the same bank for reuse to happen.
    h.write_str(&fw.device().vendor);
    h.write_str(&fw.device().model);
    h.write_str(exe_path);
    h.write_u32(PIPELINE_VERSION);
    h.write_u64(config_fp);
    h.write_u64(classifier_fp);
    h.finish()
}

fn unit_locator(
    fw: &FirmwareImage,
    exe_path: &str,
    context_hash: u128,
    unit: &MessageUnit,
    config_fp: u64,
    classifier_fp: u64,
) -> u128 {
    let mut h = Fnv128::new();
    h.write_str("unit");
    h.write_str(&fw.device().vendor);
    h.write_str(&fw.device().model);
    h.write_str(exe_path);
    h.write_u128(context_hash);
    h.write_u64(unit.function);
    h.write_str(&unit.function_name);
    h.write_u64(unit.callsite);
    h.write_str(&unit.callee);
    h.write_u64(unit.payload_arg as u64);
    h.write_u8(unit.in_handler as u8);
    h.write_u32(PIPELINE_VERSION);
    h.write_u64(config_fp);
    h.write_u64(classifier_fp);
    h.finish()
}

// ---------------------------------------------------------------------------
// Artifact files
// ---------------------------------------------------------------------------

const BANK_MAGIC: &[u8; 4] = b"FRUB";
const VERDICT_MAGIC: &[u8; 4] = b"FRVD";

fn bank_name(key: u128) -> String {
    format!("{key:032x}.fru")
}

fn verdict_name(key: u128) -> String {
    format!("{key:032x}.frv")
}

/// One persisted message unit: input footprint, merge view, record bytes.
#[derive(Debug, Clone)]
struct BankEntry {
    /// `(function entry, content hash)` of every function the unit's
    /// taint traces visited; hash `0` is the *must-be-absent* sentinel
    /// for a call target the trace looked up and did not find.
    footprint: Vec<(Address, u128)>,
    /// `(function entry, caller-edge hash)` for every function whose
    /// callers the trace enumerated.
    caller_enums: Vec<(Address, u64)>,
    slices_nonempty: bool,
    taint_keys: Vec<TraceKey>,
    events: firmres::stages::UnitEvents,
    /// The finished [`firmres::MessageRecord`], encoded — spliced into
    /// the output verbatim, never decoded on the reuse path.
    record_bytes: Vec<u8>,
}

struct Verdict {
    events: StageEvents,
    qualified: bool,
    handlers: Vec<HandlerInfo>,
}

use bytes::BufMut;

fn put_bank_entry(out: &mut Vec<u8>, locator: u128, e: &BankEntry) {
    out.put_u128_le(locator);
    out.put_u32_le(e.footprint.len() as u32);
    for (addr, hash) in &e.footprint {
        out.put_u64_le(*addr);
        out.put_u128_le(*hash);
    }
    out.put_u32_le(e.caller_enums.len() as u32);
    for (addr, hash) in &e.caller_enums {
        out.put_u64_le(*addr);
        out.put_u64_le(*hash);
    }
    out.put_u8(e.slices_nonempty as u8);
    out.put_u32_le(e.taint_keys.len() as u32);
    for (func, callsite, arg) in &e.taint_keys {
        out.put_u64_le(*func);
        out.put_u64_le(*callsite);
        out.put_u32_le(*arg as u32);
    }
    put_unit_events(out, &e.events);
    out.put_u32_le(e.record_bytes.len() as u32);
    out.put_slice(&e.record_bytes);
}

fn get_bank_entry(r: &mut Reader) -> Result<(u128, BankEntry), DecodeError> {
    let locator = r.u128()?;
    let n = r.seq_len()?;
    let mut footprint = Vec::with_capacity(n);
    for _ in 0..n {
        footprint.push((r.u64()?, r.u128()?));
    }
    let n = r.seq_len()?;
    let mut caller_enums = Vec::with_capacity(n);
    for _ in 0..n {
        caller_enums.push((r.u64()?, r.u64()?));
    }
    let slices_nonempty = r.boolean()?;
    let n = r.seq_len()?;
    let mut taint_keys = Vec::with_capacity(n);
    for _ in 0..n {
        taint_keys.push((r.u64()?, r.u64()?, r.u32()? as usize));
    }
    let events = get_unit_events(r)?;
    let len = r.u32()? as usize;
    let record_bytes = r.bytes(len)?.to_vec();
    Ok((
        locator,
        BankEntry {
            footprint,
            caller_enums,
            slices_nonempty,
            taint_keys,
            events,
            record_bytes,
        },
    ))
}

/// Read and verify an artifact file: magic, schema, key echo, checksum.
/// `Ok(None)` is the silent no-file case; `Err` names the damage.
fn read_artifact(path: &Path, magic: &[u8; 4], key: u128) -> Result<Option<Vec<u8>>, DecodeError> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(DecodeError(format!("read failed: {e}"))),
    };
    if data.len() < magic.len() + 8 {
        return Err(DecodeError("artifact truncated".into()));
    }
    let (body, tail) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("split_at leaves 8 bytes"));
    if stored != content_hash_packed(body) {
        return Err(DecodeError("artifact checksum mismatch".into()));
    }
    let mut r = Reader::new(body);
    if r.bytes(4)? != magic {
        return Err(DecodeError("artifact has wrong magic".into()));
    }
    let schema = r.u16()?;
    if schema != crate::store::SCHEMA_VERSION {
        return Err(DecodeError(format!(
            "artifact schema v{schema} unsupported"
        )));
    }
    if r.u128()? != key {
        return Err(DecodeError("artifact key echo mismatch".into()));
    }
    Ok(Some(body[body.len() - r.remaining()..].to_vec()))
}

fn seal_artifact(magic: &[u8; 4], key: u128, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 30);
    out.put_slice(magic);
    out.put_u16_le(crate::store::SCHEMA_VERSION);
    out.put_u128_le(key);
    out.put_slice(payload);
    out.put_u64_le(content_hash_packed(&out));
    out
}

/// A decoded bank: entries by locator, plus the payload byte count read.
type BankContents = (BTreeMap<u128, BankEntry>, u64);

fn read_bank(cache: &AnalysisCache, key: u128) -> Result<Option<BankContents>, DecodeError> {
    let name = bank_name(key);
    let Some(payload) = read_artifact(&cache.artifact_path(&name), BANK_MAGIC, key)? else {
        return Ok(None);
    };
    cache.note_read_artifact(&name);
    let bytes = payload.len() as u64;
    let mut r = Reader::new(&payload);
    let n = r.seq_len()?;
    let mut entries = BTreeMap::new();
    for _ in 0..n {
        let (locator, entry) = get_bank_entry(&mut r)?;
        entries.insert(locator, entry);
    }
    Ok(Some((entries, bytes)))
}

fn write_bank(
    cache: &AnalysisCache,
    key: u128,
    entries: &[(u128, BankEntry)],
) -> Result<u64, String> {
    let mut payload = Vec::new();
    payload.put_u32_le(entries.len() as u32);
    for (locator, e) in entries {
        put_bank_entry(&mut payload, *locator, e);
    }
    let sealed = seal_artifact(BANK_MAGIC, key, &payload);
    let len = sealed.len() as u64;
    let name = bank_name(key);
    crate::store::write_file_atomic(&cache.artifact_dir(&name), &name, &sealed)?;
    cache.note_write_artifact(&name, len);
    Ok(len)
}

fn read_verdict(cache: &AnalysisCache, key: u128) -> Result<Option<(Verdict, u64)>, DecodeError> {
    let name = verdict_name(key);
    let Some(payload) = read_artifact(&cache.artifact_path(&name), VERDICT_MAGIC, key)? else {
        return Ok(None);
    };
    cache.note_read_artifact(&name);
    let bytes = payload.len() as u64;
    let mut r = Reader::new(&payload);
    let events = get_stage_events(&mut r)?;
    let qualified = r.boolean()?;
    let n = r.seq_len()?;
    let mut handlers = Vec::with_capacity(n);
    for _ in 0..n {
        handlers.push(get_handler(&mut r)?);
    }
    Ok(Some((
        Verdict {
            events,
            qualified,
            handlers,
        },
        bytes,
    )))
}

fn write_verdict(cache: &AnalysisCache, key: u128, v: &Verdict) -> Result<u64, String> {
    let mut payload = Vec::new();
    put_stage_events(&mut payload, &v.events);
    payload.put_u8(v.qualified as u8);
    payload.put_u32_le(v.handlers.len() as u32);
    for h in &v.handlers {
        put_handler(&mut payload, h);
    }
    let sealed = seal_artifact(VERDICT_MAGIC, key, &payload);
    let len = sealed.len() as u64;
    let name = verdict_name(key);
    crate::store::write_file_atomic(&cache.artifact_dir(&name), &name, &sealed)?;
    cache.note_write_artifact(&name, len);
    Ok(len)
}

// ---------------------------------------------------------------------------
// The funnel
// ---------------------------------------------------------------------------

fn cache_diag(subject: String, detail: String) -> Diagnostic {
    Diagnostic::new(StageKind::Cache, Severity::Warning, subject, detail)
}

/// Replay a probe's buffered counter/diagnostic events into the live
/// context — what [`probe_executable`] on the same bytes would emit.
/// Takes the events by value: on the warm path these come straight out
/// of a decoded verdict, so diagnostics move instead of cloning.
fn replay_probe_events(cx: &mut AnalysisContext<'_>, events: StageEvents) {
    for ev in events.events {
        match ev {
            Event::Count(counter, n) => cx.count(counter, n),
            Event::Diagnostic(d) => cx.diagnose(d),
            Event::StageStarted(_) | Event::StageFinished(..) => {}
        }
    }
}

fn footprint_is_clean(
    e: &BankEntry,
    fn_hashes: &BTreeMap<Address, u128>,
    graph: &CallGraph,
) -> bool {
    e.footprint
        .iter()
        .all(|(addr, hash)| match fn_hashes.get(addr) {
            Some(current) => current == hash,
            None => *hash == 0,
        })
        && e.caller_enums
            .iter()
            .all(|(addr, hash)| caller_edges_hash(graph, *addr) == *hash)
}

struct Candidate {
    path: String,
    handlers: Vec<HandlerInfo>,
    /// Present when the candidate was probed live; a verdict-hit winner
    /// lifts its program lazily (parse + lift only — its handlers and
    /// events come from the verdict).
    program: Option<Program>,
}

impl Candidate {
    fn best_score(&self) -> f64 {
        self.handlers.iter().fold(0.0, |m, h| m.max(h.score))
    }
}

/// Analyze one image through the unit-granular artifact store, returning
/// the complete encoded analysis plus reuse statistics.
///
/// The returned bytes decode ([`codec::get_analysis`]) to exactly what
/// [`firmres::analyze_firmware`] computes for the same inputs, except
/// stage timings (re-executed stages measure fresh time). On a cold
/// store every executable is probed and every unit runs — same work as
/// the plain pipeline plus artifact writes. On a warm store, units whose
/// locator and footprint survive the image's changes are spliced from
/// their stored record bytes without re-execution *or decoding*.
///
/// Artifact damage is never fatal: a hostile or truncated bank/verdict
/// file is diagnosed to `observer` ([`StageKind::Cache`], warning) and
/// treated as absent. Cache traffic reaches `observer` and [`UnitStats`]
/// only — the analysis bytes are unaffected by cache state.
///
/// `cancel` is polled at stage boundaries and per unit, exactly like
/// [`firmres::analyze_firmware_cancellable`].
pub fn analyze_image_units_incremental(
    fw: &FirmwareImage,
    classifier: Option<&Classifier>,
    config: &AnalysisConfig,
    jobs: usize,
    cache: &AnalysisCache,
    observer: &mut dyn Observer,
    cancel: Option<&CancelToken>,
) -> Result<UnitFunnelOutcome, Error> {
    let cancelled = |c: &CancelToken| Error::Cancelled {
        deadline_exceeded: c.deadline_exceeded(),
    };
    let is_cancelled = |c: Option<&CancelToken>| c.is_some_and(|c| c.is_cancelled());
    if let Some(c) = cancel {
        if c.is_cancelled() {
            return Err(cancelled(c));
        }
    }

    let mut stats = UnitStats::default();
    // Cache diagnostics are buffered and delivered to the observer after
    // the analysis context is gone: they must never interleave with (or
    // leak into) the analysis's own deterministic event stream.
    let mut cache_diags: Vec<Diagnostic> = Vec::new();
    let config_fp = config_fingerprint(config);
    let classifier_fp = classifier_fingerprint(classifier);

    // Pre-read the per-executable verdicts (the context below holds the
    // observer borrow, so all artifact IO diagnostics are staged here).
    let exes: Vec<(String, &[u8])> = fw.executables().map(|(p, b)| (p.to_string(), b)).collect();
    let verdicts: Vec<(u128, Option<Verdict>)> = exes
        .iter()
        .map(|(path, bytes)| {
            let key = verdict_key(fw, path, bytes, config_fp);
            let found = match read_verdict(cache, key) {
                Ok(Some((v, bytes_read))) => {
                    stats.verdict_hits += 1;
                    stats.bytes_read += bytes_read;
                    Some(v)
                }
                Ok(None) => {
                    stats.verdict_misses += 1;
                    None
                }
                Err(e) => {
                    stats.verdict_misses += 1;
                    cache_diags.push(cache_diag(
                        format!("{key:032x}.frv"),
                        format!("verdict unusable, re-probing: {}", e.0),
                    ));
                    None
                }
            };
            (key, found)
        })
        .collect();

    let mut cx = AnalysisContext::new(fw, classifier, config, &mut *observer);

    // Stage 1: replay verdicts, probe only unknown executables, then rank
    // exactly as the live stage does.
    let winner: Option<Candidate> = cx.run_stage(StageKind::ExeId, |cx| {
        let mut candidates: Vec<Candidate> = Vec::new();
        for ((path, bytes), (key, verdict)) in exes.iter().zip(verdicts) {
            match verdict {
                Some(v) => {
                    replay_probe_events(cx, v.events);
                    if v.qualified {
                        candidates.push(Candidate {
                            path: path.clone(),
                            handlers: v.handlers,
                            program: None,
                        });
                    }
                }
                None => {
                    let mut events = StageEvents::default();
                    let probed = probe_executable(path, bytes, &cx.inputs.config.exeid, &mut events);
                    let verdict = Verdict {
                        events,
                        qualified: probed.is_some(),
                        handlers: probed
                            .as_ref()
                            .map(|c| c.handlers.clone())
                            .unwrap_or_default(),
                    };
                    match write_verdict(cache, key, &verdict) {
                        Ok(written) => stats.bytes_written += written,
                        Err(e) => cache_diags.push(cache_diag(
                            format!("{key:032x}.frv"),
                            format!("verdict write failed: {e}"),
                        )),
                    }
                    replay_probe_events(cx, verdict.events);
                    if let Some(ChosenExecutable {
                        path,
                        program,
                        handlers,
                    }) = probed
                    {
                        candidates.push(Candidate {
                            path,
                            handlers,
                            program: Some(program),
                        });
                    }
                }
            }
        }
        let mut best = 0usize;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            if c.best_score() > candidates[best].best_score() {
                best = i;
            }
        }
        if candidates.len() > 1 {
            let winner = candidates[best].path.clone();
            let winner_score = candidates[best].best_score();
            for (i, c) in candidates.iter().enumerate() {
                if i != best {
                    cx.diagnose(Diagnostic::new(
                        StageKind::ExeId,
                        Severity::Info,
                        &c.path,
                        format!(
                            "device-cloud candidate (best P_f {:.2}) outscored by {winner} (best P_f {winner_score:.2})",
                            c.best_score()
                        ),
                    ));
                }
            }
        }
        candidates.into_iter().nth(best)
    });

    let flush_diags = |observer: &mut dyn Observer, diags: &[Diagnostic], stats: &UnitStats| {
        for d in diags {
            observer.diagnostic(d);
        }
        if stats.bytes_read > 0 {
            observer.count(Counter::CacheBytesRead, stats.bytes_read);
        }
        if stats.bytes_written > 0 {
            observer.count(Counter::CacheBytesWritten, stats.bytes_written);
        }
    };

    let Some(mut winner) = winner else {
        let analysis = cx.finish(None, Vec::new(), Vec::new());
        let mut bytes = Vec::new();
        codec::put_analysis(&mut bytes, &analysis);
        flush_diags(observer, &cache_diags, &stats);
        return Ok(UnitFunnelOutcome { bytes, stats });
    };
    if is_cancelled(cancel) {
        return Err(cancelled(cancel.expect("is_cancelled implies Some")));
    }

    // Materialize the winner's program. A verdict-hit winner is only now
    // parsed and lifted — identification is skipped entirely, its result
    // is the verdict's handler list.
    let program = match winner.program.take() {
        Some(p) => p,
        None => {
            let bytes = exes
                .iter()
                .find(|(p, _)| *p == winner.path)
                .map(|(_, b)| *b)
                .expect("winner path came from this executable list");
            match firmres_isa::Executable::from_bytes(bytes)
                .ok()
                .and_then(|exe| firmres_isa::lift(&exe, &winner.path).ok())
            {
                Some(p) => p,
                None => {
                    // The verdict claimed these exact bytes qualified, yet
                    // they no longer lift: the artifact lied. Degrade to
                    // an executable-less analysis and diagnose.
                    cache_diags.push(cache_diag(
                        winner.path.clone(),
                        "verdict-qualified executable failed to lift; verdict discarded".into(),
                    ));
                    let name = verdict_name(verdict_key(fw, &winner.path, bytes, config_fp));
                    let _ = std::fs::remove_file(cache.artifact_path(&name));
                    cache.note_removed_artifact(&name);
                    let analysis = cx.finish(None, Vec::new(), Vec::new());
                    let mut out = Vec::new();
                    codec::put_analysis(&mut out, &analysis);
                    flush_diags(observer, &cache_diags, &stats);
                    return Ok(UnitFunnelOutcome { bytes: out, stats });
                }
            }
        }
    };

    // Stages 2–5: plan units against the bank, run only the dirty ones.
    let units = enumerate_units(&program, &winner.handlers);
    let context_hash = program_context_hash(&program);
    let fn_hashes: BTreeMap<Address, u128> = program
        .functions()
        .map(|f| (f.entry(), function_content_hash(f)))
        .collect();
    let graph = program.call_graph();
    let bank = bank_key(fw, &winner.path, config_fp, classifier_fp);
    let mut stored = match read_bank(cache, bank) {
        Ok(Some((entries, bytes_read))) => {
            stats.bytes_read += bytes_read;
            entries
        }
        Ok(None) => BTreeMap::new(),
        Err(e) => {
            cache_diags.push(cache_diag(
                format!("{bank:032x}.fru"),
                format!("bank unusable, re-running all units: {}", e.0),
            ));
            BTreeMap::new()
        }
    };
    let locators: Vec<u128> = units
        .iter()
        .map(|u| unit_locator(fw, &winner.path, context_hash, u, config_fp, classifier_fp))
        .collect();
    let mut plan: Vec<Option<BankEntry>> = locators
        .iter()
        .map(|loc| {
            stored
                .remove(loc)
                .filter(|e| footprint_is_clean(e, &fn_hashes, &graph))
        })
        .collect();
    let dirty: Vec<usize> = plan
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.is_none().then_some(i))
        .collect();
    // Entries still in `stored` have locators no current unit claims:
    // their seeds vanished in the update. They only count toward the
    // rewrite decision below.
    let stale = stored.len();
    stats.unit_hits += (units.len() - dirty.len()) as u64;
    stats.unit_misses += dirty.len() as u64;

    let engine = TaintEngine::with_config(&program, config.taint.clone());
    let renderer = SliceRenderer::with_mode(&program, config.taint.cold_path);
    // The classification cache is keyed by classifier fingerprint (a
    // text's label depends on the model), so images analyzed under the
    // same model share one corpus-wide cache while a model swap can
    // never replay stale labels.
    let classes = UnitClassifier::with_cache(
        classifier,
        config.taint.cold_path,
        cache.class_cache(classifier_fp),
    );
    let fresh = firmres::run_pool(dirty.len(), jobs, |j| {
        if is_cancelled(cancel) {
            return None;
        }
        Some(run_message_unit(
            &engine,
            &renderer,
            &classes,
            &units[dirty[j]],
        ))
    });
    if is_cancelled(cancel) || fresh.iter().any(Option::is_none) {
        return Err(cancelled(cancel.expect("only a token cancels the pool")));
    }

    // Fold fresh outputs into the plan, footprinting each from the taint
    // engine's recorded trace dependencies.
    for (&i, output) in dirty.iter().zip(fresh.into_iter().flatten()) {
        let unit = &units[i];
        let mut deps = TraceDeps::default();
        deps.funcs.insert(unit.function);
        for &(func, callsite, arg) in output.taint_keys() {
            if let Some(d) = engine.trace_deps(func, callsite, arg) {
                deps.merge(&d);
            }
        }
        let footprint = deps
            .funcs
            .iter()
            .map(|&a| (a, fn_hashes.get(&a).copied().unwrap_or(0)))
            .collect();
        let caller_enums = deps
            .caller_enums
            .iter()
            .map(|&a| (a, caller_edges_hash(&graph, a)))
            .collect();
        let mut record_bytes = Vec::new();
        codec::put_record(&mut record_bytes, &output.record);
        plan[i] = Some(BankEntry {
            footprint,
            caller_enums,
            slices_nonempty: !output.record.slices.is_empty(),
            taint_keys: output.taint_keys().to_vec(),
            events: output.events,
            record_bytes,
        });
    }
    let entries: Vec<(u128, BankEntry)> = locators
        .into_iter()
        .zip(plan.into_iter().map(|p| p.expect("every unit planned")))
        .collect();

    // Write-behind: rewriting the bank costs a full-file write, while
    // skipping it only means the next update re-runs today's few dirty
    // units again — far cheaper than the IO when the change is small.
    // Rewrite when at least a quarter of the stored state changed
    // (fresh or re-run entries plus dropped stale seeds); a cold run is
    // a 100% change and always persists.
    let drift = dirty.len() + stale;
    if drift > 0 && 4 * drift >= units.len() {
        // The rewrite keeps exactly the current units: entries whose
        // seeds vanished in the update are dropped here.
        match write_bank(cache, bank, &entries) {
            Ok(written) => stats.bytes_written += written,
            Err(e) => cache_diags.push(cache_diag(
                format!("{bank:032x}.fru"),
                format!("bank write failed: {e}"),
            )),
        }
    }

    // Merge: replay every unit's events in canonical order — identical
    // streams to a cold run — then splice the record bytes. The entries
    // are consumed: events and records move into the merge, no clones.
    let mut views = Vec::with_capacity(entries.len());
    let mut records = Vec::with_capacity(entries.len());
    for (_, e) in entries {
        views.push(UnitView {
            events: e.events,
            taint_keys: e.taint_keys,
            slices_nonempty: e.slices_nonempty,
        });
        records.push(e.record_bytes);
    }
    merge_unit_event_streams(&mut cx, &views, engine.lib_matched());

    let blobs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
    let mut bytes = Vec::new();
    codec::put_analysis_spliced(
        &mut bytes,
        Some(&winner.path),
        &winner.handlers,
        &blobs,
        cx.timings(),
        cx.counters(),
        cx.diagnostics(),
    );
    drop(cx);

    flush_diags(observer, &cache_diags, &stats);
    Ok(UnitFunnelOutcome { bytes, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::get_analysis;
    use firmres::{analyze_firmware, FirmwareAnalysis, NullObserver};
    use firmres_corpus::generate_device;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("firmres-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn funnel(fw: &FirmwareImage, cache: &AnalysisCache, jobs: usize) -> (Vec<u8>, UnitStats) {
        let out = analyze_image_units_incremental(
            fw,
            None,
            &AnalysisConfig::default(),
            jobs,
            cache,
            &mut NullObserver,
            None,
        )
        .expect("no cancellation token");
        (out.bytes, out.stats)
    }

    fn normalized(bytes: &[u8]) -> Vec<u8> {
        let mut a = get_analysis(&mut Reader::new(bytes)).expect("funnel bytes decode");
        a.timings = Default::default();
        let mut out = Vec::new();
        codec::put_analysis(&mut out, &a);
        out
    }

    fn encode_plain(a: &FirmwareAnalysis) -> Vec<u8> {
        let mut a2 = FirmwareAnalysis {
            executable: a.executable.clone(),
            handlers: a.handlers.clone(),
            messages: a.messages.clone(),
            timings: Default::default(),
            counters: a.counters,
            diagnostics: a.diagnostics.clone(),
        };
        a2.timings = Default::default();
        let mut out = Vec::new();
        codec::put_analysis(&mut out, &a2);
        out
    }

    #[test]
    fn cold_funnel_matches_plain_pipeline_byte_for_byte() {
        let cache = AnalysisCache::new(temp_dir("cold-identity"));
        for id in [6u8, 10, 21] {
            let dev = generate_device(id, 7);
            let (bytes, stats) = funnel(&dev.firmware, &cache, 1);
            let plain = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
            assert_eq!(
                normalized(&bytes),
                encode_plain(&plain),
                "device {id} cold funnel output differs from the plain pipeline"
            );
            assert_eq!(stats.unit_hits, 0);
            assert_eq!(stats.verdict_hits, 0);
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn unchanged_rerun_reuses_every_unit_and_stays_byte_identical() {
        let cache = AnalysisCache::new(temp_dir("warm-identity"));
        let dev = generate_device(10, 7);
        let (cold, cold_stats) = funnel(&dev.firmware, &cache, 2);
        assert!(cold_stats.unit_misses > 0);
        let (warm, warm_stats) = funnel(&dev.firmware, &cache, 1);
        assert_eq!(
            warm_stats.unit_misses, 0,
            "nothing changed, nothing re-runs"
        );
        assert_eq!(warm_stats.unit_hits, cold_stats.unit_misses);
        assert_eq!(warm_stats.verdict_misses, 0);
        assert_eq!(warm_stats.reuse_rate(), 1.0);
        assert_eq!(normalized(&cold), normalized(&warm));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn hostile_artifacts_degrade_to_cold_run_with_cache_diagnostic() {
        let cache = AnalysisCache::new(temp_dir("hostile"));
        let dev = generate_device(10, 7);
        let (cold, _) = funnel(&dev.firmware, &cache, 1);

        // Mangle every unit artifact in the store.
        for entry in std::fs::read_dir(cache.dir()).unwrap() {
            let path = entry.unwrap().path();
            let ext = path.extension().and_then(|e| e.to_str());
            if let Some("fru" | "frv") = ext {
                let mut data = std::fs::read(&path).unwrap();
                let mid = data.len() / 2;
                data[mid] ^= 0xFF;
                std::fs::write(&path, &data).unwrap();
            }
        }
        let mut obs = firmres::CollectingObserver::default();
        let out = analyze_image_units_incremental(
            &dev.firmware,
            None,
            &AnalysisConfig::default(),
            1,
            &cache,
            &mut obs,
            None,
        )
        .unwrap();
        assert_eq!(out.stats.unit_hits, 0, "damaged bank serves nothing");
        assert_eq!(out.stats.verdict_hits, 0);
        assert!(
            obs.diagnostics
                .iter()
                .any(|d| d.stage == StageKind::Cache && d.severity == Severity::Warning),
            "damage is diagnosed: {:?}",
            obs.diagnostics
        );
        // The analysis itself is unperturbed by cache damage.
        assert_eq!(normalized(&cold), normalized(&out.bytes));
        let decoded = get_analysis(&mut Reader::new(&out.bytes)).unwrap();
        assert!(
            decoded
                .diagnostics
                .iter()
                .all(|d| d.stage != StageKind::Cache),
            "cache diagnostics never leak into the analysis"
        );

        // Truncated artifacts (checksum gone) likewise never panic.
        for entry in std::fs::read_dir(cache.dir()).unwrap() {
            let path = entry.unwrap().path();
            let ext = path.extension().and_then(|e| e.to_str());
            if let Some("fru" | "frv") = ext {
                let data = std::fs::read(&path).unwrap();
                std::fs::write(&path, &data[..data.len().min(9)]).unwrap();
            }
        }
        let (bytes, stats) = funnel(&dev.firmware, &cache, 1);
        assert_eq!(stats.unit_hits, 0);
        assert_eq!(normalized(&cold), normalized(&bytes));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn fingerprint_changes_invalidate_unit_artifacts() {
        let cache = AnalysisCache::new(temp_dir("fingerprints"));
        let dev = generate_device(10, 7);
        let (_, cold) = funnel(&dev.firmware, &cache, 1);
        assert!(cold.unit_misses > 0);

        // Config change: different fingerprint, different bank and
        // verdict keys — everything re-runs, exactly like image entries.
        let mut config = AnalysisConfig::default();
        config.taint.max_depth += 1;
        let out = analyze_image_units_incremental(
            &dev.firmware,
            None,
            &config,
            1,
            &cache,
            &mut NullObserver,
            None,
        )
        .unwrap();
        assert_eq!(out.stats.unit_hits, 0, "config flip must miss the bank");
        assert_eq!(out.stats.verdict_hits, 0, "config flip must miss verdicts");

        // Classifier change: banks miss; verdicts (stage 1 never reads
        // the classifier) are deliberately still served.
        use firmres_semantics::{Primitive, TrainConfig};
        let model = Classifier::train(
            &[
                ("mac address".to_string(), Primitive::DevIdentifier),
                ("password login".to_string(), Primitive::UserCred),
            ],
            &TrainConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        let out = analyze_image_units_incremental(
            &dev.firmware,
            Some(&model),
            &AnalysisConfig::default(),
            1,
            &cache,
            &mut NullObserver,
            None,
        )
        .unwrap();
        assert_eq!(out.stats.unit_hits, 0, "classifier flip must miss the bank");
        assert!(out.stats.verdict_hits > 0, "verdicts are classifier-free");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cancellation_is_surfaced() {
        let cache = AnalysisCache::new(temp_dir("cancel"));
        let dev = generate_device(10, 7);
        let token = CancelToken::new();
        token.cancel();
        let err = analyze_image_units_incremental(
            &dev.firmware,
            None,
            &AnalysisConfig::default(),
            1,
            &cache,
            &mut NullObserver,
            Some(&token),
        )
        .unwrap_err();
        assert_eq!(
            err,
            Error::Cancelled {
                deadline_exceeded: false
            }
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
