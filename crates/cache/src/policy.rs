//! Store policy: shard layout and budget-driven eviction.
//!
//! The FRAC store started life as one flat directory that only ever
//! grows. Fleet-scale serving (ROADMAP item 2) needs two more degrees of
//! freedom, both declarative and both defaulting to the historical
//! behavior:
//!
//! * **Sharding** — with [`StorePolicy::shards`] > 1 the store spreads
//!   its artifacts over `N` subdirectories (`s000`…), selected by the
//!   leading hex byte of the artifact file name. Every artifact name
//!   (`.frac` entries, `.fru` banks, `.frv` verdicts) starts with 32 hex
//!   characters of a content hash, so the split is uniform without any
//!   extra bookkeeping. Each shard carries its own persisted index and
//!   is swept for write-temp orphans independently.
//! * **Eviction** — with [`StorePolicy::byte_budget`] set the store
//!   tracks per-artifact size and last access in memory (seeded from the
//!   persisted shard indexes, falling back to file mtimes) and garbage
//!   collects least-recently-used artifacts whenever a write pushes the
//!   total over `high_watermark × budget`, down to
//!   `low_watermark × budget`. Because every artifact is re-derivable
//!   from the submitted firmware bytes, eviction can never lose data —
//!   an evicted entry is simply a future cache miss.
//!
//! The eviction pass persists its counters (and the surviving LRU table)
//! into a small sealed `shard.fridx` file per shard, so an offline
//! `cache-stats` run — a different process — still reports evictions and
//! a restarted daemon resumes with the previous access ordering.
//!
//! ```text
//! eviction state machine (per write, budget B):
//!
//!            total ≤ high·B                   total > high·B
//!   ┌──────┐ ───────────────▶ stays FILLING ┌────────────┐
//!   │ FILL │                                │ COLLECTING │
//!   └──────┘ ◀─────────────────────────────┘────────────┘
//!            evict LRU until total ≤ low·B
//!
//!   0 ──────────── low·B ────────── high·B = B
//!   │   hysteresis band: writes      │ trigger
//!   │   accumulate, no GC            │
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Declarative storage policy for an [`AnalysisCache`]. The default
/// reproduces the pre-policy store exactly: one flat directory, no
/// eviction, no accounting overhead.
///
/// [`AnalysisCache`]: crate::AnalysisCache
#[derive(Debug, Clone, PartialEq)]
pub struct StorePolicy {
    /// Number of shard subdirectories. `1` keeps the flat layout.
    /// Changing the shard count of an existing store is a re-keying
    /// event: artifacts written under the old layout are no longer
    /// reachable (they survey as occupancy and remain evictable).
    pub shards: usize,
    /// Total byte budget across all artifacts (`.frac` + `.fru` +
    /// `.frv`). `None` disables eviction entirely.
    pub byte_budget: Option<u64>,
    /// GC trigger point as a fraction of the budget (`0 < low ≤ high
    /// ≤ 1`). The store is collected when a write leaves it above
    /// `high_watermark × budget`.
    pub high_watermark: f64,
    /// GC target point: a pass evicts least-recently-used artifacts
    /// until the total is at or below `low_watermark × budget`.
    pub low_watermark: f64,
    /// Whether pinned artifacts are exempt from eviction. With `false`
    /// pins are advisory only and LRU order alone decides.
    pub exempt_pinned: bool,
    /// Entry budget of the in-memory corpus-wide slice-classification
    /// cache (distinct texts; `0` = unbounded). At the budget new texts
    /// are still classified, just not remembered — labels never change,
    /// only the hit rate.
    pub class_cache_entries: usize,
}

impl Default for StorePolicy {
    fn default() -> StorePolicy {
        StorePolicy {
            shards: 1,
            byte_budget: None,
            high_watermark: 1.0,
            low_watermark: 0.85,
            exempt_pinned: true,
            // ~1M distinct texts; slice texts average well under 1 KiB,
            // so the worst case stays within a service-sized heap.
            class_cache_entries: 1 << 20,
        }
    }
}

/// Hard cap on [`StorePolicy::shards`]; beyond this the per-shard
/// directories stop paying for themselves.
pub const MAX_SHARDS: usize = 256;

impl StorePolicy {
    /// Validate the policy's invariants, returning a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 || self.shards > MAX_SHARDS {
            return Err(format!("shards must be in 1..={MAX_SHARDS}"));
        }
        if !(self.low_watermark > 0.0 && self.low_watermark <= self.high_watermark) {
            return Err("low_watermark must satisfy 0 < low ≤ high".to_string());
        }
        if self.high_watermark > 1.0 {
            return Err(
                "high_watermark must be ≤ 1.0 (the store may never exceed its budget)".to_string(),
            );
        }
        Ok(())
    }

    /// Apply one `key = value` pair from a config file's `[store]`
    /// section. Unknown keys are an error so typos cannot silently
    /// revert to defaults.
    pub fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "shards" => {
                self.shards = value
                    .parse()
                    .map_err(|_| format!("shards: not a count: {value:?}"))?;
            }
            "byte_budget" => {
                self.byte_budget = parse_byte_size(value)?;
            }
            "high_watermark" => {
                self.high_watermark = parse_fraction(key, value)?;
            }
            "low_watermark" => {
                self.low_watermark = parse_fraction(key, value)?;
            }
            "exempt_pinned" => {
                self.exempt_pinned = match value {
                    "true" => true,
                    "false" => false,
                    _ => return Err(format!("exempt_pinned: expected true/false, got {value:?}")),
                };
            }
            "class_cache_entries" => {
                self.class_cache_entries = if value.eq_ignore_ascii_case("none")
                    || value.eq_ignore_ascii_case("unlimited")
                {
                    0
                } else {
                    value
                        .parse()
                        .map_err(|_| format!("class_cache_entries: not a count: {value:?}"))?
                };
            }
            _ => return Err(format!("unknown [store] key: {key}")),
        }
        Ok(())
    }
}

fn parse_fraction(key: &str, value: &str) -> Result<f64, String> {
    let f: f64 = value
        .parse()
        .map_err(|_| format!("{key}: not a number: {value:?}"))?;
    if !(f.is_finite() && f > 0.0 && f <= 1.0) {
        return Err(format!("{key}: must be in (0, 1], got {value}"));
    }
    Ok(f)
}

/// Parse a byte size with an optional `K`/`M`/`G` suffix (powers of
/// 1024); `none` / `unlimited` / `0` mean no budget.
pub fn parse_byte_size(value: &str) -> Result<Option<u64>, String> {
    let v = value.trim();
    if v.eq_ignore_ascii_case("none") || v.eq_ignore_ascii_case("unlimited") || v == "0" {
        return Ok(None);
    }
    let (digits, scale) = match v.as_bytes().last() {
        Some(b'K' | b'k') => (&v[..v.len() - 1], 1u64 << 10),
        Some(b'M' | b'm') => (&v[..v.len() - 1], 1u64 << 20),
        Some(b'G' | b'g') => (&v[..v.len() - 1], 1u64 << 30),
        _ => (v, 1),
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("byte size: not a number: {value:?}"))?;
    n.checked_mul(scale)
        .filter(|&b| b > 0)
        .map(Some)
        .ok_or_else(|| format!("byte size out of range: {value:?}"))
}

/// What one eviction pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Artifacts deleted by this pass.
    pub evicted: u64,
    /// Bytes those artifacts occupied.
    pub reclaimed_bytes: u64,
}

/// Occupancy of one physical store directory (a shard subdirectory, or
/// the root for a flat store), as surveyed by `stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardOccupancy {
    /// Directory label: `root` for the flat layout, `s000`… for shards.
    pub name: String,
    /// Artifact files (`.frac` + `.fru` + `.frv`) in this directory.
    pub files: u64,
    /// Bytes across those files.
    pub bytes: u64,
    /// Lifetime artifacts evicted from this shard (from its index).
    pub evicted: u64,
    /// Lifetime bytes reclaimed from this shard (from its index).
    pub reclaimed_bytes: u64,
}

/// The directory name of shard `idx`.
pub(crate) fn shard_dir_name(idx: usize) -> String {
    format!("s{idx:03}")
}

/// Parse a shard directory name back to its index.
pub(crate) fn parse_shard_dir(name: &str) -> Option<usize> {
    let digits = name.strip_prefix('s')?;
    if digits.len() != 3 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Which shard an artifact file name belongs to. Every artifact name
/// starts with 32 hex characters of a content hash, so the leading byte
/// is uniform; a name that somehow is not hex falls back to a character
/// sum, which is still deterministic.
pub(crate) fn shard_of_name(name: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let lead = u8::from_str_radix(name.get(..2).unwrap_or("00"), 16)
        .unwrap_or_else(|_| name.bytes().fold(0u8, u8::wrapping_add));
    lead as usize % shards
}

// ---------------------------------------------------------------------------
// In-memory LRU accounting
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct FileMeta {
    bytes: u64,
    /// Logical access tick — monotonically increasing, larger = fresher.
    tick: u64,
}

/// Shared accounting for an eviction-enabled store. Clones of the cache
/// share one of these, so the daemon's workers see one LRU ordering.
#[derive(Debug, Default)]
pub(crate) struct GcState {
    clock: u64,
    entries: HashMap<String, FileMeta>,
    total_bytes: u64,
    pinned: std::collections::HashSet<String>,
    /// Lifetime counters, per shard index.
    evicted: Vec<u64>,
    reclaimed: Vec<u64>,
}

impl GcState {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// The eviction engine owned by an [`AnalysisCache`] when a byte budget
/// is configured.
///
/// [`AnalysisCache`]: crate::AnalysisCache
#[derive(Debug)]
pub(crate) struct Evictor {
    policy: StorePolicy,
    state: Mutex<GcState>,
}

fn lock_state(m: &Mutex<GcState>) -> std::sync::MutexGuard<'_, GcState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Evictor {
    /// Build the accounting by scanning the store's directories, seeding
    /// access order from the persisted shard indexes where available and
    /// from file mtimes otherwise.
    pub(crate) fn open(root: &Path, policy: &StorePolicy) -> Evictor {
        let shards = policy.shards.max(1);
        let mut state = GcState {
            evicted: vec![0; shards],
            reclaimed: vec![0; shards],
            ..GcState::default()
        };
        // (name, bytes, mtime, index tick if known)
        let mut found: Vec<(String, u64, std::time::SystemTime, Option<u64>)> = Vec::new();
        for (idx, dir) in store_dirs(root, policy) {
            let index = read_index(&dir.join(INDEX_NAME));
            if let Some(index) = &index {
                if idx < shards {
                    state.evicted[idx] = index.evicted;
                    state.reclaimed[idx] = index.reclaimed_bytes;
                }
            }
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if !is_artifact_name(name) {
                    continue;
                }
                let Ok(meta) = entry.metadata() else { continue };
                if !meta.is_file() {
                    continue;
                }
                let tick = index.as_ref().and_then(|i| i.ticks.get(name)).copied();
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                found.push((name.to_string(), meta.len(), mtime, tick));
            }
        }
        // Index ticks win; mtime-only files slot in by modification
        // time. Sorting oldest-first and re-ticking preserves both
        // orders relative to each other well enough for LRU.
        found.sort_by(|a, b| a.3.cmp(&b.3).then(a.2.cmp(&b.2)).then(a.0.cmp(&b.0)));
        for (name, bytes, _, _) in found {
            let tick = state.tick();
            state.total_bytes += bytes;
            state.entries.insert(name, FileMeta { bytes, tick });
        }
        Evictor {
            policy: policy.clone(),
            state: Mutex::new(state),
        }
    }

    /// Record a read hit: refresh the artifact's access tick.
    pub(crate) fn note_read(&self, name: &str) {
        let mut st = lock_state(&self.state);
        let tick = st.tick();
        if let Some(meta) = st.entries.get_mut(name) {
            meta.tick = tick;
        }
    }

    /// Record a (re)write. Returns `true` when the store is now over the
    /// trigger watermark and a GC pass should run.
    pub(crate) fn note_write(&self, name: &str, bytes: u64) -> bool {
        let mut st = lock_state(&self.state);
        let tick = st.tick();
        if let Some(old) = st
            .entries
            .insert(name.to_string(), FileMeta { bytes, tick })
        {
            st.total_bytes = st.total_bytes.saturating_sub(old.bytes);
        }
        st.total_bytes += bytes;
        match self.policy.byte_budget {
            Some(budget) => st.total_bytes as f64 > self.policy.high_watermark * budget as f64,
            None => false,
        }
    }

    /// Drop accounting for an artifact deleted outside the GC (e.g. a
    /// lying verdict removed by the funnel).
    pub(crate) fn note_removed(&self, name: &str) {
        let mut st = lock_state(&self.state);
        if let Some(old) = st.entries.remove(name) {
            st.total_bytes = st.total_bytes.saturating_sub(old.bytes);
        }
    }

    /// Pin or unpin an artifact by file name.
    pub(crate) fn set_pinned(&self, name: &str, pinned: bool) {
        let mut st = lock_state(&self.state);
        if pinned {
            st.pinned.insert(name.to_string());
        } else {
            st.pinned.remove(name);
        }
    }

    /// Run one eviction pass: delete least-recently-used artifacts until
    /// the total is at or below `low_watermark × budget`, then persist
    /// the updated per-shard indexes. The most recently touched artifact
    /// is never evicted, so a store whose budget is smaller than a
    /// single entry still serves the entry it just wrote.
    pub(crate) fn collect(&self, root: &Path) -> GcOutcome {
        let Some(budget) = self.policy.byte_budget else {
            return GcOutcome::default();
        };
        let target = (self.policy.low_watermark * budget as f64) as u64;
        let shards = self.policy.shards.max(1);
        let mut st = lock_state(&self.state);
        if st.total_bytes <= target {
            return GcOutcome::default();
        }
        let mut victims: Vec<(u64, String, u64)> = st
            .entries
            .iter()
            .filter(|(name, _)| !(self.policy.exempt_pinned && st.pinned.contains(*name)))
            .map(|(name, meta)| (meta.tick, name.clone(), meta.bytes))
            .collect();
        victims.sort_unstable();
        if !victims.is_empty() {
            victims.pop(); // the freshest survivor
        }
        let mut outcome = GcOutcome::default();
        let mut touched_shards = vec![false; shards];
        let all_dirs = store_dirs(root, &self.policy);
        for (_, name, bytes) in victims {
            if st.total_bytes <= target {
                break;
            }
            let shard = shard_of_name(&name, shards);
            let path = artifact_path_in(root, &self.policy, &name);
            if std::fs::remove_file(&path).is_err() {
                // Already gone (a concurrent actor won the race), or the
                // artifact predates a shard-layout change and lives in a
                // legacy directory — sweep those before giving up.
                for (_, dir) in &all_dirs {
                    if std::fs::remove_file(dir.join(&name)).is_ok() {
                        break;
                    }
                }
            }
            st.entries.remove(&name);
            st.total_bytes = st.total_bytes.saturating_sub(bytes);
            st.evicted[shard] += 1;
            st.reclaimed[shard] += bytes;
            outcome.evicted += 1;
            outcome.reclaimed_bytes += bytes;
            touched_shards[shard] = true;
        }
        if outcome.evicted > 0 {
            persist_indexes(root, &self.policy, &st, &touched_shards);
        }
        outcome
    }

    /// Bytes currently accounted across all artifacts.
    pub(crate) fn total_bytes(&self) -> u64 {
        lock_state(&self.state).total_bytes
    }
}

/// Whether a file name is a store artifact (and thus accountable).
fn is_artifact_name(name: &str) -> bool {
    name.ends_with(".frac") || name.ends_with(".fru") || name.ends_with(".frv")
}

/// The directory an artifact named `name` lives in under `policy`.
pub(crate) fn artifact_dir_in(root: &Path, policy: &StorePolicy, name: &str) -> PathBuf {
    if policy.shards <= 1 {
        root.to_path_buf()
    } else {
        root.join(shard_dir_name(shard_of_name(name, policy.shards)))
    }
}

fn artifact_path_in(root: &Path, policy: &StorePolicy, name: &str) -> PathBuf {
    artifact_dir_in(root, policy, name).join(name)
}

/// Every physical directory the store under `policy` may keep artifacts
/// in: configured shard dirs first, then any other shard-named dirs left
/// by a previous layout, then the root (index `usize::MAX` marks dirs
/// outside the configured shard range).
pub(crate) fn store_dirs(root: &Path, policy: &StorePolicy) -> Vec<(usize, PathBuf)> {
    let mut dirs = vec![(0usize, root.to_path_buf())];
    if policy.shards > 1 {
        dirs.clear();
        dirs.push((usize::MAX, root.to_path_buf()));
        for idx in 0..policy.shards {
            dirs.push((idx, root.join(shard_dir_name(idx))));
        }
    }
    if let Ok(entries) = std::fs::read_dir(root) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(idx) = parse_shard_dir(name) {
                let path = entry.path();
                if path.is_dir() && !dirs.iter().any(|(_, d)| *d == path) {
                    dirs.push((idx, path));
                }
            }
        }
    }
    dirs
}

// ---------------------------------------------------------------------------
// The persisted shard index
// ---------------------------------------------------------------------------

/// File name of the per-shard index (sealed, see [`write_index`]).
pub(crate) const INDEX_NAME: &str = "shard.fridx";

const INDEX_MAGIC: &[u8; 4] = b"FRIX";

/// A decoded shard index: lifetime eviction counters plus the last known
/// access tick per surviving artifact.
#[derive(Debug, Default)]
pub(crate) struct ShardIndex {
    pub(crate) evicted: u64,
    pub(crate) reclaimed_bytes: u64,
    pub(crate) budget_bytes: u64,
    pub(crate) ticks: HashMap<String, u64>,
}

/// Read a shard index; any damage (missing, truncated, bad checksum,
/// foreign magic) reads as absent — the index is an accelerator, never
/// a source of truth.
pub(crate) fn read_index(path: &Path) -> Option<ShardIndex> {
    let data = std::fs::read(path).ok()?;
    if data.len() < INDEX_MAGIC.len() + 8 {
        return None;
    }
    let (body, tail) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    if stored != firmres_firmware::content_hash_packed(body) {
        return None;
    }
    let mut r = crate::codec::Reader::new(body);
    if r.bytes(4).ok()? != INDEX_MAGIC {
        return None;
    }
    if r.u16().ok()? != crate::store::SCHEMA_VERSION {
        return None;
    }
    let mut index = ShardIndex {
        evicted: r.u64().ok()?,
        reclaimed_bytes: r.u64().ok()?,
        budget_bytes: r.u64().ok()?,
        ticks: HashMap::new(),
    };
    let n = r.u32().ok()? as usize;
    for _ in 0..n {
        let len = r.u32().ok()? as usize;
        let name = String::from_utf8(r.bytes(len).ok()?.to_vec()).ok()?;
        let tick = r.u64().ok()?;
        index.ticks.insert(name, tick);
    }
    Some(index)
}

/// Persist the indexes of every shard marked in `touched`, using the
/// store's atomic temp-then-rename convention so a crash mid-write
/// leaves the previous index intact (and the orphan sweep reaps the
/// temp).
fn persist_indexes(root: &Path, policy: &StorePolicy, st: &GcState, touched: &[bool]) {
    use bytes::BufMut;
    let shards = policy.shards.max(1);
    for (shard, touched) in touched.iter().enumerate() {
        if !touched {
            continue;
        }
        let mut body = Vec::new();
        body.put_slice(INDEX_MAGIC);
        body.put_u16_le(crate::store::SCHEMA_VERSION);
        body.put_u64_le(st.evicted[shard]);
        body.put_u64_le(st.reclaimed[shard]);
        body.put_u64_le(policy.byte_budget.unwrap_or(0));
        let survivors: Vec<(&String, &FileMeta)> = st
            .entries
            .iter()
            .filter(|(name, _)| shard_of_name(name, shards) == shard)
            .collect();
        body.put_u32_le(survivors.len() as u32);
        for (name, meta) in survivors {
            body.put_u32_le(name.len() as u32);
            body.put_slice(name.as_bytes());
            body.put_u64_le(meta.tick);
        }
        body.put_u64_le(firmres_firmware::content_hash_packed(&body));
        let dir = if policy.shards <= 1 {
            root.to_path_buf()
        } else {
            root.join(shard_dir_name(shard))
        };
        let _ = crate::store::write_file_atomic(&dir, INDEX_NAME, &body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_the_historical_store() {
        let p = StorePolicy::default();
        assert_eq!(p.shards, 1);
        assert_eq!(p.byte_budget, None);
        assert!(p.exempt_pinned);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("4096"), Ok(Some(4096)));
        assert_eq!(parse_byte_size("64K"), Ok(Some(64 << 10)));
        assert_eq!(parse_byte_size("3M"), Ok(Some(3 << 20)));
        assert_eq!(parse_byte_size("2G"), Ok(Some(2 << 30)));
        assert_eq!(parse_byte_size("none"), Ok(None));
        assert_eq!(parse_byte_size("0"), Ok(None));
        assert!(parse_byte_size("lots").is_err());
        assert!(parse_byte_size("-5").is_err());
    }

    #[test]
    fn policy_keys_apply_and_reject_typos() {
        let mut p = StorePolicy::default();
        p.apply("shards", "8").unwrap();
        p.apply("byte_budget", "128K").unwrap();
        p.apply("low_watermark", "0.5").unwrap();
        p.apply("exempt_pinned", "false").unwrap();
        assert_eq!(p.shards, 8);
        assert_eq!(p.byte_budget, Some(128 << 10));
        assert_eq!(p.low_watermark, 0.5);
        assert!(!p.exempt_pinned);
        assert!(p.apply("bite_budget", "1M").is_err());
        assert!(p.apply("low_watermark", "1.5").is_err());
    }

    #[test]
    fn watermark_invariants_are_validated() {
        let mut p = StorePolicy {
            low_watermark: 0.9,
            high_watermark: 0.5,
            ..StorePolicy::default()
        };
        assert!(p.validate().is_err());
        p.high_watermark = 0.95;
        assert!(p.validate().is_ok());
        p.shards = 0;
        assert!(p.validate().is_err());
        p.shards = MAX_SHARDS + 1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn shard_selection_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 16, 256] {
            for lead in 0..=255u8 {
                let name = format!("{lead:02x}{}", "0".repeat(30));
                let s = shard_of_name(&name, shards);
                assert!(s < shards.max(1));
                assert_eq!(s, shard_of_name(&name, shards), "deterministic");
            }
        }
        assert_eq!(shard_of_name("00aa.frac", 1), 0);
    }

    #[test]
    fn shard_dir_names_round_trip() {
        for idx in [0usize, 7, 99, 255] {
            assert_eq!(parse_shard_dir(&shard_dir_name(idx)), Some(idx));
        }
        assert_eq!(parse_shard_dir("s12"), None);
        assert_eq!(parse_shard_dir("shard1"), None);
        assert_eq!(parse_shard_dir("t000"), None);
    }
}
