//! Hand-rolled binary codec for a full [`FirmwareAnalysis`] and its
//! constituent types.
//!
//! The workspace has no serde; persistence follows the same idiom as
//! [`FirmwareImage::pack`]: little-endian scalars, length-prefixed
//! strings and vectors, and explicit per-enum tags. Enum tags are
//! assigned by *local exhaustive matches* in this module — when an
//! upstream enum gains a variant, the match here stops compiling, which
//! is exactly the signal that [`PIPELINE_VERSION`] must be bumped.
//!
//! Decoding is panic-free: every read is bounds-checked through
//! [`Reader`] and malformed input surfaces as a [`DecodeError`], which
//! the store turns into a diagnosed cache miss.
//!
//! [`FirmwareImage::pack`]: firmres_firmware::FirmwareImage::pack
//! [`PIPELINE_VERSION`]: crate::PIPELINE_VERSION

use bytes::BufMut;
use firmres::stages::UnitEvents;
use firmres::{
    Counter, Diagnostic, Event, FirmwareAnalysis, FormFlaw, HandlerInfo, MessagePhase,
    MessageRecord, Severity, StageCounters, StageEvents, StageKind, StageTimings,
};
use firmres_dataflow::{intern_unresolved_reason, FieldSource, SourceKind, TaintSummary};
use firmres_ir::{AddressSpace, Opcode, PcodeOp, Varnode};
use firmres_mft::{
    CodeSlice, MessageField, MessageFormat, Mft, MftNode, MftNodeId, MftNodeKind,
    ReconstructedMessage, Transport,
};
use firmres_semantics::Primitive;
use std::fmt;
use std::time::Duration;

/// A malformed byte stream: what was being decoded and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode failed: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(what: &str) -> Result<T, DecodeError> {
    Err(DecodeError(what.to_string()))
}

/// Bounds-checked little-endian reader over a byte slice.
///
/// The vendored `bytes::Buf` panics past the end of the buffer; cache
/// entries come from disk and must never panic the analyzer, so all
/// reads here return [`DecodeError`] instead.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return err("unexpected end of input");
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Consume `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Consume a little-endian `f64` (bit pattern, so NaN round-trips).
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Consume a `bool` encoded as one byte (`0`/`1` only).
    pub fn boolean(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => err("invalid boolean byte"),
        }
    }

    /// Consume a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => err("invalid utf-8 string"),
        }
    }

    /// A sequence length prefix, sanity-capped against the bytes left.
    ///
    /// Each element needs at least one byte, so a length larger than the
    /// remaining input is corruption — rejecting it here keeps a flipped
    /// length byte from turning into a multi-gigabyte allocation.
    pub fn seq_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return err("length prefix exceeds remaining input");
        }
        Ok(n)
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn put_opt_string(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.put_u8(0),
        Some(s) => {
            out.put_u8(1);
            put_string(out, s);
        }
    }
}

fn get_opt_string(r: &mut Reader) -> Result<Option<String>, DecodeError> {
    if r.boolean()? {
        Ok(Some(r.string()?))
    } else {
        Ok(None)
    }
}

// ---- leaf enums ---------------------------------------------------------

fn put_source_kind(out: &mut Vec<u8>, k: SourceKind) {
    // Local exhaustive tags: a new SourceKind variant fails this match.
    out.put_u8(match k {
        SourceKind::Nvram => 0,
        SourceKind::ConfigFile => 1,
        SourceKind::Environment => 2,
        SourceKind::HardwareId => 3,
        SourceKind::NetworkIn => 4,
        SourceKind::UserInput => 5,
        SourceKind::Time => 6,
        SourceKind::Random => 7,
    });
}

fn get_source_kind(r: &mut Reader) -> Result<SourceKind, DecodeError> {
    Ok(match r.u8()? {
        0 => SourceKind::Nvram,
        1 => SourceKind::ConfigFile,
        2 => SourceKind::Environment,
        3 => SourceKind::HardwareId,
        4 => SourceKind::NetworkIn,
        5 => SourceKind::UserInput,
        6 => SourceKind::Time,
        7 => SourceKind::Random,
        _ => return err("invalid SourceKind tag"),
    })
}

fn put_address_space(out: &mut Vec<u8>, s: AddressSpace) {
    out.put_u8(match s {
        AddressSpace::Ram => 0,
        AddressSpace::Register => 1,
        AddressSpace::Unique => 2,
        AddressSpace::Const => 3,
        AddressSpace::Stack => 4,
    });
}

fn get_address_space(r: &mut Reader) -> Result<AddressSpace, DecodeError> {
    Ok(match r.u8()? {
        0 => AddressSpace::Ram,
        1 => AddressSpace::Register,
        2 => AddressSpace::Unique,
        3 => AddressSpace::Const,
        4 => AddressSpace::Stack,
        _ => return err("invalid AddressSpace tag"),
    })
}

fn put_transport(out: &mut Vec<u8>, t: Transport) {
    out.put_u8(match t {
        Transport::Ssl => 0,
        Transport::Tcp => 1,
        Transport::Mqtt => 2,
        Transport::Http => 3,
        Transport::Unknown => 4,
    });
}

fn get_transport(r: &mut Reader) -> Result<Transport, DecodeError> {
    Ok(match r.u8()? {
        0 => Transport::Ssl,
        1 => Transport::Tcp,
        2 => Transport::Mqtt,
        3 => Transport::Http,
        4 => Transport::Unknown,
        _ => return err("invalid Transport tag"),
    })
}

fn put_format(out: &mut Vec<u8>, f: MessageFormat) {
    out.put_u8(match f {
        MessageFormat::Json => 0,
        MessageFormat::Query => 1,
        MessageFormat::KeyValue => 2,
        MessageFormat::Raw => 3,
    });
}

fn get_format(r: &mut Reader) -> Result<MessageFormat, DecodeError> {
    Ok(match r.u8()? {
        0 => MessageFormat::Json,
        1 => MessageFormat::Query,
        2 => MessageFormat::KeyValue,
        3 => MessageFormat::Raw,
        _ => return err("invalid MessageFormat tag"),
    })
}

fn put_phase(out: &mut Vec<u8>, p: MessagePhase) {
    out.put_u8(match p {
        MessagePhase::Binding => 0,
        MessagePhase::Business => 1,
    });
}

fn get_phase(r: &mut Reader) -> Result<MessagePhase, DecodeError> {
    Ok(match r.u8()? {
        0 => MessagePhase::Binding,
        1 => MessagePhase::Business,
        _ => return err("invalid MessagePhase tag"),
    })
}

fn put_stage_kind(out: &mut Vec<u8>, s: StageKind) {
    out.put_u8(match s {
        StageKind::Input => 0,
        StageKind::ExeId => 1,
        StageKind::FieldId => 2,
        StageKind::Semantics => 3,
        StageKind::Concat => 4,
        StageKind::FormCheck => 5,
        StageKind::Cache => 6,
    });
}

fn get_stage_kind(r: &mut Reader) -> Result<StageKind, DecodeError> {
    Ok(match r.u8()? {
        0 => StageKind::Input,
        1 => StageKind::ExeId,
        2 => StageKind::FieldId,
        3 => StageKind::Semantics,
        4 => StageKind::Concat,
        5 => StageKind::FormCheck,
        6 => StageKind::Cache,
        _ => return err("invalid StageKind tag"),
    })
}

fn put_severity(out: &mut Vec<u8>, s: Severity) {
    out.put_u8(match s {
        Severity::Info => 0,
        Severity::Warning => 1,
        Severity::Error => 2,
    });
}

fn get_severity(r: &mut Reader) -> Result<Severity, DecodeError> {
    Ok(match r.u8()? {
        0 => Severity::Info,
        1 => Severity::Warning,
        2 => Severity::Error,
        _ => return err("invalid Severity tag"),
    })
}

fn put_primitive(out: &mut Vec<u8>, p: Primitive) {
    out.put_u8(p.index() as u8);
}

fn get_primitive(r: &mut Reader) -> Result<Primitive, DecodeError> {
    match Primitive::from_index(r.u8()? as usize) {
        Some(p) => Ok(p),
        None => err("invalid Primitive index"),
    }
}

// ---- field sources ------------------------------------------------------

/// Encode one [`FieldSource`].
pub fn put_field_source(out: &mut Vec<u8>, s: &FieldSource) {
    match s {
        FieldSource::StringConstant { addr, value } => {
            out.put_u8(0);
            out.put_u64_le(*addr);
            put_string(out, value);
        }
        FieldSource::NumericConstant { value } => {
            out.put_u8(1);
            out.put_u64_le(*value);
        }
        FieldSource::LibCall { kind, callee, key } => {
            out.put_u8(2);
            put_source_kind(out, *kind);
            put_string(out, callee);
            put_opt_string(out, key.as_deref());
        }
        FieldSource::EntryParam { func, index } => {
            out.put_u8(3);
            put_string(out, func);
            out.put_u32_le(*index as u32);
        }
        FieldSource::Unresolved { reason } => {
            out.put_u8(4);
            put_string(out, reason);
        }
    }
}

/// Decode one [`FieldSource`]. Unresolved reasons are re-interned to the
/// engine's `&'static str` table via [`intern_unresolved_reason`].
pub fn get_field_source(r: &mut Reader) -> Result<FieldSource, DecodeError> {
    Ok(match r.u8()? {
        0 => FieldSource::StringConstant {
            addr: r.u64()?,
            value: r.string()?,
        },
        1 => FieldSource::NumericConstant { value: r.u64()? },
        2 => FieldSource::LibCall {
            kind: get_source_kind(r)?,
            callee: r.string()?,
            key: get_opt_string(r)?,
        },
        3 => FieldSource::EntryParam {
            func: r.string()?,
            index: r.u32()? as usize,
        },
        4 => FieldSource::Unresolved {
            reason: intern_unresolved_reason(&r.string()?),
        },
        _ => return err("invalid FieldSource tag"),
    })
}

// ---- IR -----------------------------------------------------------------

/// Encode one [`Varnode`] (shared with the `.flix` known-library codec).
pub fn put_varnode(out: &mut Vec<u8>, v: &Varnode) {
    put_address_space(out, v.space);
    out.put_u64_le(v.offset);
    out.put_u8(v.size);
}

/// Decode one [`Varnode`].
pub fn get_varnode(r: &mut Reader) -> Result<Varnode, DecodeError> {
    let space = get_address_space(r)?;
    let offset = r.u64()?;
    let size = r.u8()?;
    Ok(Varnode::new(space, offset, size))
}

/// Encode one [`PcodeOp`] (shared with the `.flix` known-library codec).
pub fn put_pcode_op(out: &mut Vec<u8>, op: &PcodeOp) {
    out.put_u64_le(op.addr);
    out.put_u8(op.opcode.tag());
    match &op.output {
        None => out.put_u8(0),
        Some(v) => {
            out.put_u8(1);
            put_varnode(out, v);
        }
    }
    out.put_u32_le(op.inputs.len() as u32);
    for v in &op.inputs {
        put_varnode(out, v);
    }
}

/// Decode one [`PcodeOp`].
pub fn get_pcode_op(r: &mut Reader) -> Result<PcodeOp, DecodeError> {
    let addr = r.u64()?;
    let Some(opcode) = Opcode::from_tag(r.u8()?) else {
        return err("invalid Opcode tag");
    };
    let output = if r.boolean()? {
        Some(get_varnode(r)?)
    } else {
        None
    };
    let n = r.seq_len()?;
    let mut inputs = Vec::with_capacity(n);
    for _ in 0..n {
        inputs.push(get_varnode(r)?);
    }
    Ok(PcodeOp {
        addr,
        opcode,
        output,
        inputs,
    })
}

// ---- MFT ----------------------------------------------------------------

fn put_mft_node(out: &mut Vec<u8>, n: &MftNode) {
    out.put_u64_le(n.id.0 as u64);
    match n.parent {
        None => out.put_u8(0),
        Some(p) => {
            out.put_u8(1);
            out.put_u64_le(p.0 as u64);
        }
    }
    out.put_u32_le(n.children.len() as u32);
    for c in &n.children {
        out.put_u64_le(c.0 as u64);
    }
    match &n.kind {
        MftNodeKind::Root { delivery } => {
            out.put_u8(0);
            put_string(out, delivery);
        }
        MftNodeKind::Concat { via } => {
            out.put_u8(1);
            put_string(out, via);
        }
        MftNodeKind::Op { label } => {
            out.put_u8(2);
            put_string(out, label);
        }
        MftNodeKind::Field(s) => {
            out.put_u8(3);
            put_field_source(out, s);
        }
        MftNodeKind::Annotation(a) => {
            out.put_u8(4);
            put_string(out, a);
        }
    }
    match &n.op {
        None => out.put_u8(0),
        Some(op) => {
            out.put_u8(1);
            put_pcode_op(out, op);
        }
    }
    out.put_u64_le(n.func);
}

fn get_mft_node(r: &mut Reader) -> Result<MftNode, DecodeError> {
    let id = MftNodeId(r.u64()? as usize);
    let parent = if r.boolean()? {
        Some(MftNodeId(r.u64()? as usize))
    } else {
        None
    };
    let n = r.seq_len()?;
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        children.push(MftNodeId(r.u64()? as usize));
    }
    let kind = match r.u8()? {
        0 => MftNodeKind::Root {
            delivery: r.string()?,
        },
        1 => MftNodeKind::Concat { via: r.string()? },
        2 => MftNodeKind::Op { label: r.string()? },
        3 => MftNodeKind::Field(get_field_source(r)?),
        4 => MftNodeKind::Annotation(r.string()?),
        _ => return err("invalid MftNodeKind tag"),
    };
    let op = if r.boolean()? {
        Some(get_pcode_op(r)?)
    } else {
        None
    };
    let func = r.u64()?;
    Ok(MftNode {
        id,
        parent,
        children,
        kind,
        op,
        func,
    })
}

/// Encode a whole [`Mft`].
pub fn put_mft(out: &mut Vec<u8>, mft: &Mft) {
    out.put_u32_le(mft.nodes().len() as u32);
    for n in mft.nodes() {
        put_mft_node(out, n);
    }
}

/// Decode a whole [`Mft`], validating the dense-id layout
/// [`Mft::from_nodes`] requires *and* the tree structure the traversal
/// code assumes.
///
/// `Mft` indexes nodes unchecked and recurses through `children`, so a
/// decoded entry must be proven well-formed here: every link in bounds,
/// every parent/child pair mutually consistent, and — because a parent
/// is always allocated before its children (the invariant of every MFT
/// construction path) — every child id strictly greater than its
/// parent's, which rules out cycles and unbounded recursion. The FNV
/// entry checksum is not cryptographic, so crafted or pathologically
/// corrupted bytes can reach this point; they must come back as a
/// [`DecodeError`], never a panic or stack overflow.
pub fn get_mft(r: &mut Reader) -> Result<Mft, DecodeError> {
    let n = r.seq_len()?;
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let node = get_mft_node(r)?;
        if node.id.0 != i {
            return err("MFT node ids are not dense");
        }
        nodes.push(node);
    }
    for (i, node) in nodes.iter().enumerate() {
        match node.parent {
            None if i != 0 => return err("non-root MFT node without a parent"),
            Some(_) if i == 0 => return err("MFT root has a parent"),
            Some(p) if p.0 >= i => return err("MFT parent id not below child id"),
            Some(p) if !nodes[p.0].children.contains(&node.id) => {
                return err("MFT parent does not list child")
            }
            _ => {}
        }
        for (pos, c) in node.children.iter().enumerate() {
            if c.0 >= n {
                return err("MFT child id out of bounds");
            }
            if c.0 <= i {
                return err("MFT child id not above parent id");
            }
            if nodes[c.0].parent != Some(node.id) {
                return err("MFT child does not back-reference parent");
            }
            if node.children[..pos].contains(c) {
                return err("MFT child listed twice");
            }
        }
    }
    Ok(Mft::from_nodes(nodes))
}

// ---- messages and slices ------------------------------------------------

fn put_code_slice(out: &mut Vec<u8>, s: &CodeSlice) {
    put_string(out, &s.text);
    put_field_source(out, &s.source);
    out.put_u64_le(s.leaf.0 as u64);
    out.put_u64_le(s.path_hash);
    put_opt_string(out, s.piece.as_deref());
}

fn get_code_slice(r: &mut Reader) -> Result<CodeSlice, DecodeError> {
    Ok(CodeSlice {
        text: r.string()?,
        source: get_field_source(r)?,
        leaf: MftNodeId(r.u64()? as usize),
        path_hash: r.u64()?,
        piece: get_opt_string(r)?,
    })
}

fn put_message(out: &mut Vec<u8>, m: &ReconstructedMessage) {
    put_string(out, &m.delivery);
    put_transport(out, m.transport);
    put_opt_string(out, m.endpoint.as_deref());
    put_format(out, m.format);
    out.put_u32_le(m.fields.len() as u32);
    for f in &m.fields {
        put_opt_string(out, f.key.as_deref());
        put_field_source(out, &f.origin);
        put_opt_string(out, f.semantic.as_deref());
    }
    put_opt_string(out, m.template.as_deref());
}

fn get_message(r: &mut Reader) -> Result<ReconstructedMessage, DecodeError> {
    let delivery = r.string()?;
    let transport = get_transport(r)?;
    let endpoint = get_opt_string(r)?;
    let format = get_format(r)?;
    let n = r.seq_len()?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        fields.push(MessageField {
            key: get_opt_string(r)?,
            origin: get_field_source(r)?,
            semantic: get_opt_string(r)?,
        });
    }
    let template = get_opt_string(r)?;
    Ok(ReconstructedMessage {
        delivery,
        transport,
        endpoint,
        format,
        fields,
        template,
    })
}

fn put_flaw(out: &mut Vec<u8>, f: &FormFlaw) {
    match f {
        FormFlaw::MissingPrimitives {
            phase,
            present,
            missing,
        } => {
            out.put_u8(0);
            put_phase(out, *phase);
            out.put_u32_le(present.len() as u32);
            for p in present {
                put_primitive(out, *p);
            }
            out.put_u32_le(missing.len() as u32);
            for p in missing {
                put_primitive(out, *p);
            }
        }
        FormFlaw::HardcodedDevSecret { key, value } => {
            out.put_u8(1);
            put_string(out, key);
            put_string(out, value);
        }
        FormFlaw::SecretFromReadableFile { key, config_key } => {
            out.put_u8(2);
            put_string(out, key);
            put_string(out, config_key);
        }
    }
}

fn get_flaw(r: &mut Reader) -> Result<FormFlaw, DecodeError> {
    Ok(match r.u8()? {
        0 => {
            let phase = get_phase(r)?;
            let n = r.seq_len()?;
            let mut present = Vec::with_capacity(n);
            for _ in 0..n {
                present.push(get_primitive(r)?);
            }
            let n = r.seq_len()?;
            let mut missing = Vec::with_capacity(n);
            for _ in 0..n {
                missing.push(get_primitive(r)?);
            }
            FormFlaw::MissingPrimitives {
                phase,
                present,
                missing,
            }
        }
        1 => FormFlaw::HardcodedDevSecret {
            key: r.string()?,
            value: r.string()?,
        },
        2 => FormFlaw::SecretFromReadableFile {
            key: r.string()?,
            config_key: r.string()?,
        },
        _ => return err("invalid FormFlaw tag"),
    })
}

/// Encode one [`MessageRecord`].
///
/// Public so unit-granular artifacts can persist a record as an opaque
/// blob and later splice the stored bytes verbatim into a
/// [`put_analysis`] stream without decoding.
pub fn put_record(out: &mut Vec<u8>, m: &MessageRecord) {
    put_string(out, &m.function);
    out.put_u64_le(m.callsite);
    put_mft(out, &m.mft);
    out.put_u32_le(m.slices.len() as u32);
    for s in &m.slices {
        put_code_slice(out, s);
    }
    out.put_u32_le(m.slice_semantics.len() as u32);
    for p in &m.slice_semantics {
        put_primitive(out, *p);
    }
    put_message(out, &m.message);
    out.put_u8(m.lan_discarded as u8);
    out.put_u8(m.is_response_echo as u8);
    out.put_u32_le(m.flaws.len() as u32);
    for f in &m.flaws {
        put_flaw(out, f);
    }
}

/// Decode one [`MessageRecord`].
pub fn get_record(r: &mut Reader) -> Result<MessageRecord, DecodeError> {
    let function = r.string()?;
    let callsite = r.u64()?;
    let mft = get_mft(r)?;
    let n = r.seq_len()?;
    let mut slices = Vec::with_capacity(n);
    for _ in 0..n {
        slices.push(get_code_slice(r)?);
    }
    let n = r.seq_len()?;
    let mut slice_semantics = Vec::with_capacity(n);
    for _ in 0..n {
        slice_semantics.push(get_primitive(r)?);
    }
    let message = get_message(r)?;
    let lan_discarded = r.boolean()?;
    let is_response_echo = r.boolean()?;
    let n = r.seq_len()?;
    let mut flaws = Vec::with_capacity(n);
    for _ in 0..n {
        flaws.push(get_flaw(r)?);
    }
    Ok(MessageRecord {
        function,
        callsite,
        mft,
        slices,
        slice_semantics,
        message,
        lan_discarded,
        is_response_echo,
        flaws,
    })
}

// ---- handlers, taint summaries, accounting ------------------------------

/// Encode one [`HandlerInfo`].
pub fn put_handler(out: &mut Vec<u8>, h: &HandlerInfo) {
    out.put_u64_le(h.handler_func);
    put_string(out, &h.handler_name);
    out.put_u64_le(h.recv_callsite);
    out.put_u64_le(h.send_callsite);
    out.put_u64_le(h.distance as u64);
    out.put_f64_le(h.score);
    out.put_u8(h.is_async as u8);
}

/// Decode one [`HandlerInfo`].
pub fn get_handler(r: &mut Reader) -> Result<HandlerInfo, DecodeError> {
    Ok(HandlerInfo {
        handler_func: r.u64()?,
        handler_name: r.string()?,
        recv_callsite: r.u64()?,
        send_callsite: r.u64()?,
        distance: r.u64()? as usize,
        score: r.f64()?,
        is_async: r.boolean()?,
    })
}

/// Encode one [`TaintSummary`].
pub fn put_taint_summary(out: &mut Vec<u8>, s: &TaintSummary) {
    out.put_u64_le(s.nodes as u64);
    out.put_u32_le(s.sources.len() as u32);
    for src in &s.sources {
        put_field_source(out, src);
    }
}

/// Decode one [`TaintSummary`].
pub fn get_taint_summary(r: &mut Reader) -> Result<TaintSummary, DecodeError> {
    let nodes = r.u64()? as usize;
    let n = r.seq_len()?;
    let mut sources = Vec::with_capacity(n);
    for _ in 0..n {
        sources.push(get_field_source(r)?);
    }
    Ok(TaintSummary { nodes, sources })
}

fn put_timings(out: &mut Vec<u8>, t: &StageTimings) {
    for d in [
        t.exeid,
        t.field_identification,
        t.semantics,
        t.concatenation,
        t.form_check,
    ] {
        out.put_u64_le(d.as_nanos() as u64);
    }
}

fn get_timings(r: &mut Reader) -> Result<StageTimings, DecodeError> {
    Ok(StageTimings {
        exeid: Duration::from_nanos(r.u64()?),
        field_identification: Duration::from_nanos(r.u64()?),
        semantics: Duration::from_nanos(r.u64()?),
        concatenation: Duration::from_nanos(r.u64()?),
        form_check: Duration::from_nanos(r.u64()?),
    })
}

fn put_counters(out: &mut Vec<u8>, c: &StageCounters) {
    for v in [
        c.executables_tried,
        c.parse_failures,
        c.lift_failures,
        c.taint_queries,
        c.taint_cache_hits,
        c.slices_rendered,
        c.fields_matched,
        c.cache_hits,
        c.cache_misses,
        c.cache_bytes_read,
        c.cache_bytes_written,
        c.lib_fns_matched,
        c.lib_traversals_skipped,
        c.lib_summary_applies,
        c.slices_batched,
        c.prefilter_skips,
        c.class_cache_hits,
    ] {
        out.put_u64_le(v);
    }
}

fn get_counters(r: &mut Reader) -> Result<StageCounters, DecodeError> {
    Ok(StageCounters {
        executables_tried: r.u64()?,
        parse_failures: r.u64()?,
        lift_failures: r.u64()?,
        taint_queries: r.u64()?,
        taint_cache_hits: r.u64()?,
        slices_rendered: r.u64()?,
        fields_matched: r.u64()?,
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        cache_bytes_read: r.u64()?,
        cache_bytes_written: r.u64()?,
        lib_fns_matched: r.u64()?,
        lib_traversals_skipped: r.u64()?,
        lib_summary_applies: r.u64()?,
        slices_batched: r.u64()?,
        prefilter_skips: r.u64()?,
        class_cache_hits: r.u64()?,
    })
}

/// Encode one [`Diagnostic`].
pub fn put_diagnostic(out: &mut Vec<u8>, d: &Diagnostic) {
    put_stage_kind(out, d.stage);
    put_severity(out, d.severity);
    put_opt_string(out, d.subject.as_deref());
    put_string(out, &d.detail);
}

/// Decode one [`Diagnostic`].
pub fn get_diagnostic(r: &mut Reader) -> Result<Diagnostic, DecodeError> {
    let stage = get_stage_kind(r)?;
    let severity = get_severity(r)?;
    let subject = get_opt_string(r)?;
    let detail = r.string()?;
    Ok(match subject {
        Some(s) => Diagnostic::new(stage, severity, s, detail),
        None => Diagnostic::bare(stage, severity, detail),
    })
}

/// Encode a full analysis stream from already-encoded message records.
///
/// Byte-for-byte equivalent to [`put_analysis`] on an analysis holding
/// the decoded forms of `records` — the unit-granular incremental driver
/// splices each clean unit's *stored* record bytes straight into the
/// output without ever decoding them, which is what makes a warm
/// re-analysis cheap.
pub fn put_analysis_spliced(
    out: &mut Vec<u8>,
    executable: Option<&str>,
    handlers: &[HandlerInfo],
    records: &[&[u8]],
    timings: &StageTimings,
    counters: &StageCounters,
    diagnostics: &[Diagnostic],
) {
    put_opt_string(out, executable);
    out.put_u32_le(handlers.len() as u32);
    for h in handlers {
        put_handler(out, h);
    }
    out.put_u32_le(records.len() as u32);
    for r in records {
        out.put_slice(r);
    }
    put_timings(out, timings);
    put_counters(out, counters);
    out.put_u32_le(diagnostics.len() as u32);
    for d in diagnostics {
        put_diagnostic(out, d);
    }
}

// ---- buffered events ----------------------------------------------------

fn put_counter_tag(out: &mut Vec<u8>, c: Counter) {
    // Local exhaustive tags: a new Counter variant fails this match.
    out.put_u8(match c {
        Counter::ExecutablesTried => 0,
        Counter::ParseFailures => 1,
        Counter::LiftFailures => 2,
        Counter::TaintQueries => 3,
        Counter::TaintCacheHits => 4,
        Counter::SlicesRendered => 5,
        Counter::FieldsMatched => 6,
        Counter::CacheHits => 7,
        Counter::CacheMisses => 8,
        Counter::CacheBytesRead => 9,
        Counter::CacheBytesWritten => 10,
        Counter::LibFnsMatched => 11,
        Counter::LibTraversalsSkipped => 12,
        Counter::LibSummaryApplies => 13,
        Counter::SlicesBatched => 14,
        Counter::PrefilterSkips => 15,
        Counter::ClassCacheHits => 16,
    });
}

fn get_counter_tag(r: &mut Reader) -> Result<Counter, DecodeError> {
    Ok(match r.u8()? {
        0 => Counter::ExecutablesTried,
        1 => Counter::ParseFailures,
        2 => Counter::LiftFailures,
        3 => Counter::TaintQueries,
        4 => Counter::TaintCacheHits,
        5 => Counter::SlicesRendered,
        6 => Counter::FieldsMatched,
        7 => Counter::CacheHits,
        8 => Counter::CacheMisses,
        9 => Counter::CacheBytesRead,
        10 => Counter::CacheBytesWritten,
        11 => Counter::LibFnsMatched,
        12 => Counter::LibTraversalsSkipped,
        13 => Counter::LibSummaryApplies,
        14 => Counter::SlicesBatched,
        15 => Counter::PrefilterSkips,
        16 => Counter::ClassCacheHits,
        _ => return err("invalid Counter tag"),
    })
}

/// Encode one buffered pipeline [`Event`].
pub fn put_event(out: &mut Vec<u8>, e: &Event) {
    match e {
        Event::StageStarted(stage) => {
            out.put_u8(0);
            put_stage_kind(out, *stage);
        }
        Event::StageFinished(stage, elapsed) => {
            out.put_u8(1);
            put_stage_kind(out, *stage);
            out.put_u64_le(elapsed.as_nanos() as u64);
        }
        Event::Count(counter, n) => {
            out.put_u8(2);
            put_counter_tag(out, *counter);
            out.put_u64_le(*n);
        }
        Event::Diagnostic(d) => {
            out.put_u8(3);
            put_diagnostic(out, d);
        }
    }
}

/// Decode one buffered pipeline [`Event`].
pub fn get_event(r: &mut Reader) -> Result<Event, DecodeError> {
    Ok(match r.u8()? {
        0 => Event::StageStarted(get_stage_kind(r)?),
        1 => Event::StageFinished(get_stage_kind(r)?, Duration::from_nanos(r.u64()?)),
        2 => Event::Count(get_counter_tag(r)?, r.u64()?),
        3 => Event::Diagnostic(get_diagnostic(r)?),
        _ => return err("invalid Event tag"),
    })
}

/// Encode a [`StageEvents`] buffer (events in order plus elapsed time).
pub fn put_stage_events(out: &mut Vec<u8>, ev: &StageEvents) {
    out.put_u32_le(ev.events.len() as u32);
    for e in &ev.events {
        put_event(out, e);
    }
    out.put_u64_le(ev.elapsed.as_nanos() as u64);
}

/// Decode a [`StageEvents`] buffer.
pub fn get_stage_events(r: &mut Reader) -> Result<StageEvents, DecodeError> {
    let n = r.seq_len()?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(get_event(r)?);
    }
    let elapsed = Duration::from_nanos(r.u64()?);
    Ok(StageEvents { events, elapsed })
}

/// Encode the four per-stage buffers of one message unit.
pub fn put_unit_events(out: &mut Vec<u8>, ev: &UnitEvents) {
    put_stage_events(out, &ev.field_id);
    put_stage_events(out, &ev.semantics);
    put_stage_events(out, &ev.concat);
    put_stage_events(out, &ev.form_check);
}

/// Decode the four per-stage buffers of one message unit.
pub fn get_unit_events(r: &mut Reader) -> Result<UnitEvents, DecodeError> {
    Ok(UnitEvents {
        field_id: get_stage_events(r)?,
        semantics: get_stage_events(r)?,
        concat: get_stage_events(r)?,
        form_check: get_stage_events(r)?,
    })
}

// ---- full analysis ------------------------------------------------------

/// Encode a complete [`FirmwareAnalysis`].
pub fn put_analysis(out: &mut Vec<u8>, a: &FirmwareAnalysis) {
    put_opt_string(out, a.executable.as_deref());
    out.put_u32_le(a.handlers.len() as u32);
    for h in &a.handlers {
        put_handler(out, h);
    }
    out.put_u32_le(a.messages.len() as u32);
    for m in &a.messages {
        put_record(out, m);
    }
    put_timings(out, &a.timings);
    put_counters(out, &a.counters);
    out.put_u32_le(a.diagnostics.len() as u32);
    for d in &a.diagnostics {
        put_diagnostic(out, d);
    }
}

/// Decode a complete [`FirmwareAnalysis`].
pub fn get_analysis(r: &mut Reader) -> Result<FirmwareAnalysis, DecodeError> {
    let executable = get_opt_string(r)?;
    let n = r.seq_len()?;
    let mut handlers = Vec::with_capacity(n);
    for _ in 0..n {
        handlers.push(get_handler(r)?);
    }
    let n = r.seq_len()?;
    let mut messages = Vec::with_capacity(n);
    for _ in 0..n {
        messages.push(get_record(r)?);
    }
    let timings = get_timings(r)?;
    let counters = get_counters(r)?;
    let n = r.seq_len()?;
    let mut diagnostics = Vec::with_capacity(n);
    for _ in 0..n {
        diagnostics.push(get_diagnostic(r)?);
    }
    Ok(FirmwareAnalysis {
        executable,
        handlers,
        messages,
        timings,
        counters,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sources() -> Vec<FieldSource> {
        vec![
            FieldSource::StringConstant {
                addr: 0x4000,
                value: "\"mac\":".to_string(),
            },
            FieldSource::NumericConstant { value: 42 },
            FieldSource::LibCall {
                kind: SourceKind::Nvram,
                callee: "nvram_get".to_string(),
                key: Some("sn".to_string()),
            },
            FieldSource::LibCall {
                kind: SourceKind::Time,
                callee: "time".to_string(),
                key: None,
            },
            FieldSource::EntryParam {
                func: "on_cmd".to_string(),
                index: 1,
            },
            FieldSource::Unresolved {
                reason: intern_unresolved_reason("budget exceeded"),
            },
        ]
    }

    #[test]
    fn field_sources_round_trip() {
        for src in sample_sources() {
            let mut out = Vec::new();
            put_field_source(&mut out, &src);
            let mut r = Reader::new(&out);
            assert_eq!(get_field_source(&mut r).unwrap(), src);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn handlers_round_trip_including_float_score() {
        let h = HandlerInfo {
            handler_func: 0x1000,
            handler_name: "handle_cmd".to_string(),
            recv_callsite: 0x1010,
            send_callsite: 0x2040,
            distance: 3,
            score: 0.625,
            is_async: true,
        };
        let mut out = Vec::new();
        put_handler(&mut out, &h);
        let got = get_handler(&mut Reader::new(&out)).unwrap();
        assert_eq!(got.handler_name, h.handler_name);
        assert_eq!(got.score.to_bits(), h.score.to_bits());
        assert!(got.is_async);
    }

    #[test]
    fn taint_summaries_round_trip() {
        let s = TaintSummary {
            nodes: 17,
            sources: sample_sources(),
        };
        let mut out = Vec::new();
        put_taint_summary(&mut out, &s);
        assert_eq!(get_taint_summary(&mut Reader::new(&out)).unwrap(), s);
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let s = TaintSummary {
            nodes: 3,
            sources: sample_sources(),
        };
        let mut out = Vec::new();
        put_taint_summary(&mut out, &s);
        for cut in 0..out.len() {
            // Every prefix must fail cleanly (no panic, no bogus value
            // that consumes the full buffer).
            let mut r = Reader::new(&out[..cut]);
            assert!(
                get_taint_summary(&mut r).is_err() || r.remaining() == 0,
                "prefix of {cut} bytes neither errored nor consumed cleanly"
            );
        }
    }

    #[test]
    fn unit_events_round_trip() {
        let mut ev = UnitEvents::default();
        ev.field_id
            .events
            .push(Event::StageStarted(StageKind::FieldId));
        ev.field_id.count(Counter::TaintQueries, 3);
        ev.field_id.count(Counter::SlicesRendered, 1);
        ev.field_id.events.push(Event::StageFinished(
            StageKind::FieldId,
            Duration::from_nanos(1234),
        ));
        ev.field_id.elapsed = Duration::from_nanos(1234);
        ev.semantics.diagnose(Diagnostic {
            stage: StageKind::Semantics,
            severity: Severity::Warning,
            subject: Some("d1".into()),
            detail: "unresolved".into(),
        });
        ev.form_check.count(Counter::FieldsMatched, 2);
        let mut out = Vec::new();
        put_unit_events(&mut out, &ev);
        let got = get_unit_events(&mut Reader::new(&out)).unwrap();
        assert_eq!(got.field_id.events, ev.field_id.events);
        assert_eq!(got.field_id.elapsed, ev.field_id.elapsed);
        assert_eq!(got.semantics.events, ev.semantics.events);
        assert_eq!(got.concat.events, ev.concat.events);
        assert_eq!(got.form_check.events, ev.form_check.events);
    }

    #[test]
    fn every_counter_tag_round_trips() {
        for c in [
            Counter::ExecutablesTried,
            Counter::ParseFailures,
            Counter::LiftFailures,
            Counter::TaintQueries,
            Counter::TaintCacheHits,
            Counter::SlicesRendered,
            Counter::FieldsMatched,
            Counter::CacheHits,
            Counter::CacheMisses,
            Counter::CacheBytesRead,
            Counter::CacheBytesWritten,
            Counter::LibFnsMatched,
            Counter::LibTraversalsSkipped,
            Counter::LibSummaryApplies,
            Counter::SlicesBatched,
            Counter::PrefilterSkips,
            Counter::ClassCacheHits,
        ] {
            let mut out = Vec::new();
            put_event(&mut out, &Event::Count(c, 42));
            assert_eq!(
                get_event(&mut Reader::new(&out)).unwrap(),
                Event::Count(c, 42)
            );
        }
    }

    #[test]
    fn truncated_unit_events_error_instead_of_panicking() {
        let mut ev = UnitEvents::default();
        ev.field_id.count(Counter::TaintQueries, 1);
        ev.semantics.diagnose(Diagnostic {
            stage: StageKind::Semantics,
            severity: Severity::Info,
            subject: None,
            detail: "m".into(),
        });
        let mut out = Vec::new();
        put_unit_events(&mut out, &ev);
        for cut in 0..out.len() {
            assert!(
                get_unit_events(&mut Reader::new(&out[..cut])).is_err(),
                "prefix of {cut} bytes decoded without error"
            );
        }
    }

    #[test]
    fn invalid_event_and_counter_tags_are_rejected() {
        let mut out = Vec::new();
        out.put_u8(9); // no such Event tag
        assert!(get_event(&mut Reader::new(&out)).is_err());
        let mut out = Vec::new();
        out.put_u8(2); // Count
        out.put_u8(200); // no such Counter tag
        out.put_u64_le(1);
        assert!(get_event(&mut Reader::new(&out)).is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // A u32::MAX vector length must not attempt a giant allocation.
        let mut out = Vec::new();
        out.put_u64_le(1); // nodes
        out.put_u32_le(u32::MAX); // sources length
        assert!(get_taint_summary(&mut Reader::new(&out)).is_err());
    }

    fn field_node(id: usize, parent: usize) -> MftNode {
        MftNode {
            id: MftNodeId(id),
            parent: Some(MftNodeId(parent)),
            children: Vec::new(),
            kind: MftNodeKind::Field(FieldSource::NumericConstant { value: id as u64 }),
            op: None,
            func: 0,
        }
    }

    fn encode_mft_nodes(nodes: &[MftNode]) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_u32_le(nodes.len() as u32);
        for n in nodes {
            put_mft_node(&mut out, n);
        }
        out
    }

    fn root_with_children(children: &[usize]) -> MftNode {
        MftNode {
            id: MftNodeId(0),
            parent: None,
            children: children.iter().map(|&c| MftNodeId(c)).collect(),
            kind: MftNodeKind::Root {
                delivery: "SSL_write".to_string(),
            },
            op: None,
            func: 0,
        }
    }

    #[test]
    fn well_formed_mft_decodes() {
        let nodes = vec![
            root_with_children(&[1, 2]),
            field_node(1, 0),
            field_node(2, 0),
        ];
        let mft = get_mft(&mut Reader::new(&encode_mft_nodes(&nodes))).unwrap();
        assert_eq!(mft.len(), 3);
        assert_eq!(mft.leaves().len(), 2);
    }

    #[test]
    fn mft_with_out_of_bounds_child_is_rejected() {
        // Root points at child 7 but only 2 nodes exist: Mft::node would
        // panic on the unchecked index, so decoding must error instead.
        let nodes = vec![root_with_children(&[1, 7]), field_node(1, 0)];
        assert!(get_mft(&mut Reader::new(&encode_mft_nodes(&nodes))).is_err());
    }

    #[test]
    fn mft_with_cycle_is_rejected() {
        // Node 1 lists itself as a child: dfs_leaves would recurse forever.
        let mut cyclic = field_node(1, 0);
        cyclic.children.push(MftNodeId(1));
        let nodes = vec![root_with_children(&[1]), cyclic];
        assert!(get_mft(&mut Reader::new(&encode_mft_nodes(&nodes))).is_err());

        // Node 2 lists its ancestor (the root) as a child.
        let mut back = field_node(2, 1);
        back.children.push(MftNodeId(0));
        let mut mid = field_node(1, 0);
        mid.children.push(MftNodeId(2));
        let nodes = vec![root_with_children(&[1]), mid, back];
        assert!(get_mft(&mut Reader::new(&encode_mft_nodes(&nodes))).is_err());
    }

    #[test]
    fn mft_with_inconsistent_links_is_rejected() {
        // Child 2's parent back-reference says node 1, but the root
        // claims it as its own child.
        let nodes = vec![
            root_with_children(&[1, 2]),
            field_node(1, 0),
            field_node(2, 1),
        ];
        assert!(get_mft(&mut Reader::new(&encode_mft_nodes(&nodes))).is_err());

        // A node listed as a child twice would be traversed twice.
        let nodes = vec![root_with_children(&[1, 1]), field_node(1, 0)];
        assert!(get_mft(&mut Reader::new(&encode_mft_nodes(&nodes))).is_err());

        // A second root (no parent) unreachable from node 0.
        let mut orphan = field_node(1, 0);
        orphan.parent = None;
        let nodes = vec![root_with_children(&[]), orphan];
        assert!(get_mft(&mut Reader::new(&encode_mft_nodes(&nodes))).is_err());
    }

    #[test]
    fn bad_enum_tags_are_rejected() {
        let mut r = Reader::new(&[99]);
        assert!(get_field_source(&mut r).is_err());
        let mut r = Reader::new(&[200]);
        assert!(get_source_kind(&mut r).is_err());
        let mut r = Reader::new(&[7]);
        assert!(get_stage_kind(&mut r).is_err());
        let mut r = Reader::new(&[2]); // boolean must be 0 or 1
        assert!(r.boolean().is_err());
    }
}
