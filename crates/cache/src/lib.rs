//! # firmres-cache
//!
//! Content-addressed persistence for FIRMRES analyses, and the
//! incremental corpus driver built on it.
//!
//! The FIRMRES pipeline is deterministic: the same firmware bytes under
//! the same pipeline, configuration and (optional) semantics model
//! always produce the same [`FirmwareAnalysis`]. This crate exploits
//! that to make corpus re-analysis (the paper's 22-device evaluation
//! sweep, CI runs, iterative triage) incremental:
//!
//! * [`CacheKey`] — the content-addressed identity of one analysis:
//!   an FNV-128 hash of the packed firmware image, the
//!   [`PIPELINE_VERSION`], a fingerprint of every configuration knob
//!   that can change output, and a fingerprint of the semantics
//!   classifier (or the absence of one). Any of the four changing
//!   changes the key, so stale results are structurally unreachable.
//! * [`AnalysisCache`] — a one-file-per-key on-disk store holding the
//!   completed analysis plus per-stage intermediate artifacts (the
//!   ExeId handler set, the FieldId taint summaries) in independently
//!   decodable sections, sealed by a checksum.
//! * [`analyze_corpus_incremental`] — the drop-in corpus driver: hits
//!   skip the pipeline entirely, misses run on the shared worker pool
//!   and populate the store. Damaged entries are diagnosed
//!   ([`firmres::StageKind::Cache`]) and re-analyzed, never fatal.
//!   Warm runs return byte-identical results to the cold run that
//!   filled the store.
//!
//! # Examples
//!
//! ```
//! use firmres::{AnalysisConfig, NullObserver};
//! use firmres_cache::{analyze_corpus_incremental, AnalysisCache};
//! use firmres_corpus::generate_device;
//!
//! let dev = generate_device(10, 7);
//! let dir = std::env::temp_dir().join(format!("frc-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let cache = AnalysisCache::new(&dir);
//! let config = AnalysisConfig::default();
//!
//! let cold = analyze_corpus_incremental(
//!     &[&dev.firmware], None, &config, 1, &cache, &mut NullObserver);
//! assert_eq!(cold.stats.misses, 1);
//!
//! let warm = analyze_corpus_incremental(
//!     &[&dev.firmware], None, &config, 1, &cache, &mut NullObserver);
//! assert_eq!(warm.stats.hits, 1);
//! assert_eq!(warm.analyses[0].executable, cold.analyses[0].executable);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! [`FirmwareAnalysis`]: firmres::FirmwareAnalysis
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod driver;
mod key;
mod policy;
mod store;
pub mod unit;

pub use driver::{analyze_corpus_incremental, CacheStats, CorpusOutcome};
pub use key::{
    classifier_fingerprint, config_fingerprint, CacheKey, NO_CLASSIFIER, PIPELINE_VERSION,
};
pub use policy::{parse_byte_size, GcOutcome, ShardOccupancy, StorePolicy, MAX_SHARDS};
pub use store::{
    taint_summaries, AnalysisCache, CacheError, CachedEntry, LibUsage, StoreStats, SCHEMA_VERSION,
};
pub use unit::{analyze_image_units_incremental, UnitFunnelOutcome, UnitStats};
