//! Cache keying: content hash of the firmware image plus pipeline,
//! configuration and classifier fingerprints.
//!
//! A cached analysis is only valid for the exact bytes it was computed
//! from, under the exact pipeline, configuration and (optional)
//! semantics model that computed it. [`CacheKey`] captures all four,
//! and the on-disk file name is derived from the full key — so a
//! pipeline-version bump, a configuration change or swapping the
//! classifier simply makes the store look for a file that is not there
//! (a miss), never for a file holding stale results.

use firmres::AnalysisConfig;
use firmres_firmware::{content_hash_packed, content_hash_packed_wide, FirmwareImage};
use firmres_semantics::Classifier;

/// Version of the analysis pipeline whose results the cache stores.
///
/// Bump this whenever any pipeline stage, the on-disk entry schema, or a
/// codec in this crate changes observable output: every existing cache
/// entry then misses and is recomputed. The value is baked into both the
/// cache key (and thus the file name) and the entry header.
///
/// History: 2 — executable pinpointing ranks all qualifying candidates
/// by score instead of stopping at the first hit, changing counters and
/// diagnostics on multi-candidate images. (The message-unit execution
/// model shipped alongside did *not* require a bump: output is
/// byte-identical at any job count.) 3 — the cached counter record grew
/// the three known-library counters, changing the entry encoding.
/// 4 — the counter record grew the three semantics batching counters,
/// and argmax tie-breaking in the classifier became first-max-wins
/// under a total order (previously position-dependent on NaN scores),
/// which can relabel slices whose class scores tie exactly.
pub const PIPELINE_VERSION: u32 = 4;

/// The [`CacheKey::classifier`] fingerprint of an analysis run with no
/// trained semantics model.
///
/// [`classifier_fingerprint`] never returns this value for a real model,
/// so a model-less run and a model-driven run can never share an entry.
pub const NO_CLASSIFIER: u64 = 0;

/// The full content-addressed identity of one analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-128 of the packed firmware image bytes.
    pub image: u128,
    /// [`PIPELINE_VERSION`] at key-computation time.
    pub pipeline: u32,
    /// Fingerprint of the [`AnalysisConfig`] knobs that affect output.
    pub config: u64,
    /// Fingerprint of the semantics classifier ([`NO_CLASSIFIER`] when
    /// the analysis ran without one).
    pub classifier: u64,
}

impl CacheKey {
    /// Key for analyzing `fw` with `classifier` under `config` with the
    /// current pipeline.
    pub fn compute(
        fw: &FirmwareImage,
        classifier: Option<&Classifier>,
        config: &AnalysisConfig,
    ) -> CacheKey {
        CacheKey::of_packed(&fw.pack(), classifier, config)
    }

    /// Key for the packed container bytes directly.
    ///
    /// Useful when the caller already holds the packed form, and the only
    /// way to key bytes that do not unpack (the byte-flip invalidation
    /// tests rely on this).
    pub fn of_packed(
        packed: &[u8],
        classifier: Option<&Classifier>,
        config: &AnalysisConfig,
    ) -> CacheKey {
        CacheKey {
            image: content_hash_packed_wide(packed),
            pipeline: PIPELINE_VERSION,
            config: config_fingerprint(config),
            classifier: classifier_fingerprint(classifier),
        }
    }

    /// Key for an image known only by its content hash (the FNV-128 of
    /// the packed bytes, [`content_hash_packed_wide`]).
    ///
    /// This is the hash-addressed lookup path: a client that already
    /// knows an image's hash can ask a shared store (or the analysis
    /// service) for the entry without shipping the image bytes at all.
    /// The key is identical to what [`CacheKey::of_packed`] computes for
    /// the bytes hashing to `image`, so hits are exactly the entries a
    /// by-bytes submission of the same image would find.
    pub fn of_hash(
        image: u128,
        classifier: Option<&Classifier>,
        config: &AnalysisConfig,
    ) -> CacheKey {
        CacheKey {
            image,
            pipeline: PIPELINE_VERSION,
            config: config_fingerprint(config),
            classifier: classifier_fingerprint(classifier),
        }
    }

    /// The store file name this key maps to (hex of all four parts).
    pub fn file_name(&self) -> String {
        format!(
            "{:032x}-{:08x}-{:016x}-{:016x}.frac",
            self.image, self.pipeline, self.config, self.classifier
        )
    }
}

/// FNV-64 fingerprint of every configuration knob that can change
/// analysis output.
///
/// Covers [`ExeIdConfig::score_threshold`] (via its bit pattern, so
/// `0.3` and `0.30000001` fingerprint differently) and the four
/// output-bearing [`TaintConfig`] fields. A new knob must be folded in
/// here — missing one would let two differently-configured runs share
/// entries.
///
/// [`TaintConfig::cold_path`] is deliberately **excluded**: it selects
/// between the reference and the optimized cold-path data structures,
/// which produce byte-identical output by construction (the
/// `coldpath_bench` gate asserts exactly that), so entries computed
/// under either mode are interchangeable and must share cache keys.
///
/// The [`TaintConfig::libid`] toggle is likewise excluded — summary
/// replay is report-byte-identical to full traversal — but the
/// *effective index* is fingerprinted: an entry computed with a loaded
/// known-library index records that index's skip counters, so swapping
/// or removing the index must miss. An analysis with libid off, or on
/// without an index, consults no index at all; both fold
/// [`LibIndex::EMPTY_FINGERPRINT`] and therefore share entries.
///
/// [`ExeIdConfig::score_threshold`]: firmres::ExeIdConfig
/// [`TaintConfig`]: firmres_dataflow::TaintConfig
/// [`TaintConfig::cold_path`]: firmres_dataflow::TaintConfig
/// [`TaintConfig::libid`]: firmres_dataflow::TaintConfig
/// [`LibIndex::EMPTY_FINGERPRINT`]: firmres_dataflow::LibIndex::EMPTY_FINGERPRINT
pub fn config_fingerprint(config: &AnalysisConfig) -> u64 {
    let mut bytes = Vec::with_capacity(42);
    bytes.extend_from_slice(&config.exeid.score_threshold.to_bits().to_le_bytes());
    bytes.extend_from_slice(&(config.taint.max_depth as u64).to_le_bytes());
    bytes.extend_from_slice(&(config.taint.max_nodes as u64).to_le_bytes());
    bytes.push(config.taint.overtaint as u8);
    bytes.push(config.taint.decompose_buffers as u8);
    let lib_fp = match (config.taint.libid, config.taint.lib_index.as_ref()) {
        (firmres_dataflow::LibId::On, Some(index)) => index.fingerprint(),
        _ => firmres_dataflow::LibIndex::EMPTY_FINGERPRINT,
    };
    bytes.extend_from_slice(&lib_fp.to_le_bytes());
    content_hash_packed(&bytes)
}

/// FNV-64 fingerprint of the semantics model the analysis ran with.
///
/// The Semantics stage's output (and the "no trained classifier"
/// diagnostic) depends on which model — if any — was supplied, so the
/// model is part of the analysis identity. `None` maps to the reserved
/// [`NO_CLASSIFIER`] marker; a trained model is hashed over its
/// serialized form ([`Classifier::to_bytes`], which covers every weight
/// bit), nudged off the marker value in the astronomically unlikely case
/// the hash lands on it.
pub fn classifier_fingerprint(classifier: Option<&Classifier>) -> u64 {
    match classifier {
        None => NO_CLASSIFIER,
        Some(model) => {
            let h = content_hash_packed(&model.to_bytes());
            if h == NO_CLASSIFIER {
                1
            } else {
                h
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_semantics::{Primitive, TrainConfig};

    #[test]
    fn config_fingerprint_sees_every_knob() {
        let base = AnalysisConfig::default();
        let f0 = config_fingerprint(&base);
        assert_eq!(f0, config_fingerprint(&AnalysisConfig::default()));

        let mut c = AnalysisConfig::default();
        c.exeid.score_threshold = 0.5;
        assert_ne!(f0, config_fingerprint(&c));

        let mut c = AnalysisConfig::default();
        c.taint.max_depth += 1;
        assert_ne!(f0, config_fingerprint(&c));

        let mut c = AnalysisConfig::default();
        c.taint.max_nodes += 1;
        assert_ne!(f0, config_fingerprint(&c));

        let mut c = AnalysisConfig::default();
        c.taint.overtaint = !c.taint.overtaint;
        assert_ne!(f0, config_fingerprint(&c));

        let mut c = AnalysisConfig::default();
        c.taint.decompose_buffers = !c.taint.decompose_buffers;
        assert_ne!(f0, config_fingerprint(&c));
    }

    #[test]
    fn libid_fingerprint_distinguishes_index_but_not_bare_toggle() {
        use firmres_dataflow::{LibFunc, LibFuncScripts, LibId, LibIndex};
        use std::sync::Arc;

        let f0 = config_fingerprint(&AnalysisConfig::default());

        // Off and On-without-an-index both consult nothing: same keys.
        let mut on_bare = AnalysisConfig::default();
        on_bare.taint.libid = LibId::On;
        assert_eq!(f0, config_fingerprint(&on_bare), "bare toggle is free");

        let index = |lib: &str| {
            LibIndex::new(
                vec![(
                    7u128,
                    LibFunc {
                        lib: lib.to_string(),
                        version: "1.0".to_string(),
                        func: "f".to_string(),
                        entry: 0x40,
                        scripts: LibFuncScripts::default(),
                    },
                )],
                0x1000,
            )
        };

        // A loaded index changes the fingerprint; a *different* index
        // changes it again (swap forces a miss).
        let mut with_a = AnalysisConfig::default();
        with_a.taint.libid = LibId::On;
        with_a.taint.lib_index = Some(Arc::new(index("liba")));
        let fa = config_fingerprint(&with_a);
        assert_ne!(f0, fa, "a loaded index must not share bare entries");

        let mut with_b = AnalysisConfig::default();
        with_b.taint.libid = LibId::On;
        with_b.taint.lib_index = Some(Arc::new(index("libb")));
        assert_ne!(fa, config_fingerprint(&with_b), "index swap misses");

        // Same index content → same fingerprint (entries are reusable).
        let mut with_a2 = AnalysisConfig::default();
        with_a2.taint.libid = LibId::On;
        with_a2.taint.lib_index = Some(Arc::new(index("liba")));
        assert_eq!(fa, config_fingerprint(&with_a2));

        // An index loaded but toggled Off is never consulted: bare keys.
        let mut off_loaded = AnalysisConfig::default();
        off_loaded.taint.lib_index = Some(Arc::new(index("liba")));
        assert_eq!(f0, config_fingerprint(&off_loaded));
    }

    #[test]
    fn cold_path_mode_shares_cache_keys() {
        // The cold-path toggle is output-invariant (both modes produce
        // byte-identical reports), so it must NOT enter the fingerprint:
        // entries written under either mode are interchangeable.
        let mut c = AnalysisConfig::default();
        c.taint.cold_path = firmres_ir::ColdPath::Reference;
        assert_eq!(
            config_fingerprint(&AnalysisConfig::default()),
            config_fingerprint(&c)
        );
    }

    #[test]
    fn file_name_is_stable_and_key_dependent() {
        let config = AnalysisConfig::default();
        let a = CacheKey::of_packed(b"image-a", None, &config);
        let b = CacheKey::of_packed(b"image-b", None, &config);
        assert_eq!(a, CacheKey::of_packed(b"image-a", None, &config));
        assert_ne!(a.file_name(), b.file_name());
        assert!(a.file_name().ends_with(".frac"));
    }

    #[test]
    fn hash_addressed_key_equals_by_bytes_key() {
        let config = AnalysisConfig::default();
        let by_bytes = CacheKey::of_packed(b"image-a", None, &config);
        let by_hash = CacheKey::of_hash(by_bytes.image, None, &config);
        assert_eq!(by_bytes, by_hash, "same entry whichever way it is keyed");
        assert_ne!(
            by_hash,
            CacheKey::of_hash(by_bytes.image ^ 1, None, &config)
        );
    }

    fn trained(seed: u64) -> Classifier {
        let data = vec![
            ("mac address".to_string(), Primitive::DevIdentifier),
            ("password login".to_string(), Primitive::UserCred),
        ];
        Classifier::train(
            &data,
            &TrainConfig {
                epochs: 3,
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn classifier_presence_and_identity_change_the_key() {
        let config = AnalysisConfig::default();
        let bare = CacheKey::of_packed(b"image", None, &config);
        assert_eq!(bare.classifier, NO_CLASSIFIER);

        let m1 = trained(1);
        let with_model = CacheKey::of_packed(b"image", Some(&m1), &config);
        assert_ne!(
            bare, with_model,
            "a model-less run must not share the model run's entry"
        );
        assert_ne!(bare.file_name(), with_model.file_name());

        // Same model → same key; a differently-trained model → different key.
        assert_eq!(
            with_model,
            CacheKey::of_packed(b"image", Some(&m1), &config)
        );
        let m2 = trained(2);
        assert_ne!(
            with_model,
            CacheKey::of_packed(b"image", Some(&m2), &config)
        );
    }
}
