//! Cache keying: content hash of the firmware image plus pipeline and
//! configuration fingerprints.
//!
//! A cached analysis is only valid for the exact bytes it was computed
//! from, under the exact pipeline and configuration that computed it.
//! [`CacheKey`] captures all three, and the on-disk file name is derived
//! from the full key — so a pipeline-version bump or a configuration
//! change simply makes the store look for a file that is not there
//! (a miss), never for a file holding stale results.

use firmres::AnalysisConfig;
use firmres_firmware::{content_hash_packed, FirmwareImage};

/// Version of the analysis pipeline whose results the cache stores.
///
/// Bump this whenever any pipeline stage, the on-disk entry schema, or a
/// codec in this crate changes observable output: every existing cache
/// entry then misses and is recomputed. The value is baked into both the
/// cache key (and thus the file name) and the entry header.
pub const PIPELINE_VERSION: u32 = 1;

/// The full content-addressed identity of one analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-64 of the packed firmware image bytes.
    pub image: u64,
    /// [`PIPELINE_VERSION`] at key-computation time.
    pub pipeline: u32,
    /// Fingerprint of the [`AnalysisConfig`] knobs that affect output.
    pub config: u64,
}

impl CacheKey {
    /// Key for analyzing `fw` under `config` with the current pipeline.
    pub fn compute(fw: &FirmwareImage, config: &AnalysisConfig) -> CacheKey {
        CacheKey::of_packed(&fw.pack(), config)
    }

    /// Key for the packed container bytes directly.
    ///
    /// Useful when the caller already holds the packed form, and the only
    /// way to key bytes that do not unpack (the byte-flip invalidation
    /// tests rely on this).
    pub fn of_packed(packed: &[u8], config: &AnalysisConfig) -> CacheKey {
        CacheKey {
            image: content_hash_packed(packed),
            pipeline: PIPELINE_VERSION,
            config: config_fingerprint(config),
        }
    }

    /// The store file name this key maps to (hex of all three parts).
    pub fn file_name(&self) -> String {
        format!(
            "{:016x}-{:08x}-{:016x}.frac",
            self.image, self.pipeline, self.config
        )
    }
}

/// FNV-64 fingerprint of every configuration knob that can change
/// analysis output.
///
/// Covers [`ExeIdConfig::score_threshold`] (via its bit pattern, so
/// `0.3` and `0.30000001` fingerprint differently) and all four
/// [`TaintConfig`] fields. A new knob must be folded in here — missing
/// one would let two differently-configured runs share entries.
///
/// [`ExeIdConfig::score_threshold`]: firmres::ExeIdConfig
/// [`TaintConfig`]: firmres_dataflow::TaintConfig
pub fn config_fingerprint(config: &AnalysisConfig) -> u64 {
    let mut bytes = Vec::with_capacity(34);
    bytes.extend_from_slice(&config.exeid.score_threshold.to_bits().to_le_bytes());
    bytes.extend_from_slice(&(config.taint.max_depth as u64).to_le_bytes());
    bytes.extend_from_slice(&(config.taint.max_nodes as u64).to_le_bytes());
    bytes.push(config.taint.overtaint as u8);
    bytes.push(config.taint.decompose_buffers as u8);
    content_hash_packed(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_fingerprint_sees_every_knob() {
        let base = AnalysisConfig::default();
        let f0 = config_fingerprint(&base);
        assert_eq!(f0, config_fingerprint(&AnalysisConfig::default()));

        let mut c = AnalysisConfig::default();
        c.exeid.score_threshold = 0.5;
        assert_ne!(f0, config_fingerprint(&c));

        let mut c = AnalysisConfig::default();
        c.taint.max_depth += 1;
        assert_ne!(f0, config_fingerprint(&c));

        let mut c = AnalysisConfig::default();
        c.taint.max_nodes += 1;
        assert_ne!(f0, config_fingerprint(&c));

        let mut c = AnalysisConfig::default();
        c.taint.overtaint = !c.taint.overtaint;
        assert_ne!(f0, config_fingerprint(&c));

        let mut c = AnalysisConfig::default();
        c.taint.decompose_buffers = !c.taint.decompose_buffers;
        assert_ne!(f0, config_fingerprint(&c));
    }

    #[test]
    fn file_name_is_stable_and_key_dependent() {
        let config = AnalysisConfig::default();
        let a = CacheKey::of_packed(b"image-a", &config);
        let b = CacheKey::of_packed(b"image-b", &config);
        assert_eq!(a, CacheKey::of_packed(b"image-a", &config));
        assert_ne!(a.file_name(), b.file_name());
        assert!(a.file_name().ends_with(".frac"));
    }
}
