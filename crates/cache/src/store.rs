//! The on-disk analysis store: one file per [`CacheKey`], with a
//! versioned header, sectioned payload, and trailing checksum.
//!
//! # Entry layout
//!
//! ```text
//! "FRAC"                      magic
//! u16  schema version         (SCHEMA_VERSION)
//! u128 image hash       ┐
//! u32  pipeline version │     key echo — must match the lookup key
//! u64  config hash      │
//! u64  classifier hash  ┘
//! u32+bytes  handlers section        (Vec<HandlerInfo>)
//! u32+bytes  taint-summary section   (Vec<TaintSummary>)
//! u32+bytes  analysis section        (FirmwareAnalysis)
//! u64  FNV-64 of everything above
//! ```
//!
//! Entries are written to a temp file in the store directory and
//! renamed into place, so a crash mid-write or a concurrent reader in a
//! shared cache directory never observes a torn entry.
//!
//! Each section is byte-length-prefixed, so [`AnalysisCache::load_handlers`]
//! and [`AnalysisCache::load_taint_summaries`] can return a stage's
//! intermediate artifact without decoding the full analysis.
//!
//! Every failure mode — missing file, foreign magic, schema or key
//! mismatch, truncation, checksum or decode failure — is a typed
//! [`CacheError`]. Only [`CacheError::Miss`] is silent; callers treat
//! everything else as *diagnosed* misses (the incremental driver logs a
//! [`StageKind::Cache`] diagnostic and re-analyzes).
//!
//! [`StageKind::Cache`]: firmres::StageKind

use crate::codec::{
    get_analysis, get_handler, get_taint_summary, put_analysis, put_handler, put_taint_summary,
    DecodeError, Reader,
};
use crate::key::CacheKey;
use crate::policy::{self, Evictor, GcOutcome, ShardOccupancy, StorePolicy};
use bytes::BufMut;
use firmres::{FirmwareAnalysis, HandlerInfo};
use firmres_dataflow::TaintSummary;
use firmres_firmware::content_hash_packed;
use firmres_mft::MftNodeKind;
use firmres_semantics::{ClassCache, ClassCacheStats};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Version of the entry layout itself (header + sectioning), as opposed
/// to [`PIPELINE_VERSION`] which covers what the sections *contain*.
///
/// # History
///
/// * v3 — the store gained unit-granular sibling artifacts (`.fru` bank
///   and `.frv` verdict files, see [`crate::unit`]). The `.frac` image
///   entry layout itself is unchanged, so v2 entries remain fully
///   servable: [`read_verified`] accepts both versions. New writes are
///   stamped v3.
/// * v2 — sectioned payload with per-stage artifacts.
///
/// [`PIPELINE_VERSION`]: crate::PIPELINE_VERSION
/// [`read_verified`]: AnalysisCache::load
pub const SCHEMA_VERSION: u16 = 3;

/// The oldest schema version whose `.frac` entries this build can still
/// decode. v2 and v3 share the entry layout byte for byte.
pub const MIN_READ_SCHEMA_VERSION: u16 = 2;

const MAGIC: &[u8; 4] = b"FRAC";

/// Why a cache lookup did not produce a usable entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// No entry for this key — the ordinary cold-cache case.
    Miss,
    /// The entry exists but could not be read.
    Io(String),
    /// The file does not start with the `FRAC` magic.
    BadMagic,
    /// The entry was written by a different store layout.
    SchemaMismatch {
        /// The schema version found in the entry header.
        found: u16,
    },
    /// The entry's key echo disagrees with the lookup key (a hash
    /// collision in the file name, or a renamed file).
    KeyMismatch,
    /// The entry ends before its declared contents.
    Truncated,
    /// The trailing checksum does not match the entry bytes.
    BadChecksum,
    /// A section's bytes do not decode.
    Decode(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Miss => write!(f, "cache miss"),
            CacheError::Io(e) => write!(f, "cache io error: {e}"),
            CacheError::BadMagic => write!(f, "cache entry has wrong magic"),
            CacheError::SchemaMismatch { found } => {
                write!(
                    f,
                    "cache entry schema v{found} does not match v{SCHEMA_VERSION}"
                )
            }
            CacheError::KeyMismatch => write!(f, "cache entry key echo mismatch"),
            CacheError::Truncated => write!(f, "cache entry truncated"),
            CacheError::BadChecksum => write!(f, "cache entry checksum mismatch"),
            CacheError::Decode(e) => write!(f, "cache entry decode failed: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<DecodeError> for CacheError {
    fn from(e: DecodeError) -> Self {
        CacheError::Decode(e.0)
    }
}

impl CacheError {
    /// Whether this is the silent no-entry case rather than a damaged or
    /// incompatible entry worth diagnosing.
    pub fn is_miss(&self) -> bool {
        matches!(self, CacheError::Miss)
    }
}

/// A fully decoded cache entry.
#[derive(Debug)]
pub struct CachedEntry {
    /// The persisted analysis result.
    pub analysis: FirmwareAnalysis,
    /// The ExeId stage's handler set, decodable on its own.
    pub handlers: Vec<HandlerInfo>,
    /// The FieldId stage's per-message taint digests, decodable on
    /// their own.
    pub taint_summaries: Vec<TaintSummary>,
    /// Bytes read from disk for this entry.
    pub bytes: u64,
}

/// Digest the FieldId stage's artifact out of a finished analysis: one
/// [`TaintSummary`] per message, in message order (node count of the
/// originating trace, terminal sources at the MFT leaves).
pub fn taint_summaries(analysis: &FirmwareAnalysis) -> Vec<TaintSummary> {
    analysis
        .messages
        .iter()
        .map(|m| TaintSummary {
            nodes: m.mft.len(),
            sources: m
                .mft
                .leaves()
                .into_iter()
                .filter_map(|id| match &m.mft.node(id).kind {
                    MftNodeKind::Field(s) => Some(s.clone()),
                    _ => None,
                })
                .collect(),
        })
        .collect()
}

/// A content-addressed store of completed firmware analyses.
///
/// One directory (or N shard subdirectories, see [`StorePolicy`]), one
/// file per [`CacheKey`]; directories are created on first write.
/// Lookups for keys with no file are [`CacheError::Miss`]; any other
/// failure names what is wrong with the entry that *was* there.
#[derive(Debug, Clone)]
pub struct AnalysisCache {
    dir: PathBuf,
    policy: StorePolicy,
    orphans_removed: u64,
    /// Present iff the policy sets a byte budget. Clones share the
    /// accounting, so a daemon's workers see one LRU ordering.
    evictor: Option<Arc<Evictor>>,
    /// Corpus-wide slice-classification caches, one per classifier
    /// fingerprint (a text's label depends on the model, so caches must
    /// never be shared across models). In-memory only — labels are
    /// deterministic, so there is nothing durable to persist. Clones
    /// share the map, so every image of a corpus run — and every job of
    /// a daemon — deduplicates against the same cache.
    class_caches: Arc<Mutex<HashMap<u64, Arc<ClassCache>>>>,
}

impl AnalysisCache {
    /// A store rooted at `dir` with the default (flat, unbounded)
    /// [`StorePolicy`] — the historical behavior.
    ///
    /// Opening also sweeps the store for orphaned temp files — the
    /// `.{name}.{pid}-{seq}.tmp` intermediates of the atomic
    /// write-then-rename protocol whose writer process died mid-write.
    /// A temp file whose embedded pid is no longer alive can never be
    /// renamed into place, so it is deleted; the count is surfaced in
    /// [`StoreStats::orphans_removed`]. Temps of live processes
    /// (including this one) are left untouched.
    pub fn new(dir: impl Into<PathBuf>) -> AnalysisCache {
        AnalysisCache::with_policy(dir, StorePolicy::default())
    }

    /// A store rooted at `dir` under an explicit [`StorePolicy`]. The
    /// orphan sweep covers the root and every shard subdirectory. When
    /// the policy sets a byte budget, the accounting scan runs here and
    /// an initial eviction pass brings a store inherited over budget
    /// (e.g. after the budget was lowered) back under it.
    pub fn with_policy(dir: impl Into<PathBuf>, policy: StorePolicy) -> AnalysisCache {
        let dir = dir.into();
        let mut orphans_removed = 0;
        for (_, d) in policy::store_dirs(&dir, &policy) {
            orphans_removed += sweep_orphan_temps(&d);
        }
        let evictor = policy
            .byte_budget
            .map(|_| Arc::new(Evictor::open(&dir, &policy)));
        let cache = AnalysisCache {
            dir,
            policy,
            orphans_removed,
            evictor,
            class_caches: Arc::new(Mutex::new(HashMap::new())),
        };
        // Only an inherited store already over the trigger watermark is
        // collected at open; inside the hysteresis band writes accumulate.
        if let (Some(e), Some(budget)) = (&cache.evictor, cache.policy.byte_budget) {
            if e.total_bytes() as f64 > cache.policy.high_watermark * budget as f64 {
                let _ = e.collect(&cache.dir);
            }
        }
        cache
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The storage policy this store was opened under.
    pub fn store_policy(&self) -> &StorePolicy {
        &self.policy
    }

    /// The directory an artifact named `name` belongs in (the root for a
    /// flat store, the name's shard subdirectory otherwise).
    pub(crate) fn artifact_dir(&self, name: &str) -> PathBuf {
        policy::artifact_dir_in(&self.dir, &self.policy, name)
    }

    /// The full path of an artifact named `name`.
    pub(crate) fn artifact_path(&self, name: &str) -> PathBuf {
        self.artifact_dir(name).join(name)
    }

    /// Record a successful artifact read with the eviction accounting.
    pub(crate) fn note_read_artifact(&self, name: &str) {
        if let Some(e) = &self.evictor {
            e.note_read(name);
        }
    }

    /// Record an artifact write; runs an eviction pass if the write
    /// pushed the store over its trigger watermark.
    pub(crate) fn note_write_artifact(&self, name: &str, bytes: u64) {
        if let Some(e) = &self.evictor {
            if e.note_write(name, bytes) {
                let _ = e.collect(&self.dir);
            }
        }
    }

    /// Record an artifact deleted outside the GC.
    pub(crate) fn note_removed_artifact(&self, name: &str) {
        if let Some(e) = &self.evictor {
            e.note_removed(name);
        }
    }

    /// Force an eviction pass now: if the store is over
    /// `low_watermark × budget`, least-recently-used artifacts are
    /// deleted until it is not. A no-op without a byte budget.
    pub fn gc_now(&self) -> GcOutcome {
        match &self.evictor {
            Some(e) => e.collect(&self.dir),
            None => GcOutcome::default(),
        }
    }

    /// Bytes currently tracked by the eviction accounting (`None`
    /// without a byte budget).
    pub fn tracked_bytes(&self) -> Option<u64> {
        self.evictor.as_ref().map(|e| e.total_bytes())
    }

    /// Pin (or unpin) the image entry for `key`: with
    /// [`StorePolicy::exempt_pinned`] set, pinned entries are never
    /// evicted. A no-op without a byte budget.
    pub fn pin_entry(&self, key: &CacheKey, pinned: bool) {
        if let Some(e) = &self.evictor {
            e.set_pinned(&key.file_name(), pinned);
        }
    }

    /// The file path an entry for `key` lives at.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.artifact_path(&key.file_name())
    }

    /// The corpus-wide classification cache for a classifier
    /// fingerprint, created on first use with the policy's entry budget
    /// ([`StorePolicy::class_cache_entries`]).
    pub(crate) fn class_cache(&self, classifier_fp: u64) -> Arc<ClassCache> {
        let mut caches = self.class_caches.lock().expect("class cache map");
        Arc::clone(
            caches
                .entry(classifier_fp)
                .or_insert_with(|| Arc::new(ClassCache::new(self.policy.class_cache_entries))),
        )
    }

    /// Aggregated counters of every classification cache this store has
    /// handed out (summed across classifier fingerprints).
    pub fn class_cache_stats(&self) -> ClassCacheStats {
        let caches = self.class_caches.lock().expect("class cache map");
        let mut total = ClassCacheStats::default();
        for cache in caches.values() {
            let s = cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.batched += s.batched;
            total.prefilter_skips += s.prefilter_skips;
            total.entries += s.entries;
        }
        total
    }

    /// Persist a finished analysis (plus its stage artifacts) under
    /// `key`. Returns the number of bytes written.
    pub fn store(&self, key: &CacheKey, analysis: &FirmwareAnalysis) -> Result<u64, CacheError> {
        let mut out = Vec::with_capacity(4096);
        out.put_slice(MAGIC);
        out.put_u16_le(SCHEMA_VERSION);
        out.put_u128_le(key.image);
        out.put_u32_le(key.pipeline);
        out.put_u64_le(key.config);
        out.put_u64_le(key.classifier);

        let mut section = Vec::new();
        section.put_u32_le(analysis.handlers.len() as u32);
        for h in &analysis.handlers {
            put_handler(&mut section, h);
        }
        put_section(&mut out, &section);

        let summaries = taint_summaries(analysis);
        let mut section = Vec::new();
        section.put_u32_le(summaries.len() as u32);
        for s in &summaries {
            put_taint_summary(&mut section, s);
        }
        put_section(&mut out, &section);

        let mut section = Vec::new();
        put_analysis(&mut section, analysis);
        put_section(&mut out, &section);

        out.put_u64_le(content_hash_packed(&out));

        let name = key.file_name();
        write_file_atomic(&self.artifact_dir(&name), &name, &out).map_err(CacheError::Io)?;
        self.note_write_artifact(&name, out.len() as u64);
        Ok(out.len() as u64)
    }

    /// Load and fully decode the entry for `key`.
    pub fn load(&self, key: &CacheKey) -> Result<CachedEntry, CacheError> {
        let raw = self.read_verified(key)?;
        let bytes = raw.bytes;
        let handlers = decode_handlers(&raw.sections[0])?;
        let taint = decode_taint_summaries(&raw.sections[1])?;
        let analysis = get_analysis(&mut Reader::new(&raw.sections[2]))?;
        Ok(CachedEntry {
            analysis,
            handlers,
            taint_summaries: taint,
            bytes,
        })
    }

    /// Load only the ExeId stage's handler set for `key`.
    pub fn load_handlers(&self, key: &CacheKey) -> Result<Vec<HandlerInfo>, CacheError> {
        let raw = self.read_verified(key)?;
        decode_handlers(&raw.sections[0])
    }

    /// Load only the FieldId stage's taint summaries for `key`.
    pub fn load_taint_summaries(&self, key: &CacheKey) -> Result<Vec<TaintSummary>, CacheError> {
        let raw = self.read_verified(key)?;
        decode_taint_summaries(&raw.sections[1])
    }

    /// Whether an entry file exists for `key` (no validation).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entry_path(key).exists()
    }

    /// Read an entry file and verify magic, schema, key echo and
    /// checksum, returning the three raw sections.
    fn read_verified(&self, key: &CacheKey) -> Result<RawEntry, CacheError> {
        let path = self.entry_path(key);
        let data = match std::fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(CacheError::Miss),
            Err(e) => return Err(CacheError::Io(e.to_string())),
        };
        // Checksum first: it covers every other field, so a truncated or
        // bit-flipped entry is caught before any interpretation.
        if data.len() < MAGIC.len() + 8 {
            return Err(CacheError::Truncated);
        }
        let (body, tail) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if stored != content_hash_packed(body) {
            // A short read and a flipped byte are indistinguishable here;
            // report the more precise condition when the magic is gone.
            if &body[..MAGIC.len()] != MAGIC {
                return Err(CacheError::BadMagic);
            }
            return Err(CacheError::BadChecksum);
        }
        let mut r = Reader::new(body);
        let magic = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
        if &magic != MAGIC {
            return Err(CacheError::BadMagic);
        }
        let schema = r.u16()?;
        if !(MIN_READ_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
            return Err(CacheError::SchemaMismatch { found: schema });
        }
        let echo = CacheKey {
            image: r.u128()?,
            pipeline: r.u32()?,
            config: r.u64()?,
            classifier: r.u64()?,
        };
        if echo != *key {
            return Err(CacheError::KeyMismatch);
        }
        let mut sections = Vec::with_capacity(3);
        for _ in 0..3 {
            let len = r.u32()? as usize;
            if len > r.remaining() {
                return Err(CacheError::Truncated);
            }
            sections.push(r.bytes(len)?.to_vec());
        }
        self.note_read_artifact(&key.file_name());
        Ok(RawEntry {
            sections,
            bytes: data.len() as u64,
        })
    }
}

/// Atomic write-then-rename with the store's temp naming convention, so
/// a crash mid-write or a concurrent reader never sees a torn artifact:
/// the final path either holds the old bytes or the complete new ones.
/// The temp name is unique per process and write, so parallel writers
/// cannot collide, and the orphan sweep covers crashed writes.
pub(crate) fn write_file_atomic(dir: &Path, file_name: &str, data: &[u8]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = dir.join(format!(".{file_name}.{}-{seq}.tmp", std::process::id()));
    let final_path = dir.join(file_name);
    std::fs::write(&tmp, data).map_err(|e| e.to_string())?;
    std::fs::rename(&tmp, &final_path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        e.to_string()
    })?;
    Ok(())
}

/// Aggregate shape of one store directory, as reported by
/// [`AnalysisCache::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entry files bearing the `FRAC` magic.
    pub entries: u64,
    /// Total bytes across those entries.
    pub total_bytes: u64,
    /// Entry count per schema version found, ascending by version.
    /// Anything not at [`SCHEMA_VERSION`] is dead weight a future
    /// garbage-collection pass could reclaim.
    pub by_schema: Vec<(u16, u64)>,
    /// `.frac`-named files that do not start with the magic (foreign or
    /// mangled files sharing the directory).
    pub foreign: u64,
    /// Unit-granular bank artifacts (`.fru` files, see [`crate::unit`]).
    pub unit_banks: u64,
    /// Executable-identification verdict artifacts (`.frv` files).
    pub verdicts: u64,
    /// Total bytes across the unit-granular artifact files.
    pub unit_bytes: u64,
    /// Orphaned write temps deleted when this store was opened.
    pub orphans_removed: u64,
    /// Lifetime artifacts evicted by the byte-budget GC, summed over the
    /// persisted shard indexes.
    pub evicted_entries: u64,
    /// Lifetime bytes reclaimed by the byte-budget GC.
    pub reclaimed_bytes: u64,
    /// The byte budget recorded by the most recent GC pass (`0` when no
    /// eviction has ever run).
    pub budget_bytes: u64,
    /// Per-directory occupancy: one row for the root of a flat store,
    /// one per shard subdirectory otherwise. Directories with no
    /// artifacts and no eviction history are omitted.
    pub shards: Vec<ShardOccupancy>,
}

impl StoreStats {
    /// Entries at the current [`SCHEMA_VERSION`].
    pub fn current(&self) -> u64 {
        self.by_schema
            .iter()
            .find(|(v, _)| *v == SCHEMA_VERSION)
            .map_or(0, |(_, n)| *n)
    }
}

impl AnalysisCache {
    /// Survey the store: entry count, total bytes, the schema-version
    /// breakdown, per-shard occupancy and the persisted eviction
    /// counters.
    ///
    /// Only each file's 6-byte header is inspected — no entry is decoded
    /// or checksummed, so this stays cheap on large stores. A store whose
    /// directory does not exist yet reports all-zero stats rather than an
    /// error (it is simply empty). Temp files from in-flight writes (no
    /// `.frac` suffix) are skipped; unit-granular sibling artifacts
    /// (`.fru` banks, `.frv` verdicts) are counted separately. The root
    /// and every shard subdirectory are surveyed, so the aggregate is
    /// layout-independent.
    pub fn stats(&self) -> Result<StoreStats, CacheError> {
        let mut stats = StoreStats {
            orphans_removed: self.orphans_removed,
            ..StoreStats::default()
        };
        let mut by_schema = std::collections::BTreeMap::new();
        for (_, dir) in policy::store_dirs(&self.dir, &self.policy) {
            let entries = match std::fs::read_dir(&dir) {
                Ok(e) => e,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(CacheError::Io(e.to_string())),
            };
            let mut row = ShardOccupancy {
                name: if dir == self.dir {
                    "root".to_string()
                } else {
                    dir.file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or("?")
                        .to_string()
                },
                ..ShardOccupancy::default()
            };
            if let Some(index) = policy::read_index(&dir.join(policy::INDEX_NAME)) {
                row.evicted = index.evicted;
                row.reclaimed_bytes = index.reclaimed_bytes;
                stats.evicted_entries += index.evicted;
                stats.reclaimed_bytes += index.reclaimed_bytes;
                stats.budget_bytes = stats.budget_bytes.max(index.budget_bytes);
            }
            for entry in entries {
                let entry = entry.map_err(|e| CacheError::Io(e.to_string()))?;
                let path = entry.path();
                let ext = path.extension().and_then(|e| e.to_str());
                if let Some("fru" | "frv") = ext {
                    let meta = entry
                        .metadata()
                        .map_err(|e| CacheError::Io(e.to_string()))?;
                    if meta.is_file() {
                        if ext == Some("fru") {
                            stats.unit_banks += 1;
                        } else {
                            stats.verdicts += 1;
                        }
                        stats.unit_bytes += meta.len();
                        row.files += 1;
                        row.bytes += meta.len();
                    }
                    continue;
                }
                if ext != Some("frac") {
                    continue;
                }
                let meta = entry
                    .metadata()
                    .map_err(|e| CacheError::Io(e.to_string()))?;
                if !meta.is_file() {
                    continue;
                }
                let mut header = [0u8; 6];
                let ok = std::fs::File::open(&path)
                    .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut header))
                    .is_ok();
                if !ok || &header[..4] != MAGIC {
                    stats.foreign += 1;
                    continue;
                }
                stats.entries += 1;
                stats.total_bytes += meta.len();
                row.files += 1;
                row.bytes += meta.len();
                let schema = u16::from_le_bytes([header[4], header[5]]);
                *by_schema.entry(schema).or_insert(0u64) += 1;
            }
            if row.files > 0 || row.bytes > 0 || row.evicted > 0 || row.reclaimed_bytes > 0 {
                stats.shards.push(row);
            }
        }
        stats
            .shards
            .sort_by(|a, b| (a.name != "root", &a.name).cmp(&(b.name != "root", &b.name)));
        stats.by_schema = by_schema.into_iter().collect();
        Ok(stats)
    }
}

/// Known-library summary usage aggregated over a store's decodable
/// entries, as reported by [`AnalysisCache::survey_lib_usage`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LibUsage {
    /// Functions hash-matched against a known-library index.
    pub fns_matched: u64,
    /// Library-body traversals replaced by summary replay.
    pub traversals_skipped: u64,
    /// Taint-tree nodes emitted by summary replay.
    pub summary_applies: u64,
}

impl LibUsage {
    /// Whether any libid counter is nonzero.
    pub fn any(&self) -> bool {
        self.fns_matched > 0 || self.traversals_skipped > 0 || self.summary_applies > 0
    }
}

/// Reconstruct a [`CacheKey`] from an entry file stem (the inverse of
/// [`CacheKey::file_name`]); `None` for foreign names.
fn parse_entry_stem(stem: &str) -> Option<CacheKey> {
    let mut parts = stem.split('-');
    let key = CacheKey {
        image: u128::from_str_radix(parts.next()?, 16).ok()?,
        pipeline: u32::from_str_radix(parts.next()?, 16).ok()?,
        config: u64::from_str_radix(parts.next()?, 16).ok()?,
        classifier: u64::from_str_radix(parts.next()?, 16).ok()?,
    };
    parts.next().is_none().then_some(key)
}

impl AnalysisCache {
    /// Sum the known-library counters recorded in every decodable entry
    /// of the store.
    ///
    /// Unlike [`AnalysisCache::stats`] this decodes each entry (the
    /// counters live in the analysis section), so it is proportional to
    /// store size — fine for the `cache-stats` survey, not for hot
    /// paths. Entries that fail to decode (stale schema, damage,
    /// foreign files) are skipped silently: the survey reports what is
    /// readable, never errors.
    pub fn survey_lib_usage(&self) -> LibUsage {
        let mut usage = LibUsage::default();
        for (_, dir) in policy::store_dirs(&self.dir, &self.policy) {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some("frac") {
                    continue;
                }
                let Some(key) = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(parse_entry_stem)
                else {
                    continue;
                };
                let Ok(cached) = self.load(&key) else {
                    continue;
                };
                let c = &cached.analysis.counters;
                usage.fns_matched += c.lib_fns_matched;
                usage.traversals_skipped += c.lib_traversals_skipped;
                usage.summary_applies += c.lib_summary_applies;
            }
        }
        usage
    }
}

struct RawEntry {
    sections: Vec<Vec<u8>>,
    bytes: u64,
}

/// Delete orphaned write temps in `dir`, returning how many were removed.
///
/// A temp is an orphan when its embedded writer pid is provably not this
/// process and not alive (checked via `/proc` where available). Files
/// that do not parse as our temp naming convention are never touched.
fn sweep_orphan_temps(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(pid) = temp_writer_pid(name) else {
            continue;
        };
        if pid == std::process::id() {
            continue;
        }
        // Without /proc there is no portable liveness probe; err on the
        // side of keeping the file rather than racing a live writer.
        if !Path::new("/proc").is_dir() || Path::new(&format!("/proc/{pid}")).exists() {
            continue;
        }
        if std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Parse the writer pid out of a `.{name}.{pid}-{seq}.tmp` file name, or
/// `None` when the name is not one of our write temps.
fn temp_writer_pid(name: &str) -> Option<u32> {
    let rest = name.strip_prefix('.')?.strip_suffix(".tmp")?;
    let (_, pid_seq) = rest.rsplit_once('.')?;
    let (pid, seq) = pid_seq.split_once('-')?;
    if seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    pid.parse().ok()
}

fn put_section(out: &mut Vec<u8>, section: &[u8]) {
    out.put_u32_le(section.len() as u32);
    out.put_slice(section);
}

fn decode_handlers(bytes: &[u8]) -> Result<Vec<HandlerInfo>, CacheError> {
    let mut r = Reader::new(bytes);
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_handler(&mut r)?);
    }
    Ok(out)
}

fn decode_taint_summaries(bytes: &[u8]) -> Result<Vec<TaintSummary>, CacheError> {
    let mut r = Reader::new(bytes);
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_taint_summary(&mut r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres::{analyze_firmware, AnalysisConfig};
    use firmres_corpus::generate_device;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("firmres-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_round_trip() {
        let dev = generate_device(10, 7);
        let config = AnalysisConfig::default();
        let analysis = analyze_firmware(&dev.firmware, None, &config);
        let cache = AnalysisCache::new(temp_dir("roundtrip"));
        let key = CacheKey::compute(&dev.firmware, None, &config);

        assert!(matches!(cache.load(&key), Err(CacheError::Miss)));
        let written = cache.store(&key, &analysis).unwrap();
        assert!(written > 0);

        let entry = cache.load(&key).unwrap();
        assert_eq!(entry.bytes, written);
        assert_eq!(entry.analysis.executable, analysis.executable);
        assert_eq!(entry.analysis.messages.len(), analysis.messages.len());
        assert_eq!(entry.analysis.counters, analysis.counters);
        assert_eq!(entry.handlers.len(), analysis.handlers.len());
        assert_eq!(entry.taint_summaries.len(), analysis.messages.len());
        // The sectioned artifacts match their full-analysis counterparts.
        assert_eq!(
            cache.load_handlers(&key).unwrap().len(),
            entry.handlers.len()
        );
        assert_eq!(
            cache.load_taint_summaries(&key).unwrap(),
            taint_summaries(&analysis)
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupted_entries_are_typed_errors() {
        let dev = generate_device(6, 7);
        let config = AnalysisConfig::default();
        let analysis = analyze_firmware(&dev.firmware, None, &config);
        let cache = AnalysisCache::new(temp_dir("corrupt"));
        let key = CacheKey::compute(&dev.firmware, None, &config);
        cache.store(&key, &analysis).unwrap();
        let path = cache.entry_path(&key);
        let good = std::fs::read(&path).unwrap();

        // Truncation: checksum can no longer match.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(
            cache.load(&key),
            Err(CacheError::BadChecksum | CacheError::Truncated)
        ));

        // Byte flip in the body.
        let mut flipped = good.clone();
        flipped[MAGIC.len() + 3] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(cache.load(&key).unwrap_err(), CacheError::BadChecksum);

        // Foreign file.
        std::fs::write(&path, b"not a cache entry at all").unwrap();
        assert!(matches!(
            cache.load(&key),
            Err(CacheError::BadMagic | CacheError::BadChecksum | CacheError::Truncated)
        ));

        // Restored entry loads again.
        std::fs::write(&path, &good).unwrap();
        assert!(cache.load(&key).is_ok());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn schema_bump_is_a_schema_mismatch() {
        let dev = generate_device(6, 7);
        let config = AnalysisConfig::default();
        let analysis = analyze_firmware(&dev.firmware, None, &config);
        let cache = AnalysisCache::new(temp_dir("schema"));
        let key = CacheKey::compute(&dev.firmware, None, &config);
        cache.store(&key, &analysis).unwrap();
        let path = cache.entry_path(&key);
        let mut data = std::fs::read(&path).unwrap();
        // Rewrite the schema version and re-seal the checksum, emulating
        // an entry from a future store layout.
        data[4] = 0xFE;
        data[5] = 0xFF;
        let body_len = data.len() - 8;
        let sum = content_hash_packed(&data[..body_len]);
        data[body_len..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        assert_eq!(
            cache.load(&key).unwrap_err(),
            CacheError::SchemaMismatch { found: 0xFFFE }
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stats_survey_entries_schemas_and_foreign_files() {
        let cache = AnalysisCache::new(temp_dir("stats"));
        // A store that was never written to is empty, not an error.
        assert_eq!(cache.stats().unwrap(), StoreStats::default());

        let config = AnalysisConfig::default();
        let mut written = 0;
        for id in [6u8, 10] {
            let dev = generate_device(id, 7);
            let analysis = analyze_firmware(&dev.firmware, None, &config);
            let key = CacheKey::compute(&dev.firmware, None, &config);
            written += cache.store(&key, &analysis).unwrap();
        }
        // One foreign .frac file and one non-entry file alongside.
        std::fs::write(cache.dir().join("junk.frac"), b"not FRAC at all").unwrap();
        std::fs::write(cache.dir().join("notes.txt"), b"ignored").unwrap();

        let stats = cache.stats().unwrap();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.total_bytes, written);
        assert_eq!(stats.by_schema, vec![(SCHEMA_VERSION, 2)]);
        assert_eq!(stats.current(), 2);
        assert_eq!(stats.foreign, 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stats_survey_is_exact_at_a_thousand_plus_entries() {
        // ISSUE 7 scale audit: with synthesized fleets the store routinely
        // holds 1k+ image entries plus unit artifacts. Fabricate a large
        // mixed population from raw headers (the survey reads only the
        // 6-byte prefix) and check every counter is exact — no narrow
        // types, no skipped banks, no drift between count and byte total.
        let cache = AnalysisCache::new(temp_dir("stats1k"));
        std::fs::create_dir_all(cache.dir()).unwrap();
        let entry_bytes = |schema: u16, pad: usize| {
            let mut b = Vec::new();
            b.extend_from_slice(MAGIC);
            b.extend_from_slice(&schema.to_le_bytes());
            b.resize(6 + pad, 0xAB);
            b
        };
        let mut expect_total = 0u64;
        let mut expect_current = 0u64;
        let mut expect_stale = 0u64;
        for i in 0..1200u32 {
            // 1 in 6 entries carries the previous (still servable) schema.
            let schema = if i % 6 == 5 {
                MIN_READ_SCHEMA_VERSION
            } else {
                SCHEMA_VERSION
            };
            let body = entry_bytes(schema, (i % 97) as usize);
            expect_total += body.len() as u64;
            if schema == SCHEMA_VERSION {
                expect_current += 1;
            } else {
                expect_stale += 1;
            }
            std::fs::write(cache.dir().join(format!("e{i:04}.frac")), &body).unwrap();
        }
        let mut expect_unit_bytes = 0u64;
        for i in 0..40u32 {
            let body = vec![0x55u8; 32 + (i as usize % 11)];
            expect_unit_bytes += body.len() as u64;
            std::fs::write(cache.dir().join(format!("u{i:03}.fru")), &body).unwrap();
        }
        for i in 0..25u32 {
            let body = vec![0x66u8; 16 + (i as usize % 7)];
            expect_unit_bytes += body.len() as u64;
            std::fs::write(cache.dir().join(format!("v{i:03}.frv")), &body).unwrap();
        }
        for i in 0..7u32 {
            std::fs::write(
                cache.dir().join(format!("alien{i}.frac")),
                format!("no magic here {i}"),
            )
            .unwrap();
        }
        std::fs::write(cache.dir().join("README"), b"ignored entirely").unwrap();

        let stats = cache.stats().unwrap();
        assert_eq!(stats.entries, 1200);
        assert_eq!(stats.total_bytes, expect_total);
        assert_eq!(
            stats.by_schema,
            vec![
                (MIN_READ_SCHEMA_VERSION, expect_stale),
                (SCHEMA_VERSION, expect_current),
            ]
        );
        assert_eq!(stats.current(), expect_current);
        assert_eq!(stats.foreign, 7);
        assert_eq!(stats.unit_banks, 40);
        assert_eq!(stats.verdicts, 25);
        assert_eq!(stats.unit_bytes, expect_unit_bytes);
        assert_eq!(stats.orphans_removed, 0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn version_2_entries_remain_servable() {
        let dev = generate_device(6, 7);
        let config = AnalysisConfig::default();
        let analysis = analyze_firmware(&dev.firmware, None, &config);
        let cache = AnalysisCache::new(temp_dir("v2read"));
        let key = CacheKey::compute(&dev.firmware, None, &config);
        cache.store(&key, &analysis).unwrap();
        let path = cache.entry_path(&key);
        let mut data = std::fs::read(&path).unwrap();
        // Re-stamp the entry as schema v2 (identical layout) and re-seal.
        data[4..6].copy_from_slice(&2u16.to_le_bytes());
        let body_len = data.len() - 8;
        let sum = content_hash_packed(&data[..body_len]);
        data[body_len..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let entry = cache.load(&key).unwrap();
        assert_eq!(entry.analysis.messages.len(), analysis.messages.len());
        // v1 (pre-sectioning) stays rejected.
        let mut old = std::fs::read(&path).unwrap();
        old[4..6].copy_from_slice(&1u16.to_le_bytes());
        let sum = content_hash_packed(&old[..body_len]);
        old[body_len..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &old).unwrap();
        assert_eq!(
            cache.load(&key).unwrap_err(),
            CacheError::SchemaMismatch { found: 1 }
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn opening_a_store_reaps_orphaned_write_temps() {
        let dir = temp_dir("orphans");
        std::fs::create_dir_all(&dir).unwrap();
        // A crashed writer's temp: valid naming, provably dead pid.
        let orphan = dir.join(".00aa.frac.999999999-3.tmp");
        std::fs::write(&orphan, b"half-written").unwrap();
        // A live writer's temp (our own pid): must survive.
        let live = dir.join(format!(".00bb.frac.{}-0.tmp", std::process::id()));
        std::fs::write(&live, b"in flight").unwrap();
        // Not our naming convention: must survive.
        let foreign = dir.join(".gitignore");
        std::fs::write(&foreign, b"*").unwrap();

        let cache = AnalysisCache::new(&dir);
        assert!(!orphan.exists(), "dead writer's temp should be reaped");
        assert!(live.exists(), "live writer's temp must survive");
        assert!(foreign.exists(), "unrelated dotfiles must survive");
        assert_eq!(cache.stats().unwrap().orphans_removed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_writer_pid_parses_only_our_convention() {
        assert_eq!(temp_writer_pid(".abc.frac.1234-7.tmp"), Some(1234));
        assert_eq!(temp_writer_pid(".a.fru.99-0.tmp"), Some(99));
        assert_eq!(temp_writer_pid("abc.frac.1234-7.tmp"), None);
        assert_eq!(temp_writer_pid(".abc.frac.1234-7.txt"), None);
        assert_eq!(temp_writer_pid(".gitignore"), None);
        assert_eq!(temp_writer_pid(".abc.frac.x-7.tmp"), None);
        assert_eq!(temp_writer_pid(".abc.frac.12-x.tmp"), None);
    }

    #[test]
    fn sharded_store_round_trips_and_surveys_per_shard() {
        let dir = temp_dir("sharded");
        let policy = StorePolicy {
            shards: 4,
            ..StorePolicy::default()
        };
        let cache = AnalysisCache::with_policy(&dir, policy);
        let config = AnalysisConfig::default();
        let mut keys = Vec::new();
        for id in [4u8, 6, 10, 14, 21] {
            let dev = generate_device(id, 7);
            let analysis = analyze_firmware(&dev.firmware, None, &config);
            let key = CacheKey::compute(&dev.firmware, None, &config);
            cache.store(&key, &analysis).unwrap();
            keys.push((key, analysis));
        }
        // Entries land in shard subdirectories, never the root.
        for (key, _) in &keys {
            let path = cache.entry_path(key);
            assert_ne!(path.parent().unwrap(), dir.as_path());
            assert!(path.exists());
        }
        // Every entry loads back through the sharded paths.
        for (key, analysis) in &keys {
            let entry = cache.load(key).unwrap();
            assert_eq!(entry.analysis.executable, analysis.executable);
        }
        let stats = cache.stats().unwrap();
        assert_eq!(stats.entries, 5);
        assert!(!stats.shards.is_empty());
        assert_eq!(stats.shards.iter().map(|s| s.files).sum::<u64>(), 5);
        assert_eq!(
            stats.shards.iter().map(|s| s.bytes).sum::<u64>(),
            stats.total_bytes
        );
        // A flat-opened view of the same directory still surveys the
        // aggregate (shard subdirectories are always swept).
        let flat = AnalysisCache::new(&dir);
        assert_eq!(flat.stats().unwrap().entries, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_keeps_the_store_under_budget_and_persists_counters() {
        let dir = temp_dir("evict");
        let config = AnalysisConfig::default();
        // First, learn how big one entry is.
        let probe = AnalysisCache::new(&dir);
        let dev = generate_device(4, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &config);
        let key = CacheKey::compute(&dev.firmware, None, &config);
        let entry_bytes = probe.store(&key, &analysis).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        // Budget fits roughly three entries; write five.
        let budget = entry_bytes * 3 + entry_bytes / 2;
        let policy = StorePolicy {
            shards: 2,
            byte_budget: Some(budget),
            low_watermark: 0.9,
            ..StorePolicy::default()
        };
        let cache = AnalysisCache::with_policy(&dir, policy.clone());
        for id in [4u8, 6, 10, 14, 21] {
            let dev = generate_device(id, 7);
            let analysis = analyze_firmware(&dev.firmware, None, &config);
            let key = CacheKey::compute(&dev.firmware, None, &config);
            cache.store(&key, &analysis).unwrap();
        }
        let stats = cache.stats().unwrap();
        assert!(
            stats.total_bytes + stats.unit_bytes <= budget,
            "store must end at or under its budget ({} > {budget})",
            stats.total_bytes + stats.unit_bytes
        );
        assert!(stats.evicted_entries > 0, "evictions must have happened");
        assert!(stats.reclaimed_bytes > 0);
        assert_eq!(stats.budget_bytes, budget, "budget persists via the index");
        assert_eq!(cache.tracked_bytes(), Some(stats.total_bytes));

        // A fresh open (fresh process would be the same) still sees the
        // lifetime counters from the persisted shard indexes.
        let reopened = AnalysisCache::with_policy(&dir, policy);
        let restat = reopened.stats().unwrap();
        assert_eq!(restat.evicted_entries, stats.evicted_entries);
        assert_eq!(restat.reclaimed_bytes, stats.reclaimed_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_lru_and_respects_pins() {
        let dir = temp_dir("evict-lru");
        let config = AnalysisConfig::default();
        // Probe the actual size of each entry so the budget is exactly
        // one byte short of holding all three.
        let probe = AnalysisCache::new(&dir);
        let mut total = 0u64;
        for id in [4u8, 6, 10] {
            let dev = generate_device(id, 7);
            let analysis = analyze_firmware(&dev.firmware, None, &config);
            let key = CacheKey::compute(&dev.firmware, None, &config);
            total += probe.store(&key, &analysis).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);

        let cache = AnalysisCache::with_policy(
            &dir,
            StorePolicy {
                byte_budget: Some(total - 1),
                low_watermark: 1.0,
                ..StorePolicy::default()
            },
        );
        let mut keys = Vec::new();
        for id in [4u8, 6, 10] {
            let dev = generate_device(id, 7);
            let analysis = analyze_firmware(&dev.firmware, None, &config);
            let key = CacheKey::compute(&dev.firmware, None, &config);
            keys.push(key);
            if id == 10 {
                // Touch the oldest entry before the overflow write: LRU
                // must now pick the middle entry instead.
                cache.load(&keys[0]).unwrap();
            }
            cache.store(&key, &analysis).unwrap();
        }
        assert!(cache.contains(&keys[0]), "recently read entry survives");
        assert!(!cache.contains(&keys[1]), "least-recently-used is evicted");
        assert!(cache.contains(&keys[2]), "freshest write survives");

        // Pin the survivor and overflow again: the pin holds.
        cache.pin_entry(&keys[0], true);
        for id in [14u8, 21] {
            let dev = generate_device(id, 7);
            let analysis = analyze_firmware(&dev.firmware, None, &config);
            let key = CacheKey::compute(&dev.firmware, None, &config);
            cache.store(&key, &analysis).unwrap();
        }
        assert!(cache.contains(&keys[0]), "pinned entry is exempt");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_echo_guards_renamed_entries() {
        let dev_a = generate_device(6, 7);
        let dev_b = generate_device(10, 7);
        let config = AnalysisConfig::default();
        let cache = AnalysisCache::new(temp_dir("echo"));
        let key_a = CacheKey::compute(&dev_a.firmware, None, &config);
        let key_b = CacheKey::compute(&dev_b.firmware, None, &config);
        let analysis = analyze_firmware(&dev_a.firmware, None, &config);
        cache.store(&key_a, &analysis).unwrap();
        // Pretend a's entry is b's by renaming the file.
        std::fs::rename(cache.entry_path(&key_a), cache.entry_path(&key_b)).unwrap();
        assert_eq!(cache.load(&key_b).unwrap_err(), CacheError::KeyMismatch);
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
