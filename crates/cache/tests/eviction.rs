//! Eviction vs. incremental splicing.
//!
//! The budget-driven GC may remove unit banks (`.fru`), stage-1
//! verdicts (`.frv`) or whole image entries (`.frac`) at any moment —
//! including between the funnel's read of one artifact and its splice
//! of the next. These tests pin the contract: an evicted artifact
//! degrades to a clean re-analysis (byte-identical output, counted as
//! a miss), never an error.

use firmres::{AnalysisConfig, NullObserver};
use firmres_cache::codec::{get_analysis, put_analysis, Reader};
use firmres_cache::{
    analyze_corpus_incremental, analyze_image_units_incremental, AnalysisCache, StorePolicy,
};
use firmres_corpus::generate_device;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("firmres-evict-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Re-encode with timings cleared: the funnel's byte-identity contract
/// excludes wall-clock fields (re-executed stages report fresh times).
fn normalized(bytes: &[u8]) -> Vec<u8> {
    let mut a = get_analysis(&mut Reader::new(bytes)).expect("funnel bytes decode");
    a.timings = Default::default();
    let mut out = Vec::new();
    put_analysis(&mut out, &a);
    out
}

fn funnel(
    fw: &firmres_firmware::FirmwareImage,
    cache: &AnalysisCache,
) -> firmres_cache::UnitFunnelOutcome {
    analyze_image_units_incremental(
        fw,
        None,
        &AnalysisConfig::default(),
        1,
        cache,
        &mut NullObserver,
        None,
    )
    .expect("funnel never fails on cache trouble")
}

#[test]
fn evicted_unit_artifacts_degrade_to_clean_misses() {
    let dir = temp_dir("degrade");
    // Generous budget for the cold run: nothing is evicted while the
    // bank is being built.
    let cache = AnalysisCache::with_policy(
        &dir,
        StorePolicy {
            byte_budget: Some(64 << 20),
            ..StorePolicy::default()
        },
    );
    let dev = generate_device(10, 7);
    let cold = funnel(&dev.firmware, &cache);
    assert!(cold.stats.unit_misses > 0, "cold run builds the bank");

    // Warm control: everything replays.
    let warm = funnel(&dev.firmware, &cache);
    assert_eq!(warm.stats.unit_misses, 0);

    // Now evict under a one-byte budget. The GC spares the single
    // freshest artifact; everything else — banks and verdicts alike —
    // is removed.
    let before = cache.tracked_bytes().unwrap();
    let squeezed = AnalysisCache::with_policy(
        &dir,
        StorePolicy {
            byte_budget: Some(1),
            low_watermark: 1.0,
            ..StorePolicy::default()
        },
    );
    // Opening over the high watermark collects immediately; `gc_now`
    // then finds an already-trimmed store. Both paths land in the
    // persisted counters.
    let _ = squeezed.gc_now();
    let stats = squeezed.stats().unwrap();
    assert!(stats.evicted_entries > 0, "eviction must actually fire");
    assert!(stats.reclaimed_bytes > 0 && stats.reclaimed_bytes <= before);

    // The next run degrades: re-executed units are counted as misses,
    // the output is byte-identical, and no error surfaces.
    let after = funnel(&dev.firmware, &cache);
    assert!(
        after.stats.unit_misses + after.stats.verdict_misses > 0,
        "evicted artifacts must be re-derived as misses: {:?}",
        after.stats
    );
    assert_eq!(
        after.stats.unit_hits + after.stats.unit_misses,
        cold.stats.unit_misses,
        "unit population is stable across eviction"
    );
    assert_eq!(
        normalized(&cold.bytes),
        normalized(&after.bytes),
        "re-derived analysis is byte-identical"
    );
    // And the re-derivation refills the store for the following run.
    let refilled = funnel(&dev.firmware, &cache);
    assert_eq!(normalized(&cold.bytes), normalized(&refilled.bytes));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_fleet_survives_eviction_between_passes() {
    let dir = temp_dir("fleet");
    let config = AnalysisConfig::default();
    let devices: Vec<_> = [4u8, 6, 10, 14, 21]
        .iter()
        .map(|&id| generate_device(id, 7))
        .collect();
    let images: Vec<_> = devices.iter().map(|d| &d.firmware).collect();

    // Budget sized to hold roughly half the fleet: the cold pass
    // already evicts its own oldest entries.
    let probe = AnalysisCache::new(&dir);
    let cold_free =
        analyze_corpus_incremental(&images, None, &config, 1, &probe, &mut NullObserver);
    let full_bytes = probe.tracked_bytes();
    assert_eq!(full_bytes, None, "no budget, no accounting");
    let full = probe.stats().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let budget = (full.total_bytes + full.unit_bytes) / 2;
    let cache = AnalysisCache::with_policy(
        &dir,
        StorePolicy {
            shards: 4,
            byte_budget: Some(budget),
            ..StorePolicy::default()
        },
    );
    let cold = analyze_corpus_incremental(&images, None, &config, 1, &cache, &mut NullObserver);
    assert_eq!(cold.stats.misses, images.len() as u64);

    // The warm pass sees a mix of hits and (evicted → re-derived)
    // misses, and every analysis matches the unconstrained run.
    let warm = analyze_corpus_incremental(&images, None, &config, 1, &cache, &mut NullObserver);
    assert_eq!(
        warm.stats.hits + warm.stats.misses,
        images.len() as u64,
        "every image is served"
    );
    assert!(warm.stats.misses > 0, "a half-fleet budget forces misses");
    for (free, constrained) in cold_free.analyses.iter().zip(warm.analyses.iter()) {
        let encode = |a: &firmres::FirmwareAnalysis| {
            let copy = firmres::FirmwareAnalysis {
                executable: a.executable.clone(),
                handlers: a.handlers.clone(),
                messages: a.messages.clone(),
                timings: Default::default(),
                counters: a.counters,
                diagnostics: a.diagnostics.clone(),
            };
            let mut out = Vec::new();
            put_analysis(&mut out, &copy);
            out
        };
        assert_eq!(encode(free), encode(constrained));
    }
    assert!(
        cache.tracked_bytes().unwrap() <= budget,
        "fleet ends at or under budget"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_racing_a_live_funnel_is_harmless() {
    let dir = temp_dir("race");
    let cache = AnalysisCache::with_policy(
        &dir,
        StorePolicy {
            shards: 2,
            byte_budget: Some(1),
            low_watermark: 1.0,
            ..StorePolicy::default()
        },
    );
    let dev = generate_device(10, 7);
    let baseline = normalized(&funnel(&dev.firmware, &cache).bytes);

    // One thread hammers the GC while another splices analyses from
    // whatever artifacts survive each collection. `fs::remove_file` is
    // atomic: a concurrent reader either has the file open (and keeps
    // reading the old bytes) or sees NotFound and re-derives. Either
    // way the output bytes cannot change.
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let gc_cache = cache.clone();
        let stop_ref = &stop;
        let collector = scope.spawn(move || {
            let mut evicted = 0u64;
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                evicted += gc_cache.gc_now().evicted;
                std::thread::yield_now();
            }
            evicted
        });
        for _ in 0..12 {
            let out = funnel(&dev.firmware, &cache);
            assert_eq!(
                normalized(&out.bytes),
                baseline,
                "splicing under concurrent eviction stays byte-identical"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = collector.join().unwrap();
    });
    // Writes self-collect and the GC thread collects concurrently;
    // between them the race must have actually evicted artifacts.
    assert!(
        cache.stats().unwrap().evicted_entries > 0,
        "the race must actually evict artifacts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
