//! Concrete execution of generated device-cloud executables.
//!
//! This module is the *dynamic analysis* side of the reproduction: a host
//! shim (NVRAM/config reads from the firmware image, a tiny cJSON object
//! store, a fixed clock) plus capture helpers that record every payload
//! the firmware hands to a delivery function. It backs two consumers:
//!
//! * **differential testing** — statically reconstructed messages must
//!   match what the firmware actually sends (`tests/differential_emulation.rs`);
//! * **the dynamic baseline** (`firmres-bench --bin baseline_dynamic`) —
//!   quantifying what dynamic capture alone recovers, the paper's §III-B
//!   motivation for going static.

use crate::gen::GeneratedDevice;
use firmres_cloud::json::Json;
use firmres_cloud::mac::derive_signature;
use firmres_isa::{EmuError, Emulator, Executable, Mem};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One payload captured at a delivery callsite during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedMessage {
    /// Delivery import (`SSL_write`, `http_post`, …).
    pub delivery: String,
    /// Separate endpoint argument (MQTT topic / HTTP path), when the
    /// delivery function has one.
    pub endpoint: Option<String>,
    /// The payload string.
    pub payload: String,
}

type Sink = Rc<RefCell<Vec<CapturedMessage>>>;

/// The host shim: firmware-backed environment for emulation.
struct Host {
    nvram: BTreeMap<String, String>,
    config: BTreeMap<String, String>,
    objects: Vec<BTreeMap<String, Json>>,
    sink: Sink,
    /// First request byte handed to `recv` (the dispatch trigger).
    trigger: u8,
}

impl Host {
    fn new(dev: &GeneratedDevice, sink: Sink, trigger: u8) -> Host {
        let nvram = dev
            .firmware
            .nvram()
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut config = BTreeMap::new();
        for key in [
            "server",
            "port",
            "fw_version",
            "model",
            "product_id",
            "device_cert",
            "hw_version",
            "cluster",
            "region",
            "timezone",
        ] {
            if let Some(v) = dev.firmware.config_value(key) {
                config.insert(key.to_string(), v);
            }
        }
        Host {
            nvram,
            config,
            objects: Vec::new(),
            sink,
            trigger,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn call(&mut self, name: &str, args: [u32; 6], mem: &mut Mem) -> u32 {
        match name {
            "nvram_get" => {
                let key = mem.read_cstr(args[0]).unwrap_or_default();
                let v = self.nvram.get(&key).cloned().unwrap_or_default();
                mem.alloc_cstr(&v).unwrap_or(0)
            }
            "cfg_get" => {
                let key = mem.read_cstr(args[0]).unwrap_or_default();
                let v = self.config.get(&key).cloned().unwrap_or_default();
                mem.alloc_cstr(&v).unwrap_or(0)
            }
            "getenv" => mem.alloc_cstr("env-value").unwrap_or(0),
            "time" => 1_751_700_000,
            "rand" => 424_242,
            "get_mac_addr" | "get_serial" | "get_uid" => {
                let key = match name {
                    "get_mac_addr" => "mac",
                    "get_serial" => "serial_no",
                    _ => "uid",
                };
                let v = self.nvram.get(key).cloned().unwrap_or_default();
                let _ = mem.write_cstr(args[0], &v);
                args[0]
            }
            "hmac_sign" => {
                let secret = mem.read_cstr(args[0]).unwrap_or_default();
                let id = self.nvram.get("device_id").cloned().unwrap_or_default();
                mem.alloc_cstr(&derive_signature(&secret, &id)).unwrap_or(0)
            }
            "cJSON_CreateObject" => {
                self.objects.push(BTreeMap::new());
                self.objects.len() as u32 // 1-based handle
            }
            "cJSON_AddStringToObject" => {
                let k = mem.read_cstr(args[1]).unwrap_or_default();
                let v = mem.read_cstr(args[2]).unwrap_or_default();
                if let Some(obj) = self.objects.get_mut(args[0] as usize - 1) {
                    obj.insert(k, Json::Str(v));
                }
                0
            }
            "cJSON_AddNumberToObject" => {
                let k = mem.read_cstr(args[1]).unwrap_or_default();
                if let Some(obj) = self.objects.get_mut(args[0] as usize - 1) {
                    obj.insert(k, Json::Num(args[2] as i64));
                }
                0
            }
            "cJSON_Print" => {
                let obj = self
                    .objects
                    .get(args[0] as usize - 1)
                    .cloned()
                    .unwrap_or_default();
                mem.alloc_cstr(&Json::Obj(obj).to_string()).unwrap_or(0)
            }
            "recv" | "SSL_read" | "read" => {
                // Deliver a single-opcode request: the dispatch trigger.
                let _ = mem.write8(args[1], self.trigger);
                let _ = mem.write8(args[1] + 1, 0);
                1
            }
            "SSL_write" | "send" | "write" => {
                let payload = mem.read_cstr(args[1]).unwrap_or_default();
                self.sink.borrow_mut().push(CapturedMessage {
                    delivery: name.to_string(),
                    endpoint: None,
                    payload,
                });
                0
            }
            "mosquitto_publish" | "mqtt_publish" => {
                let topic = mem.read_cstr(args[1]).unwrap_or_default();
                let payload = mem.read_cstr(args[2]).unwrap_or_default();
                self.sink.borrow_mut().push(CapturedMessage {
                    delivery: name.to_string(),
                    endpoint: Some(topic),
                    payload,
                });
                0
            }
            "http_post" => {
                let path = mem.read_cstr(args[1]).unwrap_or_default();
                let payload = mem.read_cstr(args[2]).unwrap_or_default();
                self.sink.borrow_mut().push(CapturedMessage {
                    delivery: name.to_string(),
                    endpoint: Some(path),
                    payload,
                });
                0
            }
            "http_get" => {
                let path = mem.read_cstr(args[1]).unwrap_or_default();
                self.sink.borrow_mut().push(CapturedMessage {
                    delivery: name.to_string(),
                    endpoint: None,
                    payload: path,
                });
                0
            }
            // Connection/loop stubs: succeed silently. `event_loop`
            // returning immediately models the re-hosting problem — no
            // real events ever arrive during naive emulation.
            "ssl_connect" | "register_callback" | "event_loop" | "puts" => 0,
            _ => 0,
        }
    }
}

fn load_agent(dev: &GeneratedDevice) -> Option<Executable> {
    let path = dev.cloud_executable.as_deref()?;
    dev.firmware.load_executable(path).ok()
}

/// Run one named function of the device-cloud executable and capture the
/// messages it delivers.
///
/// # Errors
///
/// Propagates emulator errors; returns an empty capture when the device
/// has no binary agent.
pub fn run_message_function(
    dev: &GeneratedDevice,
    func: &str,
) -> Result<Vec<CapturedMessage>, EmuError> {
    let Some(exe) = load_agent(dev) else {
        return Ok(Vec::new());
    };
    let sink: Sink = Rc::new(RefCell::new(Vec::new()));
    let mut host = Host::new(dev, Rc::clone(&sink), 0);
    let mut emu = Emulator::new(&exe, |name: &str, args: [u32; 6], mem: &mut Mem| {
        host.call(name, args, mem)
    });
    emu.run_function(func, &[])?;
    let msgs = sink.borrow().clone();
    Ok(msgs)
}

/// Naive dynamic capture: boot the firmware (`main`) and record what it
/// sends. The event loop never fires the cloud handler, so this models
/// what plain emulation observes.
pub fn capture_boot_path(dev: &GeneratedDevice) -> Result<Vec<CapturedMessage>, EmuError> {
    let Some(exe) = load_agent(dev) else {
        return Ok(Vec::new());
    };
    let sink: Sink = Rc::new(RefCell::new(Vec::new()));
    let mut host = Host::new(dev, Rc::clone(&sink), 0);
    let mut emu = Emulator::new(&exe, |name: &str, args: [u32; 6], mem: &mut Mem| {
        host.call(name, args, mem)
    });
    emu.run()?;
    let msgs = sink.borrow().clone();
    Ok(msgs)
}

/// Instrumented dynamic capture: invoke the request handler directly with
/// a chosen trigger byte (requires knowing the handler address and the
/// dispatch protocol — exactly the knowledge dynamic analysis lacks
/// up front). The handler's own ack echo is filtered out.
pub fn capture_with_trigger(
    dev: &GeneratedDevice,
    trigger: u8,
) -> Result<Vec<CapturedMessage>, EmuError> {
    let Some(exe) = load_agent(dev) else {
        return Ok(Vec::new());
    };
    let sink: Sink = Rc::new(RefCell::new(Vec::new()));
    let mut host = Host::new(dev, Rc::clone(&sink), trigger);
    let mut emu = Emulator::new(&exe, |name: &str, args: [u32; 6], mem: &mut Mem| {
        host.call(name, args, mem)
    });
    emu.run_function("on_cloud_request", &[])?;
    let mut msgs = sink.borrow().clone();
    // Drop the handler's own ack (a `send` of the request bytes).
    msgs.retain(|m| m.payload.len() > 4);
    Ok(msgs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_device;

    #[test]
    fn boot_path_sends_nothing() {
        let dev = generate_device(10, 7);
        let msgs = capture_boot_path(&dev).unwrap();
        assert!(
            msgs.is_empty(),
            "the event loop never fires during naive emulation: {msgs:?}"
        );
    }

    #[test]
    fn triggers_reach_individual_messages() {
        let dev = generate_device(10, 7);
        let msgs = capture_with_trigger(&dev, 0).unwrap();
        assert_eq!(msgs.len(), 1, "trigger 0 fires snd_00");
        let none = capture_with_trigger(&dev, 200).unwrap();
        assert!(none.is_empty(), "unknown trigger sends nothing");
    }

    #[test]
    fn fuzzing_all_triggers_covers_all_messages() {
        let dev = generate_device(15, 7);
        let mut captured = 0;
        for t in 0..=255u8 {
            captured += capture_with_trigger(&dev, t).unwrap().len();
        }
        assert_eq!(
            captured,
            dev.plans.len(),
            "every plan reachable by exhaustive fuzzing"
        );
    }

    #[test]
    fn run_message_function_captures_one() {
        let dev = generate_device(11, 7);
        let msgs = run_message_function(&dev, "snd_00").unwrap();
        assert_eq!(msgs.len(), 1);
        assert!(
            msgs[0].payload.contains("/rms/registrations"),
            "{}",
            msgs[0].payload
        );
    }

    #[test]
    fn script_devices_capture_nothing() {
        let dev = generate_device(21, 7);
        assert!(capture_boot_path(&dev).unwrap().is_empty());
    }
}
