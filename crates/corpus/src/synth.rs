//! Seeded synthesis of arbitrarily large corpora.
//!
//! The roster module reproduces the paper's 22 fixed Table I devices;
//! this module scales the same generation machinery to fleets of 1k–10k
//! *sampled* devices for load and capacity testing. Vendor, model,
//! device type, message/field counts, body-style mix, packer layout
//! (agent path, auxiliary-executable subset, filler files), handler
//! topology (single vs split async handlers) and vulnerability mix are
//! all drawn from seeded distributions, so no two indices look alike but
//! every `(index, seed)` pair is fully deterministic — byte-identical
//! across runs, machines, and generation thread counts (each device is a
//! pure function of its own index).
//!
//! Synthetic devices deliberately skip the vendor-cloud emulation: they
//! target the *analysis* path (service load, cache scale), not the probe
//! step. Their ground-truth [`MessagePlan`]s are still attached for
//! scoring.
//!
//! # Examples
//!
//! ```
//! use firmres_corpus::{synth_device, SynthConfig, synth_corpus};
//!
//! let dev = synth_device(42, 7);
//! assert_eq!(dev.packed, synth_device(42, 7).packed, "deterministic");
//! let fleet = synth_corpus(&SynthConfig { count: 4, seed: 7 });
//! assert_eq!(fleet.len(), 4);
//! ```

use crate::asmgen::{
    device_cloud_source_with_libraries, ipc_daemon_source, local_httpd_source, watchdog_source,
    HandlerSpec,
};
use crate::devices::SprintfUsage;
use crate::libroster::ROSTER;
use crate::plan::{
    plan_for_shape, BodyStyle, Delivery, DeviceIdentity, MessagePlan, PlanField, PlanPolicy,
    PlanResponse, PlanShape, ValueSource,
};
use firmres_firmware::{DeviceInfo, DeviceType, FileEntry, FirmwareImage, Nvram};
use firmres_isa::Assembler;
use firmres_semantics::Primitive;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic corpus sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Number of devices (indices `0..count`).
    pub count: u32,
    /// Corpus seed. The same seed regenerates the same fleet.
    pub seed: u64,
}

/// The sampled "spec sheet" of one synthetic device — the distribution
/// draw that shaped its firmware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthSpec {
    /// Device index within the synthetic fleet.
    pub index: u32,
    /// Sampled vendor name.
    pub vendor: String,
    /// Sampled model identifier (unique per index).
    pub model: String,
    /// Sampled device category.
    pub device_type: DeviceType,
    /// Sampled firmware version string.
    pub firmware_version: String,
    /// Sampled message-count target.
    pub target_messages: usize,
    /// Of those, how many land on stale endpoints.
    pub target_invalid: usize,
    /// Sampled total-field target.
    pub target_fields: usize,
    /// Sampled formatted-output style.
    pub sprintf: SprintfUsage,
    /// Path of the device-cloud agent inside the image.
    pub agent_path: String,
    /// Names of the registered async request handlers (1 or 2).
    pub handler_names: Vec<String>,
    /// Number of auxiliary decoy executables packed alongside the agent.
    pub aux_executables: usize,
    /// Number of uninterpreted filler files in the image.
    pub filler_files: usize,
    /// Names of the shared roster libraries this device links (empty
    /// for the plain [`synth_device`] path).
    pub linked_libraries: Vec<String>,
}

/// One fully generated synthetic device.
#[derive(Debug, Clone)]
pub struct SynthDevice {
    /// The sampled spec sheet.
    pub spec: SynthSpec,
    /// Identity material provisioned into NVRAM.
    pub identity: DeviceIdentity,
    /// Ground-truth message plans (for scoring; no cloud is emulated).
    pub plans: Vec<MessagePlan>,
    /// The packed firmware container ([`FirmwareImage::pack`] bytes) —
    /// what gets submitted to the analysis service.
    pub packed: Vec<u8>,
}

impl SynthDevice {
    /// Unpack the firmware container.
    ///
    /// # Panics
    ///
    /// Panics if the self-generated image fails to unpack (a generator
    /// bug, not a runtime condition).
    pub fn unpack(&self) -> FirmwareImage {
        FirmwareImage::unpack(&self.packed).expect("self-generated image unpacks")
    }
}

/// Derive an independent per-device RNG seed. The multiplier spreads
/// consecutive indices across the seed space; `salt` separates the
/// independent streams (identity, shape, plans) of one device.
fn device_seed(seed: u64, index: u32, salt: u64) -> u64 {
    (seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left(17) ^ salt
}

const VENDORS: [&str; 24] = [
    "Altair",
    "BlueRidge",
    "CamVista",
    "Deltanet",
    "EdgePoint",
    "Fenwick",
    "GridLink",
    "Holtek",
    "Ionix",
    "JunoNet",
    "KiteCam",
    "Lumora",
    "Mirafield",
    "NetHaven",
    "Orbiton",
    "PineGate",
    "Quantiq",
    "RoverIoT",
    "SableLink",
    "TideWare",
    "UplinkOne",
    "Vantora",
    "WestCam",
    "Yardley",
];

const MODEL_PREFIXES: [&str; 8] = ["AX", "CR", "DV", "GW", "IR", "NX", "SP", "VT"];

const AGENT_PATHS: [&str; 4] = [
    "/usr/bin/cloud_agent",
    "/usr/sbin/cloudd",
    "/bin/iot_agentd",
    "/usr/bin/devcomm",
];

const HANDLER_NAMES: [&str; 4] = [
    "on_cloud_request",
    "cloud_msg_handler",
    "on_mqtt_message",
    "cloud_dispatch",
];

/// Sample a synthetic identity. Uniqueness is by construction: the MAC,
/// serial, uid and device-id all embed the device index.
fn synth_identity(index: u32, seed: u64) -> DeviceIdentity {
    let mut rng = StdRng::seed_from_u64(device_seed(seed, index, 0x1DE5_711E));
    DeviceIdentity {
        mac: format!(
            "02:5E:{:02X}:{:02X}:{:02X}:{:02X}",
            (index >> 16) as u8,
            (index >> 8) as u8,
            index as u8,
            rng.gen::<u8>()
        ),
        serial: format!("SYN{index:07}{:03}", rng.gen_range(0u32..1000)),
        uid: format!("UID-{index:06}-{:08x}", rng.gen::<u32>()),
        device_id: format!("S{index:07}"),
        secret: format!("sec-{:016x}", rng.gen::<u64>()),
        user: format!("fleetuser{:05}", index),
        password: format!("pw-{:08x}", rng.gen::<u32>()),
        cloud_host: format!("fleet{:02}.cloud.example", index % 20),
    }
}

fn field(key: &str, semantic: Primitive, source: ValueSource) -> PlanField {
    PlanField {
        key: key.into(),
        semantic,
        source,
    }
}

/// Sample `count` vulnerable message plans from parametric templates
/// generalizing the four Table III flaw classes. Indices/function names
/// are placeholders — the planner renumbers them.
fn synth_vuln_plans(rng: &mut StdRng, count: usize, device_code: u8) -> Vec<MessagePlan> {
    let mut out = Vec::with_capacity(count);
    for n in 0..count {
        let kind = rng.gen_range(0..4);
        let p = match kind {
            // Identifier-only business interface (the dominant class).
            0 => {
                let (delivery, style) = match rng.gen_range(0..3) {
                    0 => (Delivery::HttpGet, BodyStyle::SprintfQuery),
                    1 => (Delivery::HttpPost, BodyStyle::SprintfQuery),
                    _ => (Delivery::HttpPost, BodyStyle::StrcatKV),
                };
                let ident = match rng.gen_range(0..3) {
                    0 => field(
                        "deviceId",
                        Primitive::DevIdentifier,
                        ValueSource::NvramGet("device_id".into()),
                    ),
                    1 => field(
                        "uid",
                        Primitive::DevIdentifier,
                        ValueSource::Getter("get_uid"),
                    ),
                    _ => field(
                        "sn",
                        Primitive::DevIdentifier,
                        ValueSource::NvramGet("serial_no".into()),
                    ),
                };
                let mut fields = vec![ident];
                if rng.gen_bool(0.6) {
                    fields.push(field("ts", Primitive::None, ValueSource::Time));
                }
                if rng.gen_bool(0.5) {
                    fields.push(field(
                        "channel",
                        Primitive::None,
                        ValueSource::Hardcoded("0".into()),
                    ));
                }
                let response = match rng.gen_range(0..3) {
                    0 => PlanResponse::ResourceList,
                    1 => PlanResponse::StorageKeys,
                    _ => PlanResponse::Ok,
                };
                MessagePlan {
                    index: n,
                    func_name: format!("snd_{n:02}"),
                    delivery,
                    endpoint: format!("/store/v{}/records/q{n}", device_code % 3 + 1),
                    style,
                    fields,
                    on_cloud: true,
                    lan: false,
                    policy: PlanPolicy::IdentifierOnly,
                    response,
                    functionality: "Querying device resources on the cloud.".into(),
                    consequence: Some(
                        "The endpoint serves any caller that knows the device identifier; \
                         stored resources and metadata leak."
                            .into(),
                    ),
                }
            }
            // Binding without verifying the user credential.
            1 => MessagePlan {
                index: n,
                func_name: format!("snd_{n:02}"),
                delivery: Delivery::SslWrite,
                endpoint: format!("bindDevice{n}"),
                style: BodyStyle::CJson,
                fields: vec![
                    field(
                        "method",
                        Primitive::None,
                        ValueSource::Hardcoded("bindDevice".into()),
                    ),
                    field(
                        "deviceID",
                        Primitive::DevIdentifier,
                        ValueSource::NvramGet("device_id".into()),
                    ),
                    field(
                        "cloudusername",
                        Primitive::UserCred,
                        ValueSource::NvramGet("cloud_user".into()),
                    ),
                    field(
                        "cloudpassword",
                        Primitive::UserCred,
                        ValueSource::NvramGet("cloud_pass".into()),
                    ),
                ],
                on_cloud: true,
                lan: false,
                policy: PlanPolicy::BindNoUserCred,
                response: PlanResponse::BindToken,
                functionality: "Binding the device to the cloud user.".into(),
                consequence: Some(
                    "The binding endpoint never verifies the user credential; attackers bind \
                     victim devices to their own accounts."
                        .into(),
                ),
            },
            // Registration returning a fixed token.
            2 => MessagePlan {
                index: n,
                func_name: format!("snd_{n:02}"),
                delivery: Delivery::HttpPost,
                endpoint: format!("/cloud/registrations/r{n}"),
                style: BodyStyle::CJson,
                fields: vec![
                    field(
                        "serialNumber",
                        Primitive::DevIdentifier,
                        ValueSource::Getter("get_serial"),
                    ),
                    field(
                        "macAddress",
                        Primitive::DevIdentifier,
                        ValueSource::Getter("get_mac_addr"),
                    ),
                    field(
                        "firmwareVersion",
                        Primitive::None,
                        ValueSource::CfgGet("fw_version".into()),
                    ),
                    field(
                        "hardwareVersion",
                        Primitive::None,
                        ValueSource::CfgGet("hw_version".into()),
                    ),
                ],
                on_cloud: true,
                lan: false,
                policy: PlanPolicy::RegisterFixedToken,
                response: PlanResponse::FixedToken,
                functionality: "Registering device to the cloud.".into(),
                consequence: Some(
                    "Registration returns a fixed device token usable to upload tampered \
                     telemetry on the device's behalf."
                        .into(),
                ),
            },
            // Registration leaking the device secret (CVE-2023-2586 shape).
            _ => MessagePlan {
                index: n,
                func_name: format!("snd_{n:02}"),
                delivery: Delivery::SslWrite,
                endpoint: format!("/rms/registrations/r{n}"),
                style: BodyStyle::CJson,
                fields: vec![
                    field(
                        "serial",
                        Primitive::DevIdentifier,
                        ValueSource::Getter("get_serial"),
                    ),
                    field(
                        "mac",
                        Primitive::DevIdentifier,
                        ValueSource::Getter("get_mac_addr"),
                    ),
                ],
                on_cloud: true,
                lan: false,
                policy: PlanPolicy::RegisterLeakSecret,
                response: PlanResponse::DeviceSecret,
                functionality: "Registering device to the management cloud.".into(),
                consequence: Some(
                    "Registration with a leaked serial and MAC returns the device secret, \
                     enabling full impersonation."
                        .into(),
                ),
            },
        };
        out.push(p);
    }
    out
}

/// Generate synthetic device `index` deterministically under `seed`.
///
/// Each device is a pure function of `(index, seed)`: generating a fleet
/// in parallel, in any order, or one index at a time yields the same
/// bytes.
///
/// # Panics
///
/// Panics if internally generated assembly fails to assemble or the
/// packed image fails to re-open — generator bugs, not runtime
/// conditions.
pub fn synth_device(index: u32, seed: u64) -> SynthDevice {
    synth_device_impl(index, seed, &[])
}

/// Generate synthetic device `index` with the seeded library-region
/// dimension: the device links 0–3 shared libraries drawn from the
/// fixed [`ROSTER`](crate::ROSTER), byte-deterministic per
/// `(index, seed)`.
///
/// The library draw comes from its own salted seed stream, so for a
/// device that draws zero links the output is byte-identical to
/// [`synth_device`] — the plain fleet is a strict subset of the
/// library-aware one.
///
/// # Panics
///
/// Panics on internal generator bugs, like [`synth_device`].
pub fn synth_device_with_libraries(index: u32, seed: u64) -> SynthDevice {
    let mut lrng = StdRng::seed_from_u64(device_seed(seed, index, 0x001B_1D05));
    let count = lrng.gen_range(0..=ROSTER.len());
    let mut idxs: Vec<usize> = (0..ROSTER.len()).collect();
    for i in 0..count {
        let j = lrng.gen_range(i..idxs.len());
        idxs.swap(i, j);
    }
    let mut links = idxs[..count].to_vec();
    links.sort_unstable();
    synth_device_impl(index, seed, &links)
}

fn synth_device_impl(index: u32, seed: u64, links: &[usize]) -> SynthDevice {
    let mut rng = StdRng::seed_from_u64(device_seed(seed, index, 0x0005_CA1E));

    // --- spec-sheet draw ---------------------------------------------
    let vendor = VENDORS[rng.gen_range(0..VENDORS.len())].to_string();
    let model = format!(
        "{}{}-{index:05}",
        MODEL_PREFIXES[rng.gen_range(0..MODEL_PREFIXES.len())],
        rng.gen_range(100..1000),
    );
    let device_type = DeviceType::ALL[rng.gen_range(0..DeviceType::ALL.len())];
    let firmware_version = format!(
        "V{}.{}.{}",
        rng.gen_range(1..8),
        rng.gen_range(0..10),
        rng.gen_range(0..100)
    );
    let sprintf = match rng.gen_range(0..10) {
        0..=2 => SprintfUsage::None,
        3..=4 => SprintfUsage::SingleField,
        _ => SprintfUsage::MultiField,
    };
    let target_messages = rng.gen_range(4..=28usize);
    let target_invalid = rng.gen_range(0..=target_messages / 5);
    let target_fields = target_messages * rng.gen_range(4..=10usize) + rng.gen_range(0..8usize);
    // Vulnerability mix: most of the fleet is clean; flawed devices carry
    // one to three weakened endpoints (the Table III shape).
    let vuln_count = match rng.gen_range(0..10) {
        0..=5 => 0,
        6..=7 => 1,
        8 => 2,
        _ => 3,
    };
    let device_code = (index % 90) as u8;
    let seeded = synth_vuln_plans(&mut rng, vuln_count, device_code);
    let fp_open = rng.gen_bool(0.25);
    let fp_custom = rng.gen_bool(0.15);
    let lan_extra = rng.gen_bool(0.25);
    let split_handlers = rng.gen_bool(0.3);
    let agent_path = AGENT_PATHS[rng.gen_range(0..AGENT_PATHS.len())].to_string();
    // Packer layout: which decoy executables ship, and how much inert
    // filler pads the image.
    let with_ipc = rng.gen_bool(0.85);
    let with_httpd = rng.gen_bool(0.7);
    let with_watchdog = rng.gen_bool(0.8);
    let filler_files = rng.gen_range(0..=4usize);

    // --- plans --------------------------------------------------------
    let identity = synth_identity(index, seed);
    let shape = PlanShape {
        device_code,
        device_type,
        sprintf,
        target_messages,
        target_invalid,
        target_fields,
        seeded,
        fp_open,
        fp_custom,
        lan_extra,
    };
    let plans = plan_for_shape(shape, &identity, device_seed(seed, index, 0x9E37));

    // --- handler topology --------------------------------------------
    let first_name = HANDLER_NAMES[rng.gen_range(0..HANDLER_NAMES.len())];
    let handlers: Vec<HandlerSpec> = if split_handlers && plans.len() >= 2 {
        let second_name = loop {
            let n = HANDLER_NAMES[rng.gen_range(0..HANDLER_NAMES.len())];
            if n != first_name {
                break n;
            }
        };
        let split = rng.gen_range(1..plans.len());
        vec![
            HandlerSpec {
                name: first_name.to_string(),
                plans: (0..split).collect(),
            },
            HandlerSpec {
                name: second_name.to_string(),
                plans: (split..plans.len()).collect(),
            },
        ]
    } else {
        vec![HandlerSpec {
            name: first_name.to_string(),
            plans: (0..plans.len()).collect(),
        }]
    };
    let handler_names: Vec<String> = handlers.iter().map(|h| h.name.clone()).collect();

    // --- firmware -----------------------------------------------------
    let mut fw = FirmwareImage::new(DeviceInfo {
        vendor: vendor.clone(),
        model: model.clone(),
        device_type,
        firmware_version: firmware_version.clone(),
    });
    let token = format!("tok-{:016x}", rng.gen::<u64>());
    let mut nv = Nvram::new();
    nv.set("mac", &identity.mac);
    nv.set("serial_no", &identity.serial);
    nv.set("device_id", &identity.device_id);
    nv.set("uid", &identity.uid);
    nv.set("device_secret", &identity.secret);
    nv.set("access_token", &token);
    nv.set("cloud_user", &identity.user);
    nv.set("cloud_pass", &identity.password);
    nv.set("cloud_host", &identity.cloud_host);
    nv.set("ssid", format!("Fleet-AP-{index:05}"));
    nv.set("watchdog_enabled", "1");
    fw.add_file("/etc/nvram.default", FileEntry::NvramDefaults(nv));
    fw.add_file(
        "/etc/config/cloud.conf",
        FileEntry::Config(format!(
            "server={}\nport=443\nfw_version={}\nmodel={}\nproduct_id=P-S{index}\n\
             device_cert={}\nhw_version=rev{}\ncluster=c{}\nregion=eu-west\ntimezone=UTC+1\n",
            identity.cloud_host,
            firmware_version,
            model,
            identity.secret,
            rng.gen_range(1..4),
            index % 8,
        )),
    );
    fw.add_file(
        "/etc/ssl/device.pem",
        FileEntry::Cert(format!(
            "-----BEGIN DEVICE CERT-----\n{}\n-----END-----\n",
            identity.secret
        )),
    );

    let assembler = Assembler::new();
    let src = device_cloud_source_with_libraries(&identity, &plans, &handlers, links);
    let exe = assembler
        .assemble(&src)
        .unwrap_or_else(|e| panic!("synthetic device {index} agent failed to assemble: {e}"));
    fw.add_file(&agent_path, FileEntry::Executable(exe.to_bytes().to_vec()));

    type AuxSource = fn() -> String;
    let mut aux_executables = 0;
    let aux: [(&str, AuxSource, bool); 3] = [
        ("/usr/bin/ipc_daemon", ipc_daemon_source, with_ipc),
        ("/usr/sbin/httpd_local", local_httpd_source, with_httpd),
        ("/sbin/watchdog", watchdog_source, with_watchdog),
    ];
    for (path, source, present) in aux {
        if !present {
            continue;
        }
        let exe = assembler
            .assemble(&source())
            .unwrap_or_else(|e| panic!("aux executable {path} failed to assemble: {e}"));
        fw.add_file(path, FileEntry::Executable(exe.to_bytes().to_vec()));
        aux_executables += 1;
    }
    for k in 0..filler_files {
        let mut blob = vec![0u8; rng.gen_range(64..512usize)];
        for b in blob.iter_mut() {
            *b = rng.gen::<u8>();
        }
        fw.add_file(format!("/usr/share/res/blob{k}.bin"), FileEntry::Data(blob));
    }

    let packed = fw.pack().to_vec();
    // Round-trip through the wire format so a generator regression that
    // breaks unpacking fails here, not at submit time.
    let _ = FirmwareImage::unpack(&packed).expect("self-generated image unpacks");

    SynthDevice {
        spec: SynthSpec {
            index,
            vendor,
            model,
            device_type,
            firmware_version,
            target_messages,
            target_invalid,
            target_fields,
            sprintf,
            agent_path,
            handler_names,
            aux_executables,
            filler_files,
            linked_libraries: links.iter().map(|&k| ROSTER[k].name.to_string()).collect(),
        },
        identity,
        plans,
        packed,
    }
}

/// Generate the full synthetic fleet `0..config.count` sequentially.
///
/// Devices are independent: for parallel generation, map
/// [`synth_device`] over indices with any thread pool (e.g.
/// `firmres::run_pool`) — the output bytes do not depend on scheduling.
pub fn synth_corpus(config: &SynthConfig) -> Vec<SynthDevice> {
    (0..config.count)
        .map(|i| synth_device(i, config.seed))
        .collect()
}

/// Generate the full library-aware synthetic fleet `0..config.count`
/// sequentially (the [`synth_device_with_libraries`] dimension; devices
/// remain independent and byte-deterministic per index).
pub fn synth_corpus_with_libraries(config: &SynthConfig) -> Vec<SynthDevice> {
    (0..config.count)
        .map(|i| synth_device_with_libraries(i, config.seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_isa::lift;

    #[test]
    fn synthesis_is_byte_deterministic() {
        for index in [0u32, 1, 7, 991] {
            let a = synth_device(index, 13);
            let b = synth_device(index, 13);
            assert_eq!(a.packed, b.packed, "index {index}");
            assert_eq!(a.plans, b.plans);
            assert_eq!(a.spec, b.spec);
        }
    }

    #[test]
    fn different_seeds_and_indices_differ() {
        let a = synth_device(3, 1);
        let b = synth_device(3, 2);
        let c = synth_device(4, 1);
        assert_ne!(a.packed, b.packed, "seed changes the device");
        assert_ne!(a.packed, c.packed, "index changes the device");
        assert_ne!(a.identity.mac, c.identity.mac);
    }

    #[test]
    fn fleet_devices_assemble_and_lift() {
        for index in 0..24u32 {
            let dev = synth_device(index, 7);
            let fw = dev.unpack();
            let exe = fw.load_executable(&dev.spec.agent_path).unwrap();
            let prog = lift(&exe, "agent").unwrap();
            for name in &dev.spec.handler_names {
                assert!(
                    prog.function_by_name(name).is_some(),
                    "index {index} handler {name}"
                );
            }
            assert!(!dev.plans.is_empty(), "every synthetic device has messages");
        }
    }

    #[test]
    fn split_topology_appears_and_covers_all_plans() {
        let mut saw_split = false;
        for index in 0..32u32 {
            let dev = synth_device(index, 7);
            if dev.spec.handler_names.len() == 2 {
                saw_split = true;
                assert_ne!(dev.spec.handler_names[0], dev.spec.handler_names[1]);
            }
        }
        assert!(saw_split, "~30% of devices should split handlers");
    }

    #[test]
    fn vulnerability_mix_is_present_but_minority() {
        let fleet = synth_corpus(&SynthConfig { count: 64, seed: 7 });
        let flawed = fleet
            .iter()
            .filter(|d| d.plans.iter().any(|p| p.is_vulnerable()))
            .count();
        assert!(flawed > 0, "some devices carry weakened endpoints");
        assert!(flawed < 40, "most of the fleet is clean");
        for d in &fleet {
            for p in &d.plans {
                if matches!(p.style, BodyStyle::SprintfQuery | BodyStyle::SprintfJson) {
                    assert!(
                        p.fields.len() <= 4,
                        "sprintf budget, index {}",
                        d.spec.index
                    );
                }
                if p.is_vulnerable() {
                    assert!(p.consequence.is_some());
                }
            }
        }
    }

    #[test]
    fn library_dimension_is_deterministic_and_zero_links_match_plain() {
        let mut linked_any = false;
        let mut unlinked_any = false;
        for index in 0..24u32 {
            let a = synth_device_with_libraries(index, 13);
            let b = synth_device_with_libraries(index, 13);
            assert_eq!(a.packed, b.packed, "index {index}");
            assert_eq!(a.spec.linked_libraries, b.spec.linked_libraries);
            if a.spec.linked_libraries.is_empty() {
                unlinked_any = true;
                let plain = synth_device(index, 13);
                assert_eq!(
                    a.packed, plain.packed,
                    "zero links is byte-identical to the plain fleet (index {index})"
                );
            } else {
                linked_any = true;
                assert!(a.spec.linked_libraries.len() <= ROSTER.len());
            }
        }
        assert!(linked_any, "some devices link libraries");
        assert!(unlinked_any, "some devices stay plain");
    }

    #[test]
    fn linked_devices_carry_roster_functions_at_stable_addresses() {
        use std::collections::BTreeMap;
        let mut seen: BTreeMap<String, u64> = BTreeMap::new();
        let mut devices_checked = 0;
        for index in 0..24u32 {
            let dev = synth_device_with_libraries(index, 13);
            if dev.spec.linked_libraries.is_empty() {
                continue;
            }
            devices_checked += 1;
            let fw = dev.unpack();
            let exe = fw.load_executable(&dev.spec.agent_path).unwrap();
            let prog = lift(&exe, "agent").unwrap();
            for lib in ROSTER
                .iter()
                .filter(|l| dev.spec.linked_libraries.contains(&l.name.to_string()))
            {
                for name in [lib.pack_fn, lib.fmt_fn] {
                    let f = prog.function_by_name(name).unwrap_or_else(|| {
                        panic!("index {index} links {} but lacks {name}", lib.name)
                    });
                    let prev = seen.insert(name.to_string(), f.entry());
                    if let Some(p) = prev {
                        assert_eq!(p, f.entry(), "{name} address is fleet-stable");
                    }
                }
            }
        }
        assert!(devices_checked > 0, "the 24-device sample links something");
    }

    #[test]
    fn packer_layout_varies() {
        let fleet = synth_corpus(&SynthConfig { count: 32, seed: 7 });
        let paths: std::collections::BTreeSet<_> =
            fleet.iter().map(|d| d.spec.agent_path.clone()).collect();
        assert!(paths.len() > 1, "agent path varies");
        let aux: std::collections::BTreeSet<_> =
            fleet.iter().map(|d| d.spec.aux_executables).collect();
        assert!(aux.len() > 1, "aux subset varies");
    }
}
