//! The shared-library roster of the synthetic fleet.
//!
//! Real fleets share large third-party regions (zlib, cJSON, OpenSSL …);
//! the synthetic corpus models that with a fixed roster of three small
//! "libraries", each contributing a buffer-packing helper and a
//! value-formatting helper. A synthetic device links 0–3 roster
//! libraries (seeded, per `(index, seed)`), and `firmres-libid` indexes
//! the same roster from standalone fixture sources — so the fleet
//! actually exercises known-library identification end to end.
//!
//! # Address stability
//!
//! `function_content_hash` covers the function's entry address, so a
//! roster function only hash-matches the index if it sits at the *same*
//! address in every linking device and in the standalone fixture. The
//! emitter guarantees that by always emitting **all** roster slots, in
//! roster order, at the very top of the executable: linked libraries
//! keep their real names; unlinked slots become `__pad<N>` decoys with
//! byte-identical instruction streams (the name only lives in the
//! symbol table, so code addresses never move). Decoys hash differently
//! (the name is hashed), are skipped by the index builder, and are dead
//! code — no handler calls them.
//!
//! # Recordability
//!
//! Library bodies are deliberately built from the recorder's sound
//! subset: straight-line code, imports only (no internal calls, no `la`
//! data references, no constants at or above the data base), and every
//! value chain threads a *distinct* run of stack slots, so no role ever
//! trips a duplicate guard key. Chains are long on purpose — that is
//! the traversal cost the summary replay skips.

use std::fmt::Write as _;

/// One roster library: index metadata plus the shape parameters of its
/// two functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RosterLib {
    /// Library name (also the fixture file stem prefix).
    pub name: &'static str,
    /// Version string (fixture files are named `<name>-<version>.s`).
    pub version: &'static str,
    /// Buffer-packing helper: `fn(dst, src)` appends `src` (and two
    /// constant runs) into the `dst` buffer via `strcat`.
    pub pack_fn: &'static str,
    /// Formatting helper: `fn(val)` derives its return value from
    /// `val` through one or more `hmac_sign` rounds.
    pub fmt_fn: &'static str,
    /// NVRAM key whose value the injected pack call threads through.
    pub nv_key: &'static str,
    /// Config key whose value the injected fmt call threads through.
    pub cfg_key: &'static str,
    /// JSON field key used when a cJSON-style body routes the fmt
    /// result into the object.
    pub field_key: &'static str,
    /// Stack slots in the pack helper's parameter chain.
    pack_param_slots: usize,
    /// `(li constant, slots)` of the pack helper's two constant runs.
    pack_const: [(u32, usize); 2],
    /// Stack slots in the fmt helper's parameter chain.
    fmt_slots: usize,
    /// `li` constants of the fmt helper's `hmac_sign` rounds (one
    /// round per constant, chained through `rv`).
    fmt_rounds: &'static [u32],
    /// Dead straight-line ops emitted in each helper body. Library
    /// regions in real firmware are dominated by code the taint walk
    /// never lands on, yet every region guard's write scan still has to
    /// sweep it; the ballast models that, so summary replay (which
    /// skips the scans wholesale) shows its real advantage.
    ballast: usize,
}

/// The fixed roster. Order defines the slot layout; every device and
/// fixture emits these in exactly this order.
pub const ROSTER: [RosterLib; 3] = [
    RosterLib {
        name: "zbuf",
        version: "1.4",
        pack_fn: "zb_pack",
        fmt_fn: "zb_crc",
        nv_key: "device_id",
        cfg_key: "fw_version",
        field_key: "zbTag",
        pack_param_slots: 8,
        pack_const: [(17, 4), (99, 4)],
        fmt_slots: 6,
        fmt_rounds: &[11, 12],
        ballast: 520,
    },
    RosterLib {
        name: "jfmt",
        version: "0.9",
        pack_fn: "jf_pack",
        fmt_fn: "jf_sign",
        nv_key: "serial_no",
        cfg_key: "hw_version",
        field_key: "jfSig",
        pack_param_slots: 6,
        pack_const: [(7, 3), (23, 3)],
        fmt_slots: 8,
        fmt_rounds: &[5],
        ballast: 600,
    },
    RosterLib {
        name: "cstr",
        version: "2.1",
        pack_fn: "cs_cat",
        fmt_fn: "cs_tag",
        nv_key: "uid",
        cfg_key: "model",
        field_key: "csTag",
        pack_param_slots: 10,
        pack_const: [(42, 3), (61, 3)],
        fmt_slots: 4,
        fmt_rounds: &[3, 4, 6],
        ballast: 560,
    },
];

/// Emit `.local` declarations for one slot-chain prefix.
fn emit_chain_locals(out: &mut String, prefix: &str, slots: usize) {
    for i in 0..slots {
        let _ = writeln!(out, ".local {prefix}{i} 4");
    }
}

/// Store `from` into slot 0, hop it through every slot, load the last
/// slot into `to`. Each hop is a `lw`/`sw` round trip — the def-use
/// shape that makes library bodies expensive to traverse.
fn emit_chain(out: &mut String, from: &str, prefix: &str, slots: usize, to: &str) {
    let _ = writeln!(out, "    sw  {from}, {prefix}0(sp)");
    for i in 0..slots - 1 {
        let _ = writeln!(out, "    lw  t0, {prefix}{i}(sp)");
        let _ = writeln!(out, "    sw  t0, {prefix}{}(sp)", i + 1);
    }
    let _ = writeln!(out, "    lw  {to}, {prefix}{}(sp)", slots - 1);
}

/// Emit the library's dead ballast: a straight-line dependent compute
/// run on `t2`, flushed into a single dead slot. Never on any taint
/// path (so it adds no tree nodes and no script steps), but every
/// region guard the traversal opens in this function must scan past it.
fn emit_ballast(out: &mut String, lib: &RosterLib) {
    let _ = writeln!(out, ".local bz 4");
    let _ = writeln!(out, "    li  t2, 5");
    for i in 0..lib.ballast {
        match i % 4 {
            0 => {
                let _ = writeln!(out, "    addi t2, t2, 3");
            }
            1 => {
                let _ = writeln!(out, "    xor t2, t2, t2");
            }
            2 => {
                let _ = writeln!(out, "    add t2, t2, t2");
            }
            _ => {
                let _ = writeln!(out, "    sw  t2, bz(sp)");
            }
        }
    }
}

/// Emit the pack helper under `name`: `fn(dst, src)` — the `src` chain
/// plus two constant runs, each `strcat`ed into `dst` (held in `a0`
/// throughout; imports only write `rv`).
fn emit_pack_fn(out: &mut String, lib: &RosterLib, name: &str) {
    let _ = writeln!(out, ".func {name} dst src");
    emit_chain_locals(out, "pp", lib.pack_param_slots);
    emit_chain_locals(out, "ca", lib.pack_const[0].1);
    emit_chain_locals(out, "cb", lib.pack_const[1].1);
    emit_ballast(out, lib);
    emit_chain(out, "a1", "pp", lib.pack_param_slots, "a1");
    let _ = writeln!(out, "    callx strcat");
    for ((value, slots), prefix) in lib.pack_const.iter().zip(["ca", "cb"]) {
        let _ = writeln!(out, "    li  t1, {value}");
        emit_chain(out, "t1", prefix, *slots, "a1");
        let _ = writeln!(out, "    callx strcat");
    }
    let _ = writeln!(out, "    ret");
    let _ = writeln!(out, ".endfunc");
    out.push('\n');
}

/// Emit the fmt helper under `name`: `fn(val)` — chain the parameter,
/// then derive `rv` through the library's `hmac_sign` rounds.
fn emit_fmt_fn(out: &mut String, lib: &RosterLib, name: &str) {
    let _ = writeln!(out, ".func {name} val");
    emit_chain_locals(out, "fc", lib.fmt_slots);
    emit_ballast(out, lib);
    emit_chain(out, "a0", "fc", lib.fmt_slots, "a0");
    for (i, round) in lib.fmt_rounds.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out, "    mov a0, rv");
        }
        let _ = writeln!(out, "    li  a1, {round}");
        let _ = writeln!(out, "    callx hmac_sign");
    }
    let _ = writeln!(out, "    ret");
    let _ = writeln!(out, ".endfunc");
    out.push('\n');
}

/// Emit every roster slot in roster order. `linked[k]` keeps library
/// `k`'s real names; unlinked slots emit `__pad<N>` decoys with the
/// identical instruction stream.
pub fn emit_roster(out: &mut String, linked: &[bool; ROSTER.len()]) {
    for (k, lib) in ROSTER.iter().enumerate() {
        let (pack, fmt);
        let (pack_name, fmt_name) = if linked[k] {
            (lib.pack_fn, lib.fmt_fn)
        } else {
            pack = format!("__pad{}", 2 * k);
            fmt = format!("__pad{}", 2 * k + 1);
            (pack.as_str(), fmt.as_str())
        };
        emit_pack_fn(out, lib, pack_name);
        emit_fmt_fn(out, lib, fmt_name);
    }
}

/// Standalone fixture source for roster library `k`: the full roster
/// layout with only library `k` real-named (so its functions sit at
/// the same addresses as in any linking device), plus a stub `main`.
/// `libid build` indexes the real functions and skips the `__pad`
/// decoys and `main`.
///
/// # Panics
///
/// Panics if `k` is out of roster range.
pub fn library_fixture_source(k: usize) -> String {
    assert!(k < ROSTER.len(), "roster has {} libraries", ROSTER.len());
    let mut out = String::new();
    let mut linked = [false; ROSTER.len()];
    linked[k] = true;
    emit_roster(&mut out, &linked);
    out.push_str(".func main\n    halt\n.endfunc\n");
    out
}

/// Fixture file name for roster library `k` (`<name>-<version>.s`).
pub fn library_fixture_file(k: usize) -> String {
    format!("{}-{}.s", ROSTER[k].name, ROSTER[k].version)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_isa::{lift, Assembler};

    #[test]
    fn fixtures_assemble_and_layouts_are_address_stable() {
        let mut entries: Vec<Vec<(String, u64)>> = Vec::new();
        for k in 0..ROSTER.len() {
            let exe = Assembler::new()
                .assemble(&library_fixture_source(k))
                .unwrap_or_else(|e| panic!("fixture {k} assembles: {e}"));
            let p = lift(&exe, "fixture").unwrap();
            entries.push(
                p.functions()
                    .map(|f| (f.name().to_string(), f.entry()))
                    .collect(),
            );
        }
        // Same slot layout in every fixture: addresses agree pairwise,
        // names differ only between real and decoy slots.
        for w in entries.windows(2) {
            let addrs = |v: &Vec<(String, u64)>| v.iter().map(|(_, a)| *a).collect::<Vec<_>>();
            assert_eq!(addrs(&w[0]), addrs(&w[1]), "slot addresses are fixed");
        }
        for (k, lib) in ROSTER.iter().enumerate() {
            let names: Vec<&str> = entries[k].iter().map(|(n, _)| n.as_str()).collect();
            assert!(names.contains(&lib.pack_fn), "{names:?}");
            assert!(names.contains(&lib.fmt_fn), "{names:?}");
        }
    }

    #[test]
    fn roster_functions_record_cleanly() {
        use firmres_dataflow::TaintEngine;
        for (k, lib) in ROSTER.iter().enumerate() {
            let exe = Assembler::new()
                .assemble(&library_fixture_source(k))
                .unwrap();
            let p = lift(&exe, "fixture").unwrap();
            let recorder = TaintEngine::new(&p);
            for name in [lib.pack_fn, lib.fmt_fn] {
                let f = p.function_by_name(name).unwrap();
                let scripts = recorder.record_lib_function(f.entry()).unwrap();
                assert!(
                    scripts.rejected.is_empty(),
                    "{name}: {:?}",
                    scripts.rejected
                );
                assert!(!scripts.is_empty(), "{name} records at least one role");
            }
        }
    }
}
