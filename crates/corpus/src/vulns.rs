//! The seeded vulnerabilities of paper Table III.
//!
//! Each entry reproduces one row: the device, the functionality, the
//! endpoint and parameters, and the consequence. The corresponding cloud
//! endpoints are generated with deliberately weakened policies so the
//! probe step rediscovers them. Device 11's registration row is the
//! *known* vulnerability (CVE-2023-2586); the rest model the paper's 13
//! previously-unknown findings.

use crate::plan::{
    BodyStyle, Delivery, MessagePlan, PlanField, PlanPolicy, PlanResponse, ValueSource,
};
use firmres_semantics::Primitive;

fn f(key: &str, semantic: Primitive, source: ValueSource) -> PlanField {
    PlanField {
        key: key.into(),
        semantic,
        source,
    }
}

fn ident(key: &str) -> PlanField {
    let source = match key {
        "mac" | "macAddress" => ValueSource::Getter("get_mac_addr"),
        "serialNumber" | "serialNo" | "serial" => ValueSource::Getter("get_serial"),
        "uid" | "vuid" => ValueSource::Getter("get_uid"),
        _ => ValueSource::NvramGet("device_id".into()),
    };
    f(key, Primitive::DevIdentifier, source)
}

fn meta(key: &str) -> PlanField {
    let source = match key {
        "firmwareVersion" | "version" | "sdkver" => ValueSource::CfgGet("fw_version".into()),
        "hardwareVersion" => ValueSource::CfgGet("hw_version".into()),
        "start_time" | "alarm_time" | "date" | "begin" | "end" => ValueSource::Time,
        "log" | "img" | "code" => ValueSource::GetEnv(format!("{}_DATA", key.to_ascii_uppercase())),
        _ => ValueSource::Hardcoded(format!("{key}-v")),
    };
    f(key, Primitive::None, source)
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn plan(
    _device: u8,
    n: usize,
    delivery: Delivery,
    endpoint: &str,
    style: BodyStyle,
    fields: Vec<PlanField>,
    policy: PlanPolicy,
    response: PlanResponse,
    functionality: &str,
    consequence: &str,
) -> MessagePlan {
    MessagePlan {
        index: n,
        func_name: format!("snd_{n:02}"),
        delivery,
        endpoint: endpoint.to_string(),
        style,
        fields,
        on_cloud: true,
        lan: false,
        policy,
        response,
        functionality: functionality.to_string(),
        consequence: Some(consequence.to_string()),
    }
}

/// The vulnerable message plans for a device (empty for devices without
/// Table III rows).
pub fn vulnerable_plans(device: u8) -> Vec<MessagePlan> {
    match device {
        // Linksys (device 5): fixed registration token + log upload.
        5 => vec![
            plan(
                5,
                0,
                Delivery::HttpPost,
                "/cloud/registrations",
                BodyStyle::CJson,
                vec![
                    ident("serialNumber"),
                    ident("macAddress"),
                    f("modelNumber", Primitive::None, ValueSource::CfgGet("model".into())),
                    f("uuid", Primitive::DevIdentifier, ValueSource::NvramGet("device_id".into())),
                    meta("hardwareVersion"),
                    meta("firmwareVersion"),
                    f(
                        "manufacturingDate",
                        Primitive::None,
                        ValueSource::Hardcoded("2021-11-02".into()),
                    ),
                ],
                PlanPolicy::RegisterFixedToken,
                PlanResponse::FixedToken,
                "Registering device to the cloud.",
                "It returns a fixed device token, which can be used to upload tampered system information and crash logs to the cloud.",
            ),
            plan(
                5,
                1,
                Delivery::HttpPost,
                "/cloud/logs",
                BodyStyle::CJson,
                vec![
                    f("uploadSubType", Primitive::None, ValueSource::Hardcoded("crash".into())),
                    meta("firmwareVersion"),
                    ident("serialNo"),
                    ident("macAddress"),
                    meta("hardwareVersion"),
                    f("uploadType", Primitive::None, ValueSource::Hardcoded("systemlog".into())),
                    f("deviceToken", Primitive::BindToken, ValueSource::NvramGet("access_token".into())),
                ],
                PlanPolicy::IdentifierOnly,
                PlanResponse::Ok,
                "Uploading crash logs.",
                "Attackers upload fake crash logs to trick users.",
            ),
        ],
        // TP-Link camera (device 2): fake binding + share list.
        2 => vec![
            plan(
                2,
                0,
                Delivery::SslWrite,
                "bindDevice",
                BodyStyle::CJson,
                vec![
                    f("method", Primitive::None, ValueSource::Hardcoded("bindDevice".into())),
                    f("deviceID", Primitive::DevIdentifier, ValueSource::NvramGet("device_id".into())),
                    f("cloudusername", Primitive::UserCred, ValueSource::NvramGet("cloud_user".into())),
                    f("cloudpassword", Primitive::UserCred, ValueSource::NvramGet("cloud_pass".into())),
                ],
                PlanPolicy::BindNoUserCred,
                PlanResponse::BindToken,
                "Binding the device to the cloud user.",
                "Attackers can bind the device to the accounts by sending a fake binding request.",
            ),
            plan(
                2,
                1,
                Delivery::SslWrite,
                "getShareIDList",
                BodyStyle::CJson,
                vec![
                    f("method", Primitive::None, ValueSource::Hardcoded("getShareIDList".into())),
                    f("deviceID", Primitive::DevIdentifier, ValueSource::NvramGet("device_id".into())),
                ],
                PlanPolicy::IdentifierOnly,
                PlanResponse::ResourceList,
                "Acquiring the shareID list of the device.",
                "ShareID list can be used to obtain the shared information about the device.",
            ),
        ],
        // Cubetoou camera (device 17): three uid-only interfaces.
        17 => vec![
            plan(
                17,
                0,
                Delivery::HttpGet,
                "/camera-cgi",
                BodyStyle::SprintfQuery,
                vec![
                    f("m", Primitive::None, ValueSource::Hardcoded("cloud".into())),
                    f("a", Primitive::None, ValueSource::Hardcoded("queryServices".into())),
                    ident("uid"),
                ],
                PlanPolicy::IdentifierOnly,
                PlanResponse::ResourceList,
                "Checking the availability of the cloud storage service.",
                "Privacy information leakage.",
            ),
            plan(
                17,
                1,
                Delivery::HttpPost,
                "/camera-cgi-crash",
                BodyStyle::SprintfQuery,
                vec![
                    f("m", Primitive::None, ValueSource::Hardcoded("camera".into())),
                    f("a", Primitive::None, ValueSource::Hardcoded("crash_report".into())),
                    ident("uid"),
                    meta("version"),
                ],
                PlanPolicy::IdentifierOnly,
                PlanResponse::Ok,
                "Uploading crash logs.",
                "After a successful upload, the device crashes and loses its connection.",
            ),
            plan(
                17,
                2,
                Delivery::HttpPost,
                "/camera-cgi-alarm",
                BodyStyle::StrcatKV,
                vec![
                    f("m", Primitive::None, ValueSource::Hardcoded("camera_alarm".into())),
                    f("a", Primitive::None, ValueSource::Hardcoded("camera_pic_alarm".into())),
                    ident("uid"),
                    meta("alarm_time"),
                    meta("lang"),
                    meta("img"),
                ],
                PlanPolicy::IdentifierOnly,
                PlanResponse::Ok,
                "Pushing monitor alert.",
                "Attackers push false alerts to victim users.",
            ),
        ],
        // DF-iCam camera (device 18).
        18 => vec![
            plan(
                18,
                0,
                Delivery::HttpPost,
                "/auth/get_bind_params",
                BodyStyle::SprintfQuery,
                vec![
                    f("userid", Primitive::UserCred, ValueSource::NvramGet("cloud_user".into())),
                    ident("mac"),
                    meta("sdkver"),
                ],
                PlanPolicy::IdentifierOnly,
                PlanResponse::BindToken,
                "Obtaining binding information.",
                "Privacy information leakage.",
            ),
            plan(
                18,
                1,
                Delivery::HttpPost,
                "/app/device/save_video/report",
                BodyStyle::SprintfQuery,
                vec![
                    meta("start_time"),
                    meta("code"),
                    f("userid", Primitive::UserCred, ValueSource::NvramGet("cloud_user".into())),
                    ident("mac"),
                ],
                PlanPolicy::IdentifierOnly,
                PlanResponse::ResourceList,
                "Retrieving stored video records.",
                "Privacy information leakage.",
            ),
        ],
        // VStarcam (device 19).
        19 => vec![plan(
            19,
            0,
            Delivery::HttpPost,
            "/change",
            BodyStyle::SprintfQuery,
            vec![ident("vuid"), meta("code"), f("cluster", Primitive::None, ValueSource::CfgGet("cluster".into()))],
            PlanPolicy::IdentifierOnly,
            PlanResponse::Ok,
            "Changing the device ID.",
            "Information tampering.",
        )],
        // RUISION camera (device 20): storage trio.
        20 => vec![
            plan(
                20,
                0,
                Delivery::HttpGet,
                "/store-server/api/v1/storages/status",
                BodyStyle::SprintfQuery,
                vec![
                    f("deviceId", Primitive::DevIdentifier, ValueSource::NvramGet("device_id".into())),
                    meta("channel"),
                ],
                PlanPolicy::IdentifierOnly,
                PlanResponse::ResourceList,
                "Querying the cloud storage services of the device.",
                "Privacy information leakage.",
            ),
            plan(
                20,
                1,
                Delivery::HttpPost,
                "/store-server/api/v1/storages/auth",
                BodyStyle::SprintfQuery,
                vec![f("deviceId", Primitive::DevIdentifier, ValueSource::NvramGet("device_id".into()))],
                PlanPolicy::IdentifierOnly,
                PlanResponse::StorageKeys,
                "Authenticating the device to the cloud storage server.",
                "The cloud returns access-key and secret-key used to upload videos to the cloud.",
            ),
            plan(
                20,
                2,
                Delivery::HttpGet,
                "/store-server/api/v1/storages/files",
                BodyStyle::SprintfQuery,
                vec![
                    f("deviceId", Primitive::DevIdentifier, ValueSource::NvramGet("device_id".into())),
                    meta("channel"),
                    f("stream", Primitive::None, ValueSource::Hardcoded("main".into())),
                    meta("date"),
                ],
                PlanPolicy::IdentifierOnly,
                PlanResponse::ResourceList,
                "Querying the videos stored on the cloud.",
                "The cloud returns video information and download paths for the queried time period.",
            ),
        ],
        // Teltonika RUT241 (device 11): the *known* CVE-2023-2586 pattern —
        // registration with serial+MAC returns the device certificate.
        11 => vec![plan(
            11,
            0,
            Delivery::SslWrite,
            "/rms/registrations",
            BodyStyle::CJson,
            vec![ident("serial"), ident("mac")],
            PlanPolicy::RegisterLeakSecret,
            PlanResponse::DeviceSecret,
            "Registering device to the RMS cloud.",
            "Registration with leaked serial and MAC returns the device certificate, enabling full impersonation (known vulnerability, CVE-2023-2586).",
        )],
        _ => Vec::new(),
    }
}

/// Total number of seeded vulnerable interfaces (paper: 14 = 13 unknown +
/// 1 known).
pub fn total_vulnerabilities() -> usize {
    (1..=22u8).map(|d| vulnerable_plans(d).len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_vulnerabilities_across_eight_devices() {
        assert_eq!(total_vulnerabilities(), 14);
        let devices: Vec<u8> = (1..=22)
            .filter(|d| !vulnerable_plans(*d).is_empty())
            .collect();
        assert_eq!(
            devices,
            vec![2, 5, 11, 17, 18, 19, 20],
            "7 devices with seeded rows"
        );
        // Paper: 14 vulns in 8 devices; our device 5 carries two rows on
        // one cloud, so the count lands on 7 synthetic clouds. Documented
        // in EXPERIMENTS.md.
    }

    #[test]
    fn all_vulnerable_plans_have_consequences_and_flawed_policies() {
        for d in 1..=22u8 {
            for p in vulnerable_plans(d) {
                assert!(p.is_vulnerable(), "{d}/{}", p.func_name);
                assert!(p.consequence.is_some());
                assert!(p.on_cloud);
            }
        }
    }

    #[test]
    fn device11_is_the_known_cve() {
        let plans = vulnerable_plans(11);
        assert_eq!(plans.len(), 1);
        assert!(plans[0]
            .consequence
            .as_ref()
            .unwrap()
            .contains("CVE-2023-2586"));
        assert_eq!(plans[0].policy, PlanPolicy::RegisterLeakSecret);
    }

    #[test]
    fn sprintf_vuln_plans_stay_within_arg_budget() {
        for d in 1..=22u8 {
            for p in vulnerable_plans(d) {
                if matches!(p.style, BodyStyle::SprintfQuery | BodyStyle::SprintfJson) {
                    assert!(
                        p.fields.len() <= 4,
                        "device {d} {} has too many sprintf fields",
                        p.func_name
                    );
                }
            }
        }
    }
}
