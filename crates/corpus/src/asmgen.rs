//! MR32 assembly generation from message plans.
//!
//! One generated device-cloud executable contains: a `main` that connects
//! to the cloud and registers an *asynchronous* request handler (so the
//! executable-identification stage finds it), the handler itself (which
//! `recv`s a request, dispatches on request bytes — producing the
//! request-derived predicates of paper Eq. 1 — and acks), and one message
//! function per [`MessagePlan`] exercising the vendor's construction
//! style (sprintf templates, cJSON assembly, or strcpy/strcat chains).

use crate::libroster::{emit_roster, RosterLib, ROSTER};
use crate::plan::{BodyStyle, Delivery, DeviceIdentity, MessagePlan, PlanField, ValueSource};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Collects interned data-segment strings.
#[derive(Debug, Default)]
struct DataPool {
    entries: Vec<(String, String)>, // (label, contents)
    by_content: BTreeMap<String, String>,
}

impl DataPool {
    fn label(&mut self, contents: &str) -> String {
        if let Some(l) = self.by_content.get(contents) {
            return l.clone();
        }
        let label = format!("d{}", self.entries.len());
        self.entries.push((label.clone(), contents.to_string()));
        self.by_content.insert(contents.to_string(), label.clone());
        label
    }

    fn render(&self) -> String {
        let mut out = String::from(".data\n");
        for (label, contents) in &self.entries {
            let escaped = contents
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            let _ = writeln!(out, "{label}: .asciz \"{escaped}\"");
        }
        out
    }
}

/// Whether a message's endpoint must be embedded in the payload itself
/// (raw SSL/TCP streams and GET paths carry it; MQTT topics and HTTP
/// POST paths are separate arguments).
fn endpoint_in_payload(delivery: Delivery) -> bool {
    matches!(
        delivery,
        Delivery::SslWrite | Delivery::Send | Delivery::HttpGet
    )
}

/// One asynchronous request handler of a generated agent: the callback
/// function name and the (global) indices of the plans it dispatches.
///
/// The roster devices use a single `on_cloud_request` handler over every
/// plan; the synthetic generator also emits split topologies where two
/// handlers each dispatch a disjoint subset — both are registered via
/// `register_callback`, so the executable-identification stage must find
/// each of them asynchronous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerSpec {
    /// Function name registered via `register_callback`.
    pub name: String,
    /// Indices into the device's plan list this handler dispatches.
    pub plans: Vec<usize>,
}

/// Generate the complete device-cloud executable source for `plans`
/// with the canonical single-handler topology.
pub fn device_cloud_source(identity: &DeviceIdentity, plans: &[MessagePlan]) -> String {
    device_cloud_source_with_topology(
        identity,
        plans,
        &[HandlerSpec {
            name: "on_cloud_request".to_string(),
            plans: (0..plans.len()).collect(),
        }],
    )
}

/// Generate a device-cloud executable with an explicit handler topology.
///
/// Every handler dispatches its own plan subset on the request's leading
/// byte (the *global* plan index, so request bytes select uniquely across
/// handlers) and `main` registers each handler as an event callback.
pub fn device_cloud_source_with_topology(
    identity: &DeviceIdentity,
    plans: &[MessagePlan],
    handlers: &[HandlerSpec],
) -> String {
    device_cloud_source_with_libraries(identity, plans, handlers, &[])
}

/// Generate a device-cloud executable that additionally links shared
/// roster libraries (see `libroster`): `links` are indices into
/// [`ROSTER`].
///
/// With any link present, **all** roster slots are emitted first (real
/// names for linked libraries, `__pad` decoys otherwise — the layout
/// that keeps roster functions address-stable for content-hash
/// matching), and every message function threads values through the
/// linked libraries' pack/fmt helpers before delivery. With `links`
/// empty the output is byte-identical to
/// [`device_cloud_source_with_topology`].
///
/// # Panics
///
/// Panics if a link index is out of roster range.
pub fn device_cloud_source_with_libraries(
    identity: &DeviceIdentity,
    plans: &[MessagePlan],
    handlers: &[HandlerSpec],
    links: &[usize],
) -> String {
    let mut data = DataPool::default();
    let mut out = String::new();
    if !links.is_empty() {
        let mut linked = [false; ROSTER.len()];
        for &k in links {
            linked[k] = true;
        }
        emit_roster(&mut out, &linked);
    }
    let libs: Vec<&RosterLib> = {
        let mut ks: Vec<usize> = links.to_vec();
        ks.sort_unstable();
        ks.dedup();
        ks.into_iter().map(|k| &ROSTER[k]).collect()
    };
    let host_lbl = data.label(&identity.cloud_host);
    let lan_lbl = data.label("192.168.1.1");

    for plan in plans {
        emit_message_fn(&mut out, plan, &mut data, &lan_lbl, &host_lbl, &libs);
    }
    for (hi, h) in handlers.iter().enumerate() {
        // Branch labels are image-global: prefix them per handler so
        // split topologies do not collide (the single-handler prefix is
        // empty, keeping the roster corpus byte-identical).
        let prefix = if handlers.len() == 1 {
            String::new()
        } else {
            format!("h{hi}_")
        };
        emit_handler(&mut out, &h.name, &prefix, plans, &h.plans);
    }
    emit_main(&mut out, &host_lbl, handlers);
    out.push_str(&data.render());
    out
}

/// Local slot names for a field.
fn val_local(i: usize) -> String {
    format!("v{i}")
}
fn getter_local(i: usize) -> String {
    format!("g{i}")
}

fn emit_message_fn(
    out: &mut String,
    plan: &MessagePlan,
    data: &mut DataPool,
    lan_lbl: &str,
    host_lbl: &str,
    libs: &[&RosterLib],
) {
    // FromRequest fields become named parameters.
    let params: Vec<(usize, String)> = plan
        .fields
        .iter()
        .enumerate()
        .filter(|(_, f)| f.source == ValueSource::FromRequest)
        .map(|(i, f)| (i, f.key.clone()))
        .collect();
    let param_list: Vec<String> = params.iter().map(|(_, k)| format!("req_{k}")).collect();
    let _ = writeln!(out, ".func {} {}", plan.func_name, param_list.join(" "));

    // Locals: message buffer, cJSON handles, per-field slots.
    let needs_buf = !matches!(plan.style, BodyStyle::CJson);
    if needs_buf {
        let _ = writeln!(out, ".local buf 256");
    } else {
        let _ = writeln!(out, ".local obj 4");
        let _ = writeln!(out, ".local body 4");
    }
    // Linked-library value slots: one packed value and one formatted
    // value per linked roster library.
    for (j, _) in libs.iter().enumerate() {
        if needs_buf {
            let _ = writeln!(out, ".local lb{j} 4");
        }
        let _ = writeln!(out, ".local lf{j} 4");
    }
    for (i, f) in plan.fields.iter().enumerate() {
        // Numeric values need a text conversion buffer in strcat bodies.
        if plan.style == BodyStyle::StrcatKV && f.source.is_numeric() {
            let _ = writeln!(out, ".local n{i} 16");
        }
        match &f.source {
            ValueSource::Getter(_) => {
                let _ = writeln!(out, ".local {} 48", getter_local(i));
            }
            ValueSource::NvramGet(_)
            | ValueSource::CfgGet(_)
            | ValueSource::GetEnv(_)
            | ValueSource::Time
            | ValueSource::Signed
            | ValueSource::FromRequest => {
                let _ = writeln!(out, ".local {} 4", val_local(i));
            }
            ValueSource::Hardcoded(_) => {}
        }
    }

    // Library calls below are internal `call`s, which clobber ra.
    if !libs.is_empty() {
        let _ = writeln!(out, ".local lra 4");
        let _ = writeln!(out, "    sw  ra, lra(sp)");
    }

    // Save request parameters before the body clobbers argument registers.
    for (pi, (i, _)) in params.iter().enumerate() {
        let reg = format!("a{pi}");
        let _ = writeln!(out, "    sw  {reg}, {}(sp)", val_local(*i));
    }

    // Source every field value.
    for (i, f) in plan.fields.iter().enumerate() {
        match &f.source {
            ValueSource::Getter(import) => {
                let _ = writeln!(out, "    lea a0, {}", getter_local(i));
                let _ = writeln!(out, "    callx {import}");
            }
            ValueSource::NvramGet(key) => {
                let l = data.label(key);
                let _ = writeln!(out, "    la  a0, {l}");
                let _ = writeln!(out, "    callx nvram_get");
                let _ = writeln!(out, "    sw  rv, {}(sp)", val_local(i));
            }
            ValueSource::CfgGet(key) => {
                let l = data.label(key);
                let _ = writeln!(out, "    la  a0, {l}");
                let _ = writeln!(out, "    callx cfg_get");
                let _ = writeln!(out, "    sw  rv, {}(sp)", val_local(i));
            }
            ValueSource::GetEnv(key) => {
                let l = data.label(key);
                let _ = writeln!(out, "    la  a0, {l}");
                let _ = writeln!(out, "    callx getenv");
                let _ = writeln!(out, "    sw  rv, {}(sp)", val_local(i));
            }
            ValueSource::Time => {
                let _ = writeln!(out, "    callx time");
                let _ = writeln!(out, "    sw  rv, {}(sp)", val_local(i));
            }
            ValueSource::Signed => {
                let sk = data.label("device_secret");
                let sd = data.label("sign-data");
                let _ = writeln!(out, "    la  a0, {sk}");
                let _ = writeln!(out, "    callx nvram_get");
                let _ = writeln!(out, "    mov a0, rv");
                let _ = writeln!(out, "    la  a1, {sd}");
                let _ = writeln!(out, "    callx hmac_sign");
                let _ = writeln!(out, "    sw  rv, {}(sp)", val_local(i));
            }
            ValueSource::Hardcoded(_) | ValueSource::FromRequest => {}
        }
    }

    // Build the body.
    match plan.style {
        BodyStyle::SprintfQuery | BodyStyle::SprintfJson => {
            emit_sprintf_body(out, plan, data);
        }
        BodyStyle::CJson => emit_cjson_body(out, plan, data, libs),
        BodyStyle::StrcatKV => emit_strcat_body(out, plan, data),
    }

    // Thread values through the linked shared libraries: pack an NVRAM
    // value into the buffer through the library's pack helper, and
    // strcat a config value formatted by its fmt helper. (cJSON bodies
    // route the fmt value through the object instead — see
    // `emit_cjson_body`.)
    if needs_buf {
        for (j, lib) in libs.iter().enumerate() {
            let nk = data.label(lib.nv_key);
            let _ = writeln!(out, "    la  a0, {nk}");
            let _ = writeln!(out, "    callx nvram_get");
            let _ = writeln!(out, "    sw  rv, lb{j}(sp)");
            let _ = writeln!(out, "    lea a0, buf");
            let _ = writeln!(out, "    lw  a1, lb{j}(sp)");
            let _ = writeln!(out, "    call {}", lib.pack_fn);
            let ck = data.label(lib.cfg_key);
            let _ = writeln!(out, "    la  a0, {ck}");
            let _ = writeln!(out, "    callx cfg_get");
            let _ = writeln!(out, "    mov a0, rv");
            let _ = writeln!(out, "    call {}", lib.fmt_fn);
            let _ = writeln!(out, "    sw  rv, lf{j}(sp)");
            let _ = writeln!(out, "    lea a0, buf");
            let _ = writeln!(out, "    lw  a1, lf{j}(sp)");
            let _ = writeln!(out, "    callx strcat");
        }
    }

    // Deliver.
    let body_to = |out: &mut String, reg: &str| {
        if needs_buf {
            let _ = writeln!(out, "    lea {reg}, buf");
        } else {
            let _ = writeln!(out, "    lw  {reg}, body(sp)");
        }
    };
    let host = if plan.lan { lan_lbl } else { host_lbl };
    match plan.delivery {
        Delivery::SslWrite => {
            body_to(out, "a1");
            let _ = writeln!(out, "    li  a0, 1");
            let _ = writeln!(out, "    li  a2, 0");
            let _ = writeln!(out, "    callx SSL_write");
        }
        Delivery::Send => {
            body_to(out, "a1");
            let _ = writeln!(out, "    li  a0, 4");
            let _ = writeln!(out, "    li  a2, 0");
            let _ = writeln!(out, "    li  a3, 0");
            let _ = writeln!(out, "    callx send");
        }
        Delivery::MqttPublish => {
            let t = data.label(&plan.endpoint);
            body_to(out, "a2");
            let _ = writeln!(out, "    li  a0, 0");
            let _ = writeln!(out, "    la  a1, {t}");
            let _ = writeln!(out, "    li  a3, 0");
            let _ = writeln!(out, "    callx mosquitto_publish");
        }
        Delivery::HttpPost => {
            let p = data.label(&plan.endpoint);
            body_to(out, "a2");
            let _ = writeln!(out, "    la  a0, {host}");
            let _ = writeln!(out, "    la  a1, {p}");
            let _ = writeln!(out, "    li  a3, 0");
            let _ = writeln!(out, "    callx http_post");
        }
        Delivery::HttpGet => {
            body_to(out, "a1");
            let _ = writeln!(out, "    la  a0, {host}");
            let _ = writeln!(out, "    li  a2, 0");
            let _ = writeln!(out, "    callx http_get");
        }
    }
    if !libs.is_empty() {
        let _ = writeln!(out, "    lw  ra, lra(sp)");
    }
    let _ = writeln!(out, "    ret");
    let _ = writeln!(out, ".endfunc");
    out.push('\n');
}

/// Load the value of field `i` into `reg`.
fn load_value(out: &mut String, plan: &MessagePlan, i: usize, reg: &str, data: &mut DataPool) {
    match &plan.fields[i].source {
        ValueSource::Getter(_) => {
            let _ = writeln!(out, "    lea {reg}, {}", getter_local(i));
        }
        ValueSource::Hardcoded(v) => {
            let l = data.label(v);
            let _ = writeln!(out, "    la  {reg}, {l}");
        }
        _ => {
            let _ = writeln!(out, "    lw  {reg}, {}(sp)", val_local(i));
        }
    }
}

fn sprintf_template(plan: &MessagePlan) -> String {
    let spec = |f: &PlanField| if f.source.is_numeric() { "%d" } else { "%s" };
    match plan.style {
        BodyStyle::SprintfJson => {
            let mut t = String::from("{");
            if endpoint_in_payload(plan.delivery) {
                let _ = write!(t, "\"path\":\"{}\",", plan.endpoint);
            }
            let parts: Vec<String> = plan
                .fields
                .iter()
                .map(|f| {
                    if f.source.is_numeric() {
                        format!("\"{}\":%d", f.key)
                    } else {
                        format!("\"{}\":\"%s\"", f.key)
                    }
                })
                .collect();
            t.push_str(&parts.join(","));
            t.push('}');
            t
        }
        _ => {
            let parts: Vec<String> = plan
                .fields
                .iter()
                .map(|f| format!("{}={}", f.key, spec(f)))
                .collect();
            let q = parts.join("&");
            if endpoint_in_payload(plan.delivery) {
                format!("{}?{}", plan.endpoint, q)
            } else {
                q
            }
        }
    }
}

fn emit_sprintf_body(out: &mut String, plan: &MessagePlan, data: &mut DataPool) {
    let fmt = sprintf_template(plan);
    let fl = data.label(&fmt);
    // Values go to a2..a5 (checked by the planner: ≤ 4 fields).
    for (slot, i) in (0..plan.fields.len()).enumerate() {
        let reg = format!("a{}", 2 + slot);
        load_value(out, plan, i, &reg, data);
    }
    let _ = writeln!(out, "    lea a0, buf");
    let _ = writeln!(out, "    la  a1, {fl}");
    let _ = writeln!(out, "    callx sprintf");
}

fn emit_cjson_body(out: &mut String, plan: &MessagePlan, data: &mut DataPool, libs: &[&RosterLib]) {
    let _ = writeln!(out, "    callx cJSON_CreateObject");
    let _ = writeln!(out, "    sw  rv, obj(sp)");
    // Raw-stream deliveries embed their endpoint as a leading field
    // unless the plan already carries a method/path field.
    if endpoint_in_payload(plan.delivery)
        && !plan
            .fields
            .iter()
            .any(|f| f.key == "method" || f.key == "path")
    {
        let k = data.label("path");
        let v = data.label(&plan.endpoint);
        let _ = writeln!(out, "    lw  a0, obj(sp)");
        let _ = writeln!(out, "    la  a1, {k}");
        let _ = writeln!(out, "    la  a2, {v}");
        let _ = writeln!(out, "    callx cJSON_AddStringToObject");
    }
    for (i, f) in plan.fields.iter().enumerate() {
        let k = data.label(&f.key);
        let _ = writeln!(out, "    lw  a0, obj(sp)");
        let _ = writeln!(out, "    la  a1, {k}");
        load_value(out, plan, i, "a2", data);
        let call = if f.source.is_numeric() {
            "cJSON_AddNumberToObject"
        } else {
            "cJSON_AddStringToObject"
        };
        let _ = writeln!(out, "    callx {call}");
    }
    // Linked-library fields: a config value formatted through each
    // linked library's fmt helper, added to the object before printing.
    for (j, lib) in libs.iter().enumerate() {
        let ck = data.label(lib.cfg_key);
        let _ = writeln!(out, "    la  a0, {ck}");
        let _ = writeln!(out, "    callx cfg_get");
        let _ = writeln!(out, "    mov a0, rv");
        let _ = writeln!(out, "    call {}", lib.fmt_fn);
        let _ = writeln!(out, "    sw  rv, lf{j}(sp)");
        let k = data.label(lib.field_key);
        let _ = writeln!(out, "    lw  a0, obj(sp)");
        let _ = writeln!(out, "    la  a1, {k}");
        let _ = writeln!(out, "    lw  a2, lf{j}(sp)");
        let _ = writeln!(out, "    callx cJSON_AddStringToObject");
    }
    let _ = writeln!(out, "    lw  a0, obj(sp)");
    let _ = writeln!(out, "    callx cJSON_Print");
    let _ = writeln!(out, "    sw  rv, body(sp)");
}

fn emit_strcat_body(out: &mut String, plan: &MessagePlan, data: &mut DataPool) {
    let mut first_copy = true;
    if endpoint_in_payload(plan.delivery) {
        let l = data.label(&format!("{}?", plan.endpoint));
        let _ = writeln!(out, "    lea a0, buf");
        let _ = writeln!(out, "    la  a1, {l}");
        let _ = writeln!(out, "    callx strcpy");
        first_copy = false;
    }
    for (i, f) in plan.fields.iter().enumerate() {
        // Key literal: joined with `&` after the first field; the first
        // write is a strcpy when no endpoint prefix was emitted.
        let lit = if i == 0 {
            format!("{}=", f.key)
        } else {
            format!("&{}=", f.key)
        };
        let l = data.label(&lit);
        let op = if first_copy { "strcpy" } else { "strcat" };
        first_copy = false;
        let _ = writeln!(out, "    lea a0, buf");
        let _ = writeln!(out, "    la  a1, {l}");
        let _ = writeln!(out, "    callx {op}");
        if f.source.is_numeric() {
            // itoa(value, text) before concatenation.
            load_value(out, plan, i, "a0", data);
            let _ = writeln!(out, "    lea a1, n{i}");
            let _ = writeln!(out, "    callx itoa");
            let _ = writeln!(out, "    lea a0, buf");
            let _ = writeln!(out, "    lea a1, n{i}");
        } else {
            let _ = writeln!(out, "    lea a0, buf");
            load_value(out, plan, i, "a1", data);
        }
        let _ = writeln!(out, "    callx strcat");
    }
}

fn emit_handler(
    out: &mut String,
    name: &str,
    label_prefix: &str,
    plans: &[MessagePlan],
    indices: &[usize],
) {
    let _ = writeln!(out, ".func {name}");
    let _ = writeln!(out, ".local req 300");
    let _ = writeln!(out, ".local saved_ra 4");
    // Non-leaf function: the dispatch arms `call` message functions,
    // which clobbers ra.
    let _ = writeln!(out, "    sw  ra, saved_ra(sp)");
    let _ = writeln!(out, "    li  a0, 4");
    let _ = writeln!(out, "    lea a1, req");
    let _ = writeln!(out, "    li  a2, 300");
    let _ = writeln!(out, "    li  a3, 0");
    let _ = writeln!(out, "    callx recv");
    for (pos, &idx) in indices.iter().enumerate() {
        let plan = &plans[idx];
        let _ = writeln!(out, "    lb  t0, 0(sp)");
        let _ = writeln!(out, "    li  t1, {idx}");
        let _ = writeln!(out, "    bne t0, t1, {label_prefix}skip_{pos}");
        let _ = writeln!(out, "    call {}", plan.func_name);
        let _ = writeln!(out, "{label_prefix}skip_{pos}:");
    }
    // Ack the request.
    let _ = writeln!(out, "    li  a0, 4");
    let _ = writeln!(out, "    lea a1, req");
    let _ = writeln!(out, "    li  a2, 4");
    let _ = writeln!(out, "    li  a3, 0");
    let _ = writeln!(out, "    callx send");
    let _ = writeln!(out, "    lw  ra, saved_ra(sp)");
    let _ = writeln!(out, "    ret");
    let _ = writeln!(out, ".endfunc\n");
}

fn emit_main(out: &mut String, host_lbl: &str, handlers: &[HandlerSpec]) {
    let _ = writeln!(out, ".func main");
    let _ = writeln!(out, "    la  a0, {host_lbl}");
    let _ = writeln!(out, "    li  a1, 443");
    let _ = writeln!(out, "    li  a2, 0");
    let _ = writeln!(out, "    li  a3, 0");
    let _ = writeln!(out, "    callx ssl_connect");
    for h in handlers {
        let _ = writeln!(out, "    laf t0, {}", h.name);
        let _ = writeln!(out, "    mov a0, t0");
        let _ = writeln!(out, "    callx register_callback");
    }
    let _ = writeln!(out, "    callx event_loop");
    let _ = writeln!(out, "    halt");
    let _ = writeln!(out, ".endfunc\n");
}

/// A synchronous IPC daemon — a request handler that is *directly*
/// invoked, so the async filter must reject it (paper Fig. 4, pair 1).
pub fn ipc_daemon_source() -> String {
    r#"
.func handle_ipc
.local msg 64
.local count 4
    li  a0, 7
    lea a1, msg
    li  a2, 64
    li  a3, 0
    callx recv
    lw  t0, count(sp)
    li  t1, 10
    blt t0, t1, small
    sw  zero, count(sp)
small:
    lw  t0, count(sp)
    addi t0, t0, 1
    sw  t0, count(sp)
    li  a0, 7
    lea a1, msg
    li  a2, 4
    li  a3, 0
    callx send
    ret
.endfunc

.func main
loop:
    call handle_ipc
    b loop
    halt
.endfunc
"#
    .trim_start()
    .to_string()
}

/// A LAN-only web server: synchronous handler plus LAN address strings.
pub fn local_httpd_source() -> String {
    r#"
.func serve_page
.local req 128
    li  a0, 9
    lea a1, req
    li  a2, 128
    li  a3, 0
    callx recv
    lb  t0, 0(sp)
    li  t1, 71
    bne t0, t1, notget
    la  a1, page
    li  a0, 9
    li  a2, 0
    li  a3, 0
    callx send
notget:
    ret
.endfunc

.func main
    la  a0, bindaddr
    callx puts
again:
    call serve_page
    b again
    halt
.endfunc

.data
bindaddr: .asciz "192.168.1.1:80"
page: .asciz "<html>admin</html>"
"#
    .trim_start()
    .to_string()
}

/// A watchdog utility: no networking at all.
pub fn watchdog_source() -> String {
    r#"
.func main
.local status 4
    la  a0, wd_key
    callx nvram_get
    sw  rv, status(sp)
    lw  t0, status(sp)
    li  t1, 0
    beq t0, t1, ok
    la  a0, warn
    callx puts
ok:
    halt
.endfunc

.data
wd_key: .asciz "watchdog_enabled"
warn: .asciz "watchdog disabled"
"#
    .trim_start()
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::device_spec;
    use crate::plan::plan_messages;
    use firmres_isa::{lift, Assembler};

    fn build(id: u8) -> (firmres_isa::Executable, Vec<MessagePlan>) {
        let spec = device_spec(id).unwrap();
        let identity = DeviceIdentity::generate(id, 7);
        let plans = plan_messages(&spec, &identity, 7);
        let src = device_cloud_source(&identity, &plans);
        let exe = Assembler::new()
            .assemble(&src)
            .unwrap_or_else(|e| panic!("device {id} assembly failed: {e}\n"));
        (exe, plans)
    }

    #[test]
    fn all_binary_devices_assemble_and_lift() {
        for id in 1..=20u8 {
            let (exe, plans) = build(id);
            let prog = lift(&exe, &format!("dev{id}")).unwrap();
            // One function per message + handler + main.
            assert_eq!(
                prog.function_count(),
                plans.len() + 2,
                "device {id} function count"
            );
            assert!(prog.function_by_name("on_cloud_request").is_some());
            assert!(prog.function_by_name("main").is_some());
        }
    }

    #[test]
    fn delivery_callsites_match_plans() {
        let (exe, plans) = build(14);
        let prog = lift(&exe, "dev14").unwrap();
        let mut delivery_count = 0;
        for f in prog.functions() {
            for c in f.callsites() {
                if let Some(name) = c.call_target().and_then(|t| prog.callee_name(t)) {
                    if firmres_dataflow::delivery_payload_arg(name).is_some()
                        && f.name() != "on_cloud_request"
                        && f.name() != "main"
                    {
                        delivery_count += 1;
                    }
                }
            }
        }
        assert_eq!(delivery_count, plans.len(), "one delivery per message");
    }

    #[test]
    fn handler_is_async_and_helpers_are_sync() {
        let (exe, _) = build(10);
        let prog = lift(&exe, "dev10").unwrap();
        let cg = prog.call_graph();
        let handler = prog.function_by_name("on_cloud_request").unwrap();
        assert!(
            !cg.has_callers(handler.entry()),
            "handler only reachable via callback"
        );
        // IPC daemon's handler *is* directly called.
        let ipc = Assembler::new().assemble(&ipc_daemon_source()).unwrap();
        let iprog = lift(&ipc, "ipc").unwrap();
        let icg = iprog.call_graph();
        let h = iprog.function_by_name("handle_ipc").unwrap();
        assert!(icg.has_callers(h.entry()));
    }

    #[test]
    fn fixture_executables_assemble() {
        for src in [ipc_daemon_source(), local_httpd_source(), watchdog_source()] {
            let exe = Assembler::new().assemble(&src).unwrap();
            assert!(lift(&exe, "aux").is_ok());
        }
    }

    #[test]
    fn templates_embed_endpoints_for_raw_streams() {
        let spec = device_spec(17).unwrap();
        let identity = DeviceIdentity::generate(17, 7);
        let plans = plan_messages(&spec, &identity, 7);
        let src = device_cloud_source(&identity, &plans);
        // Device 17's first vuln is an HttpGet whose query template embeds
        // the path.
        assert!(
            src.contains("/camera-cgi?m=%s"),
            "endpoint-in-template: {src}"
        );
    }
}
