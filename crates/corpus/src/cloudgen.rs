//! Vendor-cloud construction from message plans.

use crate::plan::{Delivery, DeviceIdentity, MessagePlan, PlanPolicy, PlanResponse};
use firmres_cloud::{Check, Cloud, CloudState, DeviceRecord, Endpoint, EndpointKind, ResponseSpec};
use firmres_semantics::Primitive;

/// Build the vendor cloud serving a device's *valid* endpoints, with the
/// policies the plans prescribe (secure for regular messages, weakened
/// for the Table III rows).
pub fn build_cloud(vendor: &str, identity: &DeviceIdentity, plans: &[MessagePlan]) -> Cloud {
    let mut state = CloudState::new(format!("key-{vendor}"));
    state.register_device(DeviceRecord {
        identifiers: [
            ("mac".to_string(), identity.mac.clone()),
            ("serial".to_string(), identity.serial.clone()),
            ("uid".to_string(), identity.uid.clone()),
            ("deviceId".to_string(), identity.device_id.clone()),
        ]
        .into_iter()
        .collect(),
        secret: identity.secret.clone(),
        bound_user: None,
    });
    state.create_user(&identity.user, &identity.password);
    state
        .bind(&identity.serial, &identity.user)
        .expect("device and user exist");
    state.add_resource(&identity.serial, "/cloud/recordings/2026-07-01.mp4");
    state.add_resource(&identity.serial, "/cloud/recordings/2026-07-02.mp4");

    let endpoints: Vec<Endpoint> = plans
        .iter()
        .filter(|p| p.on_cloud && !p.lan)
        .map(endpoint_for_plan)
        .collect();
    Cloud::new(vendor, endpoints, state)
}

fn endpoint_for_plan(plan: &MessagePlan) -> Endpoint {
    let kind = if plan.delivery == Delivery::MqttPublish {
        EndpointKind::MqttTopic
    } else {
        EndpointKind::Http
    };
    let id_key = plan.identifier_field().map(|f| f.key.clone());
    let mut checks: Vec<Check> = Vec::new();
    match plan.policy {
        PlanPolicy::Secure => {
            if let Some(id) = &id_key {
                checks.push(Check::KnownDevice(id.clone()));
                // Authenticity checks for every primitive the message carries.
                for f in &plan.fields {
                    match f.semantic {
                        Primitive::DevSecret => {
                            checks.push(Check::SecretValid(id.clone(), f.key.clone()));
                        }
                        Primitive::BindToken => {
                            checks.push(Check::TokenValid(id.clone(), f.key.clone()));
                        }
                        Primitive::Signature => {
                            checks.push(Check::SignatureValid(id.clone(), f.key.clone()));
                        }
                        _ => {}
                    }
                }
                // User credentials come in pairs (user, pass).
                let creds: Vec<&str> = plan
                    .fields
                    .iter()
                    .filter(|f| f.semantic == Primitive::UserCred)
                    .map(|f| f.key.as_str())
                    .collect();
                if creds.len() >= 2 {
                    checks.push(Check::UserCredValid(creds[0].into(), creds[1].into()));
                }
            } else if let Some(first) = plan.fields.first() {
                checks.push(Check::FieldPresent(first.key.clone()));
            }
        }
        PlanPolicy::IdentifierOnly
        | PlanPolicy::BindNoUserCred
        | PlanPolicy::RegisterFixedToken
        | PlanPolicy::RegisterLeakSecret => {
            if let Some(id) = &id_key {
                checks.push(Check::KnownDevice(id.clone()));
            }
        }
        PlanPolicy::OpenTelemetry => {
            if let Some(first) = plan.fields.first() {
                checks.push(Check::FieldPresent(first.key.clone()));
            }
        }
        PlanPolicy::CustomCred => {
            if let Some(id) = &id_key {
                checks.push(Check::KnownDevice(id.clone()));
                // The vendor-specific verification code is validated like a
                // token; the form check does not know this field.
                checks.push(Check::TokenValid(id.clone(), "vcode".into()));
            }
        }
    }
    let response = match plan.response {
        PlanResponse::Ok => ResponseSpec::Ok,
        PlanResponse::FixedToken => ResponseSpec::FixedToken("deviceToken".into()),
        PlanResponse::BindToken => ResponseSpec::BindToken("bindToken".into()),
        PlanResponse::DeviceSecret => ResponseSpec::DeviceSecret("certificate".into()),
        PlanResponse::StorageKeys => ResponseSpec::StorageKeys("key".into()),
        PlanResponse::ResourceList => ResponseSpec::ResourceList("items".into()),
    };
    Endpoint {
        path: plan.endpoint.clone(),
        kind,
        functionality: plan.functionality.clone(),
        checks,
        response,
        consequence: plan.consequence.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::device_spec;
    use crate::plan::plan_messages;
    use firmres_cloud::{FlawClass, HttpRequest, ResponseStatus};

    fn cloud_for(id: u8) -> (Cloud, DeviceIdentity, Vec<MessagePlan>) {
        let spec = device_spec(id).unwrap();
        let identity = DeviceIdentity::generate(id, 7);
        let plans = plan_messages(&spec, &identity, 7);
        let cloud = build_cloud(spec.vendor, &identity, &plans);
        (cloud, identity, plans)
    }

    #[test]
    fn valid_plans_have_endpoints() {
        let (cloud, _, plans) = cloud_for(14);
        let expected = plans.iter().filter(|p| p.on_cloud && !p.lan).count();
        assert_eq!(cloud.endpoints().len(), expected);
    }

    #[test]
    fn seeded_vulnerabilities_audit_as_flawed() {
        let (cloud, _, plans) = cloud_for(20);
        let vuln_paths: Vec<&str> = plans
            .iter()
            .filter(|p| p.is_vulnerable())
            .map(|p| p.endpoint.as_str())
            .collect();
        for e in cloud.endpoints() {
            let flawed = e.flaw().is_some();
            assert_eq!(
                flawed,
                vuln_paths.contains(&e.path.as_str()),
                "endpoint {} flaw mismatch",
                e.path
            );
        }
    }

    #[test]
    fn cve_endpoint_leaks_secret_on_identifiers_alone() {
        let (cloud, identity, _) = cloud_for(11);
        let body = format!(
            "{{\"serial\":\"{}\",\"mac\":\"{}\"}}",
            identity.serial, identity.mac
        );
        let r = cloud.handle(&HttpRequest::new("/rms/registrations", body));
        assert_eq!(r.status, ResponseStatus::RequestOk);
        let leaks = r.leaked_values();
        assert!(
            leaks
                .iter()
                .any(|(k, v)| k == "certificate" && v == &identity.secret),
            "device secret leaked: {leaks:?}"
        );
        let reg = cloud
            .endpoints()
            .iter()
            .find(|e| e.path == "/rms/registrations")
            .unwrap();
        assert_eq!(reg.flaw(), Some(FlawClass::MissingDevSecret));
    }

    #[test]
    fn secure_endpoints_reject_forged_primitives() {
        let (cloud, identity, plans) = cloud_for(14);
        // Find a secure plan with a token field.
        let plan = plans
            .iter()
            .find(|p| {
                p.policy == PlanPolicy::Secure
                    && p.on_cloud
                    && p.fields.iter().any(|f| f.semantic == Primitive::BindToken)
            })
            .expect("token-guarded plan exists");
        let id_field = plan.identifier_field().unwrap();
        let token_key = &plan
            .fields
            .iter()
            .find(|f| f.semantic == Primitive::BindToken)
            .unwrap()
            .key;
        let id_value = match id_field.key.as_str() {
            "mac" => identity.mac.clone(),
            "serialNumber" | "sn" => identity.serial.clone(),
            "uid" => identity.uid.clone(),
            _ => identity.device_id.clone(),
        };
        let forged = format!("{}={id_value}&{token_key}=guess", id_field.key);
        let r = cloud.handle(&HttpRequest::new(plan.endpoint.clone(), forged));
        assert_eq!(
            r.status,
            ResponseStatus::NoPermission,
            "forged token rejected"
        );
        let real = cloud.with_state(|s| s.token_for(&id_value).unwrap());
        let good = format!("{}={id_value}&{token_key}={real}", id_field.key);
        let r = cloud.handle(&HttpRequest::new(plan.endpoint.clone(), good));
        assert_eq!(r.status, ResponseStatus::RequestOk);
    }

    #[test]
    fn custom_cred_endpoint_denies_unknown_vcode() {
        // Device id with `id % 7 == 3` carries the CustomCred FP plan.
        let (cloud, identity, plans) = cloud_for(10);
        let plan = plans.iter().find(|p| p.policy == PlanPolicy::CustomCred);
        if let Some(plan) = plan {
            let idf = plan.identifier_field().unwrap();
            let idv = identity
                .value_of(match idf.key.as_str() {
                    "mac" => "mac",
                    "serialNumber" | "sn" => "serial",
                    "uid" => "uid",
                    _ => "device_id",
                })
                .unwrap();
            let req = format!("{}={idv}&vcode=12345", idf.key);
            let r = cloud.handle(&HttpRequest::new(plan.endpoint.clone(), req));
            assert_eq!(r.status, ResponseStatus::NoPermission);
            // And the endpoint audits as *secure* (the vcode acts as a token).
            let e = cloud
                .endpoints()
                .iter()
                .find(|e| e.path == plan.endpoint)
                .unwrap();
            assert_eq!(e.flaw(), None);
        }
    }
}
