//! Whole-device and whole-corpus generation.

use crate::asmgen::{device_cloud_source, ipc_daemon_source, local_httpd_source, watchdog_source};
use crate::cloudgen::build_cloud;
use crate::devices::{device_table, DeviceSpec};
use crate::plan::{plan_messages, DeviceIdentity, MessagePlan};
use firmres_cloud::Cloud;
use firmres_firmware::{DeviceInfo, FileEntry, FirmwareImage, Nvram, ScriptLang};
use firmres_isa::Assembler;

/// A fully generated synthetic device: firmware, ground truth, identity,
/// and its (possibly flawed) vendor cloud.
#[derive(Debug)]
pub struct GeneratedDevice {
    /// Table I row.
    pub spec: DeviceSpec,
    /// Identity material (also provisioned on the cloud).
    pub identity: DeviceIdentity,
    /// The message plans — the device's ground-truth manifest.
    pub plans: Vec<MessagePlan>,
    /// The packed-and-reopened firmware image.
    pub firmware: FirmwareImage,
    /// The vendor cloud.
    pub cloud: Cloud,
    /// Path of the device-cloud executable, `None` for script devices.
    pub cloud_executable: Option<String>,
}

/// Generate device `id` (1–22) deterministically under `seed`.
///
/// # Panics
///
/// Panics when `id` is not in 1..=22 (the corpus is the fixed Table I
/// roster) or if internally generated assembly fails to assemble — both
/// are bugs, not runtime conditions.
pub fn generate_device(id: u8, seed: u64) -> GeneratedDevice {
    let spec = crate::devices::device_spec(id)
        .unwrap_or_else(|| panic!("device id {id} outside the Table I roster"));
    let identity = DeviceIdentity::generate(id, seed);
    let plans = plan_messages(&spec, &identity, seed);

    let mut fw = FirmwareImage::new(DeviceInfo {
        vendor: spec.vendor.to_string(),
        model: spec.model.to_string(),
        device_type: spec.device_type,
        firmware_version: spec.firmware_version.to_string(),
    });

    let cloud = build_cloud(spec.vendor, &identity, &plans);
    // Provision NVRAM: identity, credentials and the *valid* bind token
    // (so the real device's messages authenticate).
    let token = cloud.with_state(|s| s.token_for(&identity.serial).expect("device bound"));
    let mut nv = Nvram::new();
    nv.set("mac", &identity.mac);
    nv.set("serial_no", &identity.serial);
    nv.set("device_id", &identity.device_id);
    nv.set("uid", &identity.uid);
    nv.set("device_secret", &identity.secret);
    nv.set("access_token", &token);
    nv.set("cloud_user", &identity.user);
    nv.set("cloud_pass", &identity.password);
    nv.set("cloud_host", &identity.cloud_host);
    nv.set("ssid", format!("IoT-AP-{:02}", spec.id));
    nv.set("watchdog_enabled", "1");
    fw.add_file("/etc/nvram.default", FileEntry::NvramDefaults(nv));
    fw.add_file(
        "/etc/config/cloud.conf",
        FileEntry::Config(format!(
            "server={}\nport=443\nfw_version={}\nmodel={}\nproduct_id=P-{}\n\
             device_cert={}\nhw_version=rev2\ncluster=c1\nregion=eu-west\ntimezone=UTC+1\n",
            identity.cloud_host, spec.firmware_version, spec.model, spec.id, identity.secret,
        )),
    );
    fw.add_file(
        "/etc/ssl/device.pem",
        FileEntry::Cert(format!(
            "-----BEGIN DEVICE CERT-----\n{}\n-----END-----\n",
            identity.secret
        )),
    );

    let assembler = Assembler::new();
    let mut cloud_executable = None;
    if spec.script_based {
        fw.add_file(
            "/usr/bin/cloud_sync.sh",
            FileEntry::Script {
                lang: ScriptLang::Shell,
                text: format!(
                    "#!/bin/sh\n# device-cloud sync handled in shell (device {id})\n\
                     MAC=$(nvram get mac)\nSN=$(nvram get serial_no)\n\
                     curl -s \"https://{}/api/register?mac=$MAC&sn=$SN\"\n",
                    identity.cloud_host
                ),
            },
        );
        fw.add_file(
            "/www/cloud/upload.php",
            FileEntry::Script {
                lang: ScriptLang::Php,
                text: "<?php $sn = nvram_get('serial_no'); \
                       http_post($CLOUD, '/api/upload', ['sn' => $sn]); ?>"
                    .to_string(),
            },
        );
    } else {
        let src = device_cloud_source(&identity, &plans);
        let exe = assembler
            .assemble(&src)
            .unwrap_or_else(|e| panic!("device {id} cloud agent failed to assemble: {e}"));
        let path = "/usr/bin/cloud_agent".to_string();
        fw.add_file(&path, FileEntry::Executable(exe.to_bytes().to_vec()));
        cloud_executable = Some(path);
    }
    // Auxiliary executables present on every device.
    for (path, src) in [
        ("/usr/bin/ipc_daemon", ipc_daemon_source()),
        ("/usr/sbin/httpd_local", local_httpd_source()),
        ("/sbin/watchdog", watchdog_source()),
    ] {
        let exe = assembler
            .assemble(&src)
            .unwrap_or_else(|e| panic!("aux executable {path} failed to assemble: {e}"));
        fw.add_file(path, FileEntry::Executable(exe.to_bytes().to_vec()));
    }

    // Round-trip through the packed wire format so consumers exercise the
    // real unpack path.
    let packed = fw.pack();
    let firmware = FirmwareImage::unpack(&packed).expect("self-generated image unpacks");

    GeneratedDevice {
        spec,
        identity,
        plans,
        firmware,
        cloud,
        cloud_executable,
    }
}

/// Generate the full 22-device corpus.
pub fn generate_corpus(seed: u64) -> Vec<GeneratedDevice> {
    device_table()
        .iter()
        .map(|d| generate_device(d.id, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_isa::lift;

    #[test]
    fn generates_binary_device_with_liftable_agent() {
        let dev = generate_device(13, 7);
        assert_eq!(dev.spec.model, "319W");
        let path = dev.cloud_executable.as_deref().unwrap();
        let exe = dev.firmware.load_executable(path).unwrap();
        let prog = lift(&exe, "agent").unwrap();
        assert!(prog.function_by_name("on_cloud_request").is_some());
        assert_eq!(dev.firmware.executables().count(), 4, "agent + 3 aux");
        assert_eq!(
            dev.firmware.nvram().get("mac"),
            Some(dev.identity.mac.as_str())
        );
    }

    #[test]
    fn script_devices_have_no_cloud_executable() {
        for id in [21, 22] {
            let dev = generate_device(id, 7);
            assert!(dev.cloud_executable.is_none());
            assert_eq!(dev.firmware.scripts().count(), 2);
            assert_eq!(dev.firmware.executables().count(), 3, "aux only");
            assert!(dev.plans.is_empty());
        }
    }

    #[test]
    fn nvram_token_is_valid_on_cloud() {
        let dev = generate_device(5, 7);
        let token = dev
            .firmware
            .nvram()
            .get("access_token")
            .unwrap()
            .to_string();
        assert!(dev
            .cloud
            .with_state(|s| s.valid_token(&dev.identity.serial, &token)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_device(8, 123);
        let b = generate_device(8, 123);
        assert_eq!(a.identity, b.identity);
        assert_eq!(a.plans, b.plans);
        assert_eq!(a.firmware, b.firmware);
    }

    #[test]
    #[should_panic(expected = "outside the Table I roster")]
    fn out_of_roster_id_panics() {
        let _ = generate_device(42, 7);
    }

    #[test]
    fn full_corpus_generates() {
        let corpus = generate_corpus(7);
        assert_eq!(corpus.len(), 22);
        assert_eq!(
            corpus
                .iter()
                .filter(|d| d.cloud_executable.is_some())
                .count(),
            20
        );
        // All firmware images have unique identities.
        let macs: std::collections::BTreeSet<_> =
            corpus.iter().map(|d| d.identity.mac.clone()).collect();
        assert_eq!(macs.len(), 22);
    }
}
