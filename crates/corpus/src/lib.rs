//! # firmres-corpus
//!
//! The synthetic 22-device evaluation corpus.
//!
//! The paper evaluates FIRMRES on firmware purchased from 18 vendors
//! (Table I). Real firmware cannot ship with this reproduction, so this
//! crate *generates* the corpus: for every Table I row it synthesizes a
//! firmware image whose device-cloud executable is real MR32 machine
//! code assembled from per-device [`MessagePlan`]s. The same plans drive
//! three artifacts, keeping them consistent by construction:
//!
//! 1. the **firmware** (assembly → MRE executables → packed image),
//! 2. the **ground truth** (what messages/fields/semantics exist — the
//!    reference for the Table II accuracy columns), and
//! 3. the **vendor cloud** (endpoints with secure or deliberately
//!    weakened policies — the Table III vulnerability rows).
//!
//! Devices 21 and 22 implement device-cloud logic in shell/PHP scripts,
//! reproducing the paper's 20-of-22 identification result. Generation is
//! fully deterministic for a given seed.
//!
//! # Examples
//!
//! ```
//! use firmres_corpus::generate_device;
//!
//! let dev = generate_device(11, 7); // Teltonika RUT241
//! assert_eq!(dev.spec.model, "RUT241");
//! assert!(dev.cloud_executable.is_some());
//! let vulnerable = dev.plans.iter().filter(|p| p.is_vulnerable()).count();
//! assert_eq!(vulnerable, 1, "the known CVE-2023-2586 pattern");
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asmgen;
mod cloudgen;
mod devices;
pub mod emulation;
mod gen;
mod libroster;
mod plan;
mod synth;
mod update;
mod vulns;

pub use asmgen::{
    device_cloud_source, device_cloud_source_with_libraries, device_cloud_source_with_topology,
    ipc_daemon_source, local_httpd_source, watchdog_source, HandlerSpec,
};
pub use cloudgen::build_cloud;
pub use devices::{device_spec, device_table, DeviceSpec, SprintfUsage};
pub use gen::{generate_corpus, generate_device, GeneratedDevice};
pub use libroster::{library_fixture_file, library_fixture_source, RosterLib, ROSTER};
pub use plan::{
    plan_messages, BodyStyle, Delivery, DeviceIdentity, MessagePlan, PlanField, PlanPolicy,
    PlanResponse, ValueSource,
};
pub use synth::{
    synth_corpus, synth_corpus_with_libraries, synth_device, synth_device_with_libraries,
    SynthConfig, SynthDevice, SynthSpec,
};
pub use update::{mutate_firmware, FirmwareUpdate};
pub use vulns::{total_vulnerabilities, vulnerable_plans};
