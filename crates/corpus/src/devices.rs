//! The 22-device roster of paper Table I, with per-device generation
//! targets drawn from Table II.

use firmres_firmware::DeviceType;

/// How a device's firmware assembles formatted messages (drives the
/// Table II `thd` columns: `-` devices never call `sprintf`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SprintfUsage {
    /// No formatted-output assembly at all (reported `-`).
    None,
    /// `sprintf` used but only single-field formats (device 11's 0/0/0).
    SingleField,
    /// Multi-field `sprintf` formats (cluster counts reported).
    MultiField,
}

/// One row of Table I plus generation targets.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Device ID (1–22).
    pub id: u8,
    /// Vendor name (`***` redactions preserved from the paper).
    pub vendor: &'static str,
    /// Model identifier.
    pub model: &'static str,
    /// Device category.
    pub device_type: DeviceType,
    /// Firmware version string.
    pub firmware_version: &'static str,
    /// Whether device-cloud logic is in scripts (devices 21–22) rather
    /// than binaries.
    pub script_based: bool,
    /// Target number of device-cloud messages (Table II "#Identified").
    pub target_messages: usize,
    /// Of those, how many are *invalid* (stale endpoints; Table II
    /// #Identified − #Valid).
    pub target_invalid: usize,
    /// Target total field count across messages (Table II "#Identified"
    /// fields) — used to size messages.
    pub target_fields: usize,
    /// Formatted-output style.
    pub sprintf: SprintfUsage,
}

/// One raw roster row: `(id, vendor, model, type, fw version, script-based,
/// target messages, target invalid, target fields, sprintf usage)`.
type RosterRow = (
    u8,
    &'static str,
    &'static str,
    DeviceType,
    &'static str,
    bool,
    usize,
    usize,
    usize,
    SprintfUsage,
);

/// The full Table I roster.
pub fn device_table() -> Vec<DeviceSpec> {
    use DeviceType::*;
    use SprintfUsage::*;
    let rows: [RosterRow; 22] = [
        (
            1,
            "InRouter",
            "InRouter302",
            IndustrialRouter,
            "V1.0.52",
            false,
            21,
            4,
            82,
            None,
        ),
        (
            2,
            "TP-Link",
            "***",
            SmartCamera,
            "***",
            false,
            16,
            2,
            74,
            None,
        ),
        (
            3,
            "TP-Link",
            "***",
            IndustrialRouter,
            "***",
            false,
            18,
            2,
            102,
            None,
        ),
        (
            4,
            "TP-Link",
            "TL-TR960G",
            FourGRouter,
            "0.1.0.5_Build_211202_Rel.47739n",
            false,
            17,
            3,
            97,
            None,
        ),
        (
            5, "Linksys", "***", WifiRouter, "***", false, 8, 1, 52, None,
        ),
        (
            6,
            "Netgear",
            "GC110",
            SmartSwitch,
            "V1.0.5.36",
            false,
            14,
            1,
            82,
            None,
        ),
        (
            7,
            "Netgear",
            "R8500",
            WifiRouter,
            "V1.0.2.160_1.0.107",
            false,
            18,
            2,
            98,
            None,
        ),
        (
            8,
            "Netgear",
            "WAC720",
            WirelessAccessPoint,
            "V3.1.1.0",
            false,
            13,
            0,
            101,
            MultiField,
        ),
        (
            9,
            "Araknis",
            "AN-100FCC",
            WirelessAccessPoint,
            "V1.3.02",
            false,
            15,
            1,
            96,
            None,
        ),
        (
            10,
            "TENDA",
            "AC6",
            WifiRouter,
            "V02.03.01.114",
            false,
            7,
            1,
            62,
            MultiField,
        ),
        (
            11,
            "Teltonika",
            "RUT241",
            FourGRouter,
            "RUT2M_R_00.07.01.3",
            false,
            13,
            2,
            76,
            SingleField,
        ),
        (
            12,
            "360",
            "C5S",
            WifiRouter,
            "V3.1.2.5552",
            false,
            15,
            4,
            85,
            MultiField,
        ),
        (
            13,
            "Tenvis",
            "319W",
            SmartCamera,
            "V3.7.25",
            false,
            17,
            0,
            162,
            MultiField,
        ),
        (
            14,
            "Western Digital",
            "My cloud",
            Nas,
            "V5.25.124",
            false,
            30,
            4,
            323,
            MultiField,
        ),
        (
            15, "Mindor", "ZCZ001", SmartPlug, "V1.0.7", false, 5, 1, 58, MultiField,
        ),
        (
            16,
            "Mank",
            "WF-CT-10X",
            SmartPlug,
            "V1.1.2",
            false,
            7,
            2,
            71,
            MultiField,
        ),
        (
            17,
            "Cubetoou",
            "T9",
            SmartCamera,
            "a01.04.05.0020.5591a.190822",
            false,
            9,
            0,
            101,
            MultiField,
        ),
        (
            18,
            "DF-iCam",
            "QC061",
            SmartCamera,
            "2.3.04.25.1",
            false,
            13,
            2,
            117,
            MultiField,
        ),
        (
            19,
            "VStarcam",
            "BMW1",
            SmartCamera,
            "10.194.161.48",
            false,
            13,
            1,
            93,
            MultiField,
        ),
        (
            20,
            "RUISION",
            "S4D5620PHR",
            SmartCamera,
            "1.4.0-20230705Z1s",
            false,
            12,
            2,
            87,
            MultiField,
        ),
        (
            21,
            "MOFI",
            "MOFI4500",
            FourGRouter,
            "2_3_5std",
            true,
            0,
            0,
            0,
            None,
        ),
        (
            22,
            "D-LINK",
            "DAP1160L",
            WirelessAccessPoint,
            "FW101WWb04",
            true,
            0,
            0,
            0,
            None,
        ),
    ];
    rows.into_iter()
        .map(
            |(
                id,
                vendor,
                model,
                device_type,
                firmware_version,
                script_based,
                target_messages,
                target_invalid,
                target_fields,
                sprintf,
            )| {
                DeviceSpec {
                    id,
                    vendor,
                    model,
                    device_type,
                    firmware_version,
                    script_based,
                    target_messages,
                    target_invalid,
                    target_fields,
                    sprintf,
                }
            },
        )
        .collect()
}

/// The spec for a device ID (1–22).
pub fn device_spec(id: u8) -> Option<DeviceSpec> {
    device_table().into_iter().find(|d| d.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_table_one() {
        let t = device_table();
        assert_eq!(t.len(), 22);
        assert_eq!(
            t.iter().filter(|d| d.script_based).count(),
            2,
            "devices 21 and 22"
        );
        // 18 distinct vendors (TP-Link ×3, Netgear ×3 in the paper).
        let vendors: std::collections::BTreeSet<_> = t.iter().map(|d| d.vendor).collect();
        assert_eq!(vendors.len(), 18);
        // 7 device types among evaluated devices (NAS included).
        let types: std::collections::BTreeSet<_> = t.iter().map(|d| d.device_type).collect();
        assert!(types.len() >= 7);
    }

    #[test]
    fn totals_match_table_two() {
        let t = device_table();
        let binaries: Vec<_> = t.iter().filter(|d| !d.script_based).collect();
        assert_eq!(binaries.len(), 20);
        let messages: usize = binaries.iter().map(|d| d.target_messages).sum();
        assert_eq!(messages, 281, "Table II total identified messages");
        let invalid: usize = binaries.iter().map(|d| d.target_invalid).sum();
        assert_eq!(messages - invalid, 246, "Table II total valid messages");
        let fields: usize = binaries.iter().map(|d| d.target_fields).sum();
        assert_eq!(fields, 2019, "Table II total identified fields");
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(device_spec(11).unwrap().model, "RUT241");
        assert!(device_spec(0).is_none());
        assert!(device_spec(23).is_none());
    }
}
