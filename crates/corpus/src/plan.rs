//! Message plans: the single source of truth each synthetic device is
//! generated from.
//!
//! A [`MessagePlan`] drives three artifacts at once: the MR32 assembly of
//! the device-cloud executable, the device's ground-truth manifest (used
//! to score reconstruction like Table II), and the vendor-cloud endpoint
//! configuration (used to rediscover the Table III vulnerabilities).

use crate::devices::{DeviceSpec, SprintfUsage};
use firmres_firmware::DeviceType;
use firmres_semantics::Primitive;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Per-device identity material (what NVRAM/getters return, what the
/// cloud has provisioned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceIdentity {
    /// MAC address.
    pub mac: String,
    /// Serial number.
    pub serial: String,
    /// Vendor cloud uid.
    pub uid: String,
    /// Device id.
    pub device_id: String,
    /// Device secret provisioned by the manufacturer.
    pub secret: String,
    /// Owning user account.
    pub user: String,
    /// Owner password.
    pub password: String,
    /// Vendor cloud hostname.
    pub cloud_host: String,
}

impl DeviceIdentity {
    /// Deterministic identity for a device id under a corpus seed.
    pub fn generate(device_id: u8, seed: u64) -> DeviceIdentity {
        let mut rng = StdRng::seed_from_u64(seed ^ (device_id as u64) << 32 | 0xD15C);
        let mac = format!(
            "00:1E:{:02X}:{:02X}:{:02X}:{:02X}",
            rng.gen::<u8>(),
            rng.gen::<u8>(),
            rng.gen::<u8>(),
            rng.gen::<u8>()
        );
        DeviceIdentity {
            mac,
            serial: format!("SN{:010}", rng.gen_range(0u64..10_000_000_000)),
            uid: format!("UID-{:08x}", rng.gen::<u32>()),
            device_id: format!("D{:06}", rng.gen_range(0u32..1_000_000)),
            secret: format!("sec-{:016x}", rng.gen::<u64>()),
            user: format!("user{device_id:02}"),
            password: format!("pw-{:08x}", rng.gen::<u32>()),
            cloud_host: format!("iot{device_id:02}.cloud.example"),
        }
    }

    /// The value of an identity key (`mac`, `serial`, `uid`, …), used by
    /// the probe harness to fill reconstructed messages.
    pub fn value_of(&self, key: &str) -> Option<&str> {
        Some(match key {
            "mac" => &self.mac,
            "serial" | "serial_no" => &self.serial,
            "uid" => &self.uid,
            "device_id" => &self.device_id,
            "device_secret" => &self.secret,
            "cloud_user" => &self.user,
            "cloud_pass" => &self.password,
            "cloud_host" => &self.cloud_host,
            _ => return None,
        })
    }
}

/// Where a field's value comes from in the generated firmware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueSource {
    /// Out-param device-info getter (`get_mac_addr`, `get_serial`, …).
    Getter(&'static str),
    /// `nvram_get(key)`.
    NvramGet(String),
    /// `cfg_get(key)`.
    CfgGet(String),
    /// `getenv(key)`.
    GetEnv(String),
    /// Hard-coded string constant in the data segment.
    Hardcoded(String),
    /// `time()` (numeric).
    Time,
    /// Passed in from the request handler (front-end/user supplied).
    FromRequest,
    /// `hmac_sign(secret, id)` — a derived signature.
    Signed,
}

impl ValueSource {
    /// Whether the value is numeric (formats as `%d`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, ValueSource::Time)
    }
}

/// One planned message field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanField {
    /// Wire key.
    pub key: String,
    /// Ground-truth primitive semantic.
    pub semantic: Primitive,
    /// Value source in the firmware.
    pub source: ValueSource,
}

/// Delivery function used by the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// `SSL_write(ctx, buf, len)`.
    SslWrite,
    /// `send(fd, buf, len, flags)`.
    Send,
    /// `mosquitto_publish(mosq, topic, payload, len)`.
    MqttPublish,
    /// `http_post(host, path, body, hdrs)`.
    HttpPost,
    /// `http_get(host, path, hdrs)` — query in the path.
    HttpGet,
}

impl Delivery {
    /// Import name of the delivery function.
    pub fn import(self) -> &'static str {
        match self {
            Delivery::SslWrite => "SSL_write",
            Delivery::Send => "send",
            Delivery::MqttPublish => "mosquitto_publish",
            Delivery::HttpPost => "http_post",
            Delivery::HttpGet => "http_get",
        }
    }
}

/// Body construction style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyStyle {
    /// One `sprintf` with a `path?k=%s&k2=%s` template.
    SprintfQuery,
    /// One `sprintf` with a JSON template.
    SprintfJson,
    /// cJSON object assembly.
    CJson,
    /// `strcpy`/`strcat` chain of `key=` literals and values.
    StrcatKV,
}

/// Access-control policy class of the serving endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanPolicy {
    /// Verifies authenticity (secret/token/signature/user-cred).
    Secure,
    /// Only checks the device identifier (Table III main class).
    IdentifierOnly,
    /// Binding without verifying the user credential.
    BindNoUserCred,
    /// Registration returning a fixed token without authenticity.
    RegisterFixedToken,
    /// Registration leaking the device secret on identifier-only proof
    /// (the CVE-2023-2586 pattern).
    RegisterLeakSecret,
    /// Open telemetry endpoint: no primitives required by design (a
    /// form-check false-positive generator).
    OpenTelemetry,
    /// Vendor-specific credential (verification code) the form check
    /// does not recognize (the paper's other false-positive class).
    CustomCred,
}

/// What the endpoint returns on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanResponse {
    /// Acknowledgement only.
    Ok,
    /// Fixed token.
    FixedToken,
    /// The device's bind token.
    BindToken,
    /// The device secret / certificate.
    DeviceSecret,
    /// Storage access/secret keys.
    StorageKeys,
    /// Stored resource list.
    ResourceList,
}

/// One planned device-cloud message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessagePlan {
    /// Message index within the device.
    pub index: usize,
    /// Function name in the generated executable.
    pub func_name: String,
    /// Delivery call.
    pub delivery: Delivery,
    /// Endpoint: HTTP path, MQTT topic, or embedded method/path.
    pub endpoint: String,
    /// Body style.
    pub style: BodyStyle,
    /// Fields in construction order.
    pub fields: Vec<PlanField>,
    /// Whether the endpoint exists on the vendor cloud (stale firmware
    /// endpoints make reconstructed messages *invalid*, Table II).
    pub on_cloud: bool,
    /// Addressed to a LAN peer (discarded by the grouping step).
    pub lan: bool,
    /// Serving endpoint's policy class.
    pub policy: PlanPolicy,
    /// Response content.
    pub response: PlanResponse,
    /// Human description (Table III "Functionality").
    pub functionality: String,
    /// Impact statement for flawed endpoints (Table III "Consequence").
    pub consequence: Option<String>,
}

impl MessagePlan {
    /// The field whose semantic is Dev-Identifier, if any.
    pub fn identifier_field(&self) -> Option<&PlanField> {
        self.fields
            .iter()
            .find(|f| f.semantic == Primitive::DevIdentifier)
    }

    /// Whether this plan is one of the seeded vulnerabilities.
    pub fn is_vulnerable(&self) -> bool {
        matches!(
            self.policy,
            PlanPolicy::IdentifierOnly
                | PlanPolicy::BindNoUserCred
                | PlanPolicy::RegisterFixedToken
                | PlanPolicy::RegisterLeakSecret
        )
    }
}

// ---------------------------------------------------------------------
// Field pools
// ---------------------------------------------------------------------

fn identifier_pool(rng: &mut StdRng) -> PlanField {
    let options: [(&str, ValueSource); 6] = [
        ("mac", ValueSource::Getter("get_mac_addr")),
        ("serialNumber", ValueSource::Getter("get_serial")),
        ("uid", ValueSource::Getter("get_uid")),
        ("deviceId", ValueSource::NvramGet("device_id".into())),
        ("sn", ValueSource::NvramGet("serial_no".into())),
        ("productId", ValueSource::CfgGet("product_id".into())),
    ];
    let (key, source) = options[rng.gen_range(0..options.len())].clone();
    PlanField {
        key: key.into(),
        semantic: Primitive::DevIdentifier,
        source,
    }
}

fn secret_pool(rng: &mut StdRng, identity: &DeviceIdentity) -> PlanField {
    // NVRAM-provisioned secrets dominate; hard-coded and config-file
    // secrets are the (rarer) flawed provisioning the form check hunts.
    let pick = match rng.gen_range(0..6) {
        0 => 1,
        1 => 2,
        _ => 0,
    };
    match pick {
        0 => PlanField {
            key: "deviceSecret".into(),
            semantic: Primitive::DevSecret,
            source: ValueSource::NvramGet("device_secret".into()),
        },
        1 => PlanField {
            key: "secretKey".into(),
            semantic: Primitive::DevSecret,
            // The hard-coded Dev-Secret pattern the form check hunts for.
            source: ValueSource::Hardcoded(identity.secret.clone()),
        },
        _ => PlanField {
            key: "cert".into(),
            semantic: Primitive::DevSecret,
            source: ValueSource::CfgGet("device_cert".into()),
        },
    }
}

fn token_field(rng: &mut StdRng) -> PlanField {
    let keys = ["accessToken", "token", "deviceToken", "sessionKey"];
    PlanField {
        key: keys[rng.gen_range(0..keys.len())].into(),
        semantic: Primitive::BindToken,
        source: ValueSource::NvramGet("access_token".into()),
    }
}

fn signature_field() -> PlanField {
    PlanField {
        key: "sign".into(),
        semantic: Primitive::Signature,
        source: ValueSource::Signed,
    }
}

fn usercred_fields() -> Vec<PlanField> {
    vec![
        PlanField {
            key: "username".into(),
            semantic: Primitive::UserCred,
            source: ValueSource::NvramGet("cloud_user".into()),
        },
        PlanField {
            key: "password".into(),
            semantic: Primitive::UserCred,
            source: ValueSource::NvramGet("cloud_pass".into()),
        },
    ]
}

fn meta_pool(rng: &mut StdRng) -> PlanField {
    let options: [(&str, ValueSource); 19] = [
        ("ts", ValueSource::Time),
        ("version", ValueSource::CfgGet("fw_version".into())),
        ("uploadType", ValueSource::Hardcoded("diagnostic".into())),
        ("eventType", ValueSource::Hardcoded("status".into())),
        ("pluginId", ValueSource::Hardcoded("core".into())),
        ("lang", ValueSource::Hardcoded("en".into())),
        ("channel", ValueSource::Hardcoded("0".into())),
        ("log", ValueSource::GetEnv("LOG_DATA".into())),
        ("img", ValueSource::GetEnv("IMG_DATA".into())),
        ("status", ValueSource::GetEnv("DEV_STATUS".into())),
        ("date", ValueSource::Time),
        ("begin", ValueSource::Time),
        ("end", ValueSource::Time),
        ("stream", ValueSource::Hardcoded("main".into())),
        ("type", ValueSource::Hardcoded("video".into())),
        ("region", ValueSource::CfgGet("region".into())),
        ("ssid", ValueSource::NvramGet("ssid".into())),
        ("tz", ValueSource::CfgGet("timezone".into())),
        // Communication address — the model's seventh class (§IV-C).
        ("host", ValueSource::CfgGet("server".into())),
    ];
    let (key, source) = options[rng.gen_range(0..options.len())].clone();
    let semantic = if key == "host" {
        Primitive::Address
    } else {
        Primitive::None
    };
    PlanField {
        key: key.into(),
        semantic,
        source,
    }
}

// ---------------------------------------------------------------------
// Plan generation
// ---------------------------------------------------------------------

const FUNCTIONALITIES: [&str; 8] = [
    "Reporting device status.",
    "Uploading telemetry.",
    "Heartbeat keep-alive.",
    "Syncing configuration.",
    "Uploading diagnostics log.",
    "Reporting firmware version.",
    "Pushing event notification.",
    "Querying cloud time.",
];

/// Device-neutral planning parameters: everything [`plan_messages`]
/// reads off a roster [`DeviceSpec`], decoupled from the fixed Table I
/// rows so the synthetic generator (`synth` module) can drive the same
/// planner from sampled distributions.
#[derive(Debug, Clone)]
pub(crate) struct PlanShape {
    /// Namespacing byte woven into endpoint paths/topics.
    pub device_code: u8,
    /// Device category (drives the delivery-function mix).
    pub device_type: DeviceType,
    /// Formatted-output style of the firmware.
    pub sprintf: SprintfUsage,
    /// Target number of device-cloud messages.
    pub target_messages: usize,
    /// Of those, how many land on stale (invalid) endpoints.
    pub target_invalid: usize,
    /// Target total field count across messages.
    pub target_fields: usize,
    /// Pre-seeded (vulnerable) plans placed before the generated ones.
    pub seeded: Vec<MessagePlan>,
    /// Emit an open-telemetry false-positive generator message.
    pub fp_open: bool,
    /// Emit a custom-credential false-positive generator message.
    pub fp_custom: bool,
    /// Append a LAN-addressed message (filtered by the grouping step).
    pub lan_extra: bool,
}

/// Generate the full message-plan list for a device. Deterministic for a
/// given `(spec.id, seed)`.
pub fn plan_messages(spec: &DeviceSpec, identity: &DeviceIdentity, seed: u64) -> Vec<MessagePlan> {
    if spec.script_based {
        return Vec::new();
    }
    let shape = PlanShape {
        device_code: spec.id,
        device_type: spec.device_type,
        sprintf: spec.sprintf,
        target_messages: spec.target_messages,
        target_invalid: spec.target_invalid,
        target_fields: spec.target_fields,
        seeded: crate::vulns::vulnerable_plans(spec.id),
        // Sprinkle FP generators on larger corpora.
        fp_open: spec.id % 4 == 1, // a handful of devices
        fp_custom: spec.id % 7 == 3,
        // One LAN-addressed message on every fourth device.
        lan_extra: spec.id % 4 == 2,
    };
    plan_for_shape(shape, identity, seed ^ ((spec.id as u64) << 17) ^ 0x9E37)
}

/// The shared planner core behind [`plan_messages`] and the synthetic
/// generator. `rng_seed` is consumed as-is (callers fold in their own
/// device salt). The RNG call sequence is part of the corpus's
/// byte-determinism contract: reordering draws regenerates every device.
pub(crate) fn plan_for_shape(
    shape: PlanShape,
    identity: &DeviceIdentity,
    rng_seed: u64,
) -> Vec<MessagePlan> {
    let PlanShape {
        device_code,
        device_type,
        sprintf,
        target_messages,
        target_invalid,
        target_fields,
        seeded,
        fp_open,
        fp_custom,
        lan_extra,
    } = shape;
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut plans: Vec<MessagePlan> = seeded;
    let vuln_fields: usize = plans.iter().map(|p| p.fields.len()).sum();
    let remaining_msgs = target_messages.saturating_sub(plans.len());
    let remaining_fields = target_fields.saturating_sub(vuln_fields);

    // Field-count distribution over the remaining messages.
    let mut sizes = vec![0usize; remaining_msgs];
    if let Some(per_msg) = remaining_fields.checked_div(remaining_msgs) {
        let cap = (per_msg + 4).clamp(12, 16);
        let base = per_msg.clamp(2, cap);
        sizes.fill(base);
        let mut leftover = remaining_fields.saturating_sub(sizes.iter().sum());
        // Bounded distribution: if every message is at the per-message cap
        // the residue is dropped (totals are targets, not exact counts).
        let mut attempts = sizes.len() * 16;
        while leftover > 0 && attempts > 0 {
            attempts -= 1;
            let i = rng.gen_range(0..sizes.len());
            if sizes[i] < cap {
                sizes[i] += 1;
                leftover -= 1;
            }
        }
        // Jitter: real firmware mixes short registration pings with long
        // telemetry reports; short messages also exercise the sprintf
        // styles (<= 4 fields).
        for _ in 0..remaining_msgs * 2 {
            let i = rng.gen_range(0..sizes.len());
            let j = rng.gen_range(0..sizes.len());
            let shift = rng.gen_range(1..=3usize);
            if sizes[i] >= 2 + shift && sizes[j] + shift <= cap {
                sizes[i] -= shift;
                sizes[j] += shift;
            }
        }
        // Multi-field-sprintf devices get a guaranteed share (about a
        // third) of short messages so formatted templates appear
        // (Table II thd columns); the trimmed fields are pushed back onto
        // longer messages to hold the device total.
        if sprintf == SprintfUsage::MultiField {
            let before: usize = sizes.iter().sum();
            let mut k = 0;
            while k < sizes.len() {
                sizes[k] = rng.gen_range(2..=4);
                k += 3;
            }
            let mut deficit = before.saturating_sub(sizes.iter().sum());
            let mut attempts = sizes.len() * 16;
            while deficit > 0 && attempts > 0 {
                attempts -= 1;
                let i = rng.gen_range(0..sizes.len());
                if sizes[i] >= 5 && sizes[i] < cap {
                    sizes[i] += 1;
                    deficit -= 1;
                }
            }
        }
    }

    // Which of the generated messages are invalid (stale endpoints) and
    // which are form-check FP generators.
    let mut invalid_slots: Vec<usize> = (0..remaining_msgs).collect();
    invalid_slots.shuffle(&mut rng);
    let invalid: std::collections::BTreeSet<usize> =
        invalid_slots.into_iter().take(target_invalid).collect();

    let styles = style_palette(sprintf);
    for (i, &nfields) in sizes.iter().enumerate() {
        let idx = plans.len();
        // Short messages on sprintf-using devices prefer formatted
        // templates (they fit the 4-value argument budget), reproducing
        // the paper's mix of sprintf- and library-assembled messages.
        let style = if sprintf == SprintfUsage::MultiField && nfields <= 4 && rng.gen_bool(0.75) {
            if rng.gen_bool(0.6) {
                BodyStyle::SprintfQuery
            } else {
                BodyStyle::SprintfJson
            }
        } else {
            styles[rng.gen_range(0..styles.len())]
        };
        let delivery = delivery_for(device_type, style, &mut rng);
        let functionality = FUNCTIONALITIES[rng.gen_range(0..FUNCTIONALITIES.len())];
        let endpoint = endpoint_for(device_code, idx, delivery, functionality, &mut rng);

        let mut fields: Vec<PlanField> = Vec::new();
        let mut policy = PlanPolicy::Secure;
        let mut is_fp_open = false;
        if fp_open && i == 1 {
            // Open telemetry: event fields only, no primitives.
            is_fp_open = true;
            policy = PlanPolicy::OpenTelemetry;
            let mut attempts = 64;
            while fields.len() < nfields.max(3) && attempts > 0 {
                attempts -= 1;
                let f = meta_pool(&mut rng);
                if !fields.iter().any(|x| x.key == f.key) {
                    fields.push(f);
                }
            }
        } else if fp_custom && i == 2 {
            // Custom credential: identifier + vendor verification code.
            policy = PlanPolicy::CustomCred;
            fields.push(identifier_pool(&mut rng));
            // Front-end-supplied verification code: arrives via the
            // device web UI, modeled as an environment read (the paper's
            // front-end taint-sink category).
            fields.push(PlanField {
                key: "vcode".into(),
                semantic: Primitive::UserCred,
                source: ValueSource::GetEnv("VCODE".into()),
            });
            let mut attempts = 64;
            while fields.len() < nfields && attempts > 0 {
                attempts -= 1;
                let f = meta_pool(&mut rng);
                if !fields.iter().any(|x| x.key == f.key) {
                    fields.push(f);
                }
            }
        } else {
            // Regular business message: identifier + authenticity + meta.
            fields.push(identifier_pool(&mut rng));
            match rng.gen_range(0..4) {
                0 => fields.push(token_field(&mut rng)),
                1 => fields.push(signature_field()),
                2 => {
                    // Composition ③ of §II-B: identifier + Dev-Secret +
                    // User-Cred (a lone secret is not a valid business form).
                    fields.push(secret_pool(&mut rng, identity));
                    fields.extend(usercred_fields());
                }
                _ => fields.push(token_field(&mut rng)),
            }
            let mut attempts = 64;
            while fields.len() < nfields && attempts > 0 {
                attempts -= 1;
                let f = meta_pool(&mut rng);
                if !fields.iter().any(|x| x.key == f.key) {
                    fields.push(f);
                }
            }
        }
        // sprintf styles carry at most 4 value fields (argument registers);
        // overflow switches style.
        let style = if matches!(style, BodyStyle::SprintfQuery | BodyStyle::SprintfJson)
            && fields.len() > 4
        {
            if sprintf == SprintfUsage::MultiField {
                BodyStyle::StrcatKV
            } else {
                BodyStyle::CJson
            }
        } else {
            style
        };
        let _ = is_fp_open;
        plans.push(MessagePlan {
            index: idx,
            func_name: format!("snd_{idx:02}"),
            delivery,
            endpoint,
            style,
            fields,
            on_cloud: !invalid.contains(&i),
            lan: false,
            policy,
            response: PlanResponse::Ok,
            functionality: functionality.to_string(),
            consequence: None,
        });
    }

    // Re-number the vulnerable plans' function names consistently.
    for (i, p) in plans.iter_mut().enumerate() {
        p.index = i;
        p.func_name = format!("snd_{i:02}");
    }

    // LAN-addressed message (filtered out by the grouping step, not
    // counted in Table II).
    if lan_extra {
        let idx = plans.len();
        plans.push(MessagePlan {
            index: idx,
            func_name: format!("snd_{idx:02}"),
            delivery: Delivery::HttpPost,
            endpoint: "/local/sync".into(),
            style: BodyStyle::SprintfQuery,
            fields: vec![PlanField {
                key: "state".into(),
                semantic: Primitive::None,
                source: ValueSource::GetEnv("DEV_STATUS".into()),
            }],
            on_cloud: false,
            lan: true,
            policy: PlanPolicy::OpenTelemetry,
            response: PlanResponse::Ok,
            functionality: "Announcing state to LAN peer.".into(),
            consequence: None,
        });
    }
    plans
}

fn style_palette(sprintf: SprintfUsage) -> Vec<BodyStyle> {
    match sprintf {
        SprintfUsage::None => vec![BodyStyle::CJson, BodyStyle::StrcatKV],
        SprintfUsage::SingleField => vec![BodyStyle::CJson, BodyStyle::StrcatKV],
        SprintfUsage::MultiField => vec![
            BodyStyle::SprintfQuery,
            BodyStyle::SprintfJson,
            BodyStyle::CJson,
            BodyStyle::StrcatKV,
        ],
    }
}

fn delivery_for(device_type: DeviceType, style: BodyStyle, rng: &mut StdRng) -> Delivery {
    use firmres_firmware::DeviceType::*;
    let choices: &[Delivery] = match device_type {
        SmartCamera => &[Delivery::HttpPost, Delivery::SslWrite, Delivery::HttpGet],
        SmartPlug => &[Delivery::MqttPublish, Delivery::HttpPost],
        Nas => &[Delivery::HttpPost, Delivery::SslWrite],
        IndustrialRouter | FourGRouter => &[Delivery::SslWrite, Delivery::MqttPublish],
        _ => &[Delivery::HttpPost, Delivery::Send, Delivery::MqttPublish],
    };
    let d = choices[rng.gen_range(0..choices.len())];
    // HttpGet carries the query in the path; pair it with query style.
    if d == Delivery::HttpGet && style != BodyStyle::SprintfQuery {
        Delivery::HttpPost
    } else {
        d
    }
}

fn endpoint_for(
    device: u8,
    index: usize,
    delivery: Delivery,
    functionality: &str,
    _rng: &mut StdRng,
) -> String {
    let slug: String = functionality
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect::<String>()
        .split('-')
        .filter(|s| !s.is_empty())
        .take(2)
        .collect::<Vec<_>>()
        .join("/");
    match delivery {
        Delivery::MqttPublish => format!("/dev{device:02}/{slug}/m{index}"),
        _ => format!("/api/v{}/{slug}/m{index}", device % 3 + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::device_spec;

    #[test]
    fn identity_is_deterministic_and_unique() {
        let a = DeviceIdentity::generate(5, 42);
        let b = DeviceIdentity::generate(5, 42);
        assert_eq!(a, b);
        let c = DeviceIdentity::generate(6, 42);
        assert_ne!(a.mac, c.mac);
        assert_ne!(a.secret, c.secret);
        assert!(a.mac.starts_with("00:1E:"));
        assert_eq!(a.value_of("mac"), Some(a.mac.as_str()));
        assert_eq!(a.value_of("nonsense"), None);
    }

    #[test]
    fn plans_match_device_targets() {
        let seed = 7;
        for id in 1..=20u8 {
            let spec = device_spec(id).unwrap();
            let identity = DeviceIdentity::generate(id, seed);
            let plans = plan_messages(&spec, &identity, seed);
            let counted: Vec<_> = plans.iter().filter(|p| !p.lan).collect();
            assert_eq!(
                counted.len(),
                spec.target_messages,
                "device {id} message count"
            );
            let invalid = counted.iter().filter(|p| !p.on_cloud).count();
            assert_eq!(invalid, spec.target_invalid, "device {id} invalid count");
            let fields: usize = counted.iter().map(|p| p.fields.len()).sum();
            // Field totals are a target, not exact: sizes are clamped to
            // [2, 10] per message.
            let diff = (fields as i64 - spec.target_fields as i64).abs();
            assert!(
                diff <= spec.target_fields as i64 / 4 + 10,
                "device {id}: planned {fields} vs target {}",
                spec.target_fields
            );
        }
    }

    #[test]
    fn script_devices_have_no_plans() {
        let spec = device_spec(21).unwrap();
        let identity = DeviceIdentity::generate(21, 7);
        assert!(plan_messages(&spec, &identity, 7).is_empty());
    }

    #[test]
    fn vulnerable_plans_are_first_and_marked() {
        let spec = device_spec(20).unwrap();
        let identity = DeviceIdentity::generate(20, 7);
        let plans = plan_messages(&spec, &identity, 7);
        let vulns: Vec<_> = plans.iter().filter(|p| p.is_vulnerable()).collect();
        assert_eq!(vulns.len(), 3, "device 20 has three Table III rows");
        assert!(vulns.iter().all(|p| p.consequence.is_some()));
    }

    #[test]
    fn plan_function_names_are_unique() {
        let spec = device_spec(14).unwrap();
        let identity = DeviceIdentity::generate(14, 7);
        let plans = plan_messages(&spec, &identity, 7);
        let names: std::collections::BTreeSet<_> = plans.iter().map(|p| &p.func_name).collect();
        assert_eq!(names.len(), plans.len());
    }

    #[test]
    fn sprintf_styles_capped_at_four_fields() {
        for id in 1..=20u8 {
            let spec = device_spec(id).unwrap();
            let identity = DeviceIdentity::generate(id, 3);
            for p in plan_messages(&spec, &identity, 3) {
                if matches!(p.style, BodyStyle::SprintfQuery | BodyStyle::SprintfJson) {
                    assert!(p.fields.len() <= 4, "device {id} {}", p.func_name);
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = device_spec(13).unwrap();
        let identity = DeviceIdentity::generate(13, 9);
        let a = plan_messages(&spec, &identity, 9);
        let b = plan_messages(&spec, &identity, 9);
        assert_eq!(a, b);
    }
}
