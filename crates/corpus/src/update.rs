//! Synthetic firmware *updates*: mutate a controllable fraction of a
//! generated image's functions in place.
//!
//! The unit-granular incremental driver's value proposition is "an
//! update touches few functions, so few message units re-run". To
//! measure that with a controllable knob, [`mutate_firmware`] takes a
//! generated image and flips one immediate bit in `percent`% of its
//! functions (seeded, deterministic): every mutated function's lifted
//! body — and therefore its content hash — changes, while the image's
//! symbol tables, data segments and function directories stay intact, so
//! unit locators remain stable and only the mutated functions' dependent
//! units go dirty.
//!
//! Only executables containing a selected function are re-sealed;
//! untouched executables keep byte-identical entries (their stage-1
//! verdict artifacts stay warm), mirroring a real incremental update
//! that patches one binary. Devices whose cloud logic is script-based
//! (corpus devices 21/22) still carry mutable helper executables; an
//! image with no executables at all comes back unchanged.

use firmres_firmware::{FileEntry, FirmwareImage};
use firmres_isa::{Executable, CODE_BASE};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A mutated image plus the manifest of what changed.
#[derive(Debug)]
pub struct FirmwareUpdate {
    /// The updated image (mutated executables re-sealed and replaced).
    pub image: FirmwareImage,
    /// `(executable path, function name)` per mutated function.
    pub mutated: Vec<(String, String)>,
}

/// Opcodes whose immediate low bit can be flipped without changing the
/// instruction's shape: the lifted IR differs in exactly one constant.
fn flippable(word: u32) -> bool {
    matches!(word >> 26, 13 | 15 | 16) // addi | ori | xori
}

/// Mutate `percent`% of the functions across `fw`'s executables,
/// deterministically under `seed`.
///
/// The fraction is of *all* functions in the image; the count is rounded
/// up, so any `percent > 0` mutates at least one function when one is
/// eligible (a function with no immediate-carrying instruction cannot be
/// mutated and is skipped by selection). Returns the new image and the
/// list of mutated functions; an image with no executables (script
/// devices) is returned unchanged.
pub fn mutate_firmware(fw: &FirmwareImage, percent: f64, seed: u64) -> FirmwareUpdate {
    let mut exes: Vec<(String, Executable)> = fw
        .executables()
        .filter_map(|(path, bytes)| {
            Executable::from_bytes(bytes)
                .ok()
                .map(|exe| (path.to_string(), exe))
        })
        .collect();

    // Enumerate eligible targets: (exe index, func index, word index of
    // the first flippable instruction in the function's range).
    let total_functions: usize = exes.iter().map(|(_, e)| e.funcs.len()).sum();
    let mut targets: Vec<(usize, usize, usize)> = Vec::new();
    for (ei, (_, exe)) in exes.iter().enumerate() {
        for (fi, func) in exe.funcs.iter().enumerate() {
            let start = ((func.addr - CODE_BASE) / 4) as usize;
            let end = exe
                .funcs
                .get(fi + 1)
                .map(|next| ((next.addr - CODE_BASE) / 4) as usize)
                .unwrap_or(exe.code.len());
            if let Some(wi) = (start..end.min(exe.code.len())).find(|&i| flippable(exe.code[i])) {
                targets.push((ei, fi, wi));
            }
        }
    }

    let want = ((percent / 100.0) * total_functions as f64).ceil().max(0.0) as usize;
    let want = if percent > 0.0 { want.max(1) } else { 0 };
    let mut rng = StdRng::seed_from_u64(seed);
    targets.shuffle(&mut rng);
    targets.truncate(want.min(targets.len()));
    // Deterministic manifest order regardless of the shuffle.
    targets.sort_unstable();

    let mut mutated = Vec::with_capacity(targets.len());
    let mut touched_exes: Vec<bool> = vec![false; exes.len()];
    for (ei, fi, wi) in targets {
        let (path, exe) = &mut exes[ei];
        exe.code[wi] ^= 1; // flip the immediate's low bit
        touched_exes[ei] = true;
        mutated.push((path.clone(), exe.funcs[fi].name.clone()));
    }

    let mut image = fw.clone();
    for (touched, (path, exe)) in touched_exes.into_iter().zip(&exes) {
        if touched {
            image.add_file(path.clone(), FileEntry::Executable(exe.to_bytes().to_vec()));
        }
    }
    FirmwareUpdate { image, mutated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_device;

    #[test]
    fn mutation_is_deterministic_and_proportional() {
        let dev = generate_device(10, 7);
        let a = mutate_firmware(&dev.firmware, 1.0, 42);
        let b = mutate_firmware(&dev.firmware, 1.0, 42);
        assert_eq!(a.mutated, b.mutated, "same seed, same mutations");
        assert_eq!(a.image, b.image);
        assert!(!a.mutated.is_empty(), "1% of a real image rounds up to ≥1");

        let heavy = mutate_firmware(&dev.firmware, 50.0, 42);
        assert!(
            heavy.mutated.len() > a.mutated.len(),
            "higher percentage mutates more functions"
        );
        let other_seed = mutate_firmware(&dev.firmware, 50.0, 43);
        assert_ne!(
            heavy.mutated, other_seed.mutated,
            "selection varies with the seed"
        );
    }

    #[test]
    fn mutated_image_differs_but_still_parses() {
        let dev = generate_device(10, 7);
        let update = mutate_firmware(&dev.firmware, 1.0, 42);
        assert_ne!(update.image, dev.firmware);
        // Every executable still parses; mutated ones differ in exactly
        // the code image.
        for (path, bytes) in update.image.executables() {
            let exe = Executable::from_bytes(bytes).expect("re-sealed executable parses");
            let orig = dev
                .firmware
                .executables()
                .find(|(p, _)| *p == path)
                .map(|(_, b)| Executable::from_bytes(b).unwrap())
                .unwrap();
            assert_eq!(exe.funcs, orig.funcs, "symbols are untouched");
            assert_eq!(exe.data, orig.data, "data segment is untouched");
        }
        // Zero percent is the identity.
        let noop = mutate_firmware(&dev.firmware, 0.0, 42);
        assert_eq!(noop.image, dev.firmware);
        assert!(noop.mutated.is_empty());
    }

    #[test]
    fn script_devices_mutate_helpers_only_and_no_exes_is_a_noop() {
        // Device 21's cloud logic is script-based, but its helper
        // executables (watchdog, httpd) are still mutable.
        let dev = generate_device(21, 7);
        assert!(dev.cloud_executable.is_none());
        let update = mutate_firmware(&dev.firmware, 10.0, 42);
        assert!(!update.mutated.is_empty());

        // An image with no executables at all comes back unchanged.
        let bare = {
            let mut fw = FirmwareImage::new(dev.firmware.device().clone());
            fw.add_file(
                "/usr/bin/sync.sh",
                firmres_firmware::FileEntry::Script {
                    lang: firmres_firmware::ScriptLang::Shell,
                    text: "#!/bin/sh\n".into(),
                },
            );
            fw
        };
        let noop = mutate_firmware(&bare, 10.0, 42);
        assert_eq!(noop.image, bare);
        assert!(noop.mutated.is_empty());
    }
}
