//! Differential testing: statically reconstructed messages vs. what the
//! firmware *actually sends* when executed.
//!
//! The paper validates reconstructions against live clouds; this suite
//! goes further — it runs each generated device-cloud message function in
//! the MR32 emulator with a host shim (NVRAM, config, cJSON, clock),
//! captures the payload handed to the delivery function, and checks that
//! the static pipeline's filled message carries exactly the same
//! parameters.

use firmres::{analyze_firmware, fill_message, AnalysisConfig};
use firmres_cloud::mac::derive_signature;
use firmres_cloud::HttpRequest;
use firmres_corpus::{generate_device, Delivery};
use firmres_firmware::FirmwareImage;
use firmres_isa::{Emulator, Mem};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Captured delivery: (function name, endpoint if separate, payload).
type Sent = Rc<RefCell<Vec<(String, Option<String>, String)>>>;

/// Host shim backing the emulated firmware: NVRAM/config reads come from
/// the firmware image, cJSON is a tiny object store, deliveries are
/// captured.
struct Host {
    nvram: BTreeMap<String, String>,
    config: BTreeMap<String, String>,
    objects: Vec<BTreeMap<String, firmres_cloud::json::Json>>,
    sent: Sent,
}

impl Host {
    fn new(fw: &FirmwareImage, sent: Sent) -> Host {
        let nvram = fw
            .nvram()
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut config = BTreeMap::new();
        for key in [
            "server",
            "port",
            "fw_version",
            "model",
            "product_id",
            "device_cert",
            "hw_version",
            "cluster",
            "region",
            "timezone",
        ] {
            if let Some(v) = fw.config_value(key) {
                config.insert(key.to_string(), v);
            }
        }
        Host {
            nvram,
            config,
            objects: Vec::new(),
            sent,
        }
    }

    fn call(&mut self, name: &str, args: [u32; 6], mem: &mut Mem) -> u32 {
        match name {
            "nvram_get" => {
                let key = mem.read_cstr(args[0]).unwrap();
                let v = self.nvram.get(&key).cloned().unwrap_or_default();
                mem.alloc_cstr(&v).unwrap()
            }
            "cfg_get" => {
                let key = mem.read_cstr(args[0]).unwrap();
                let v = self.config.get(&key).cloned().unwrap_or_default();
                mem.alloc_cstr(&v).unwrap()
            }
            "getenv" => mem.alloc_cstr("env-value").unwrap(),
            "time" => 1_751_700_000,
            "get_mac_addr" | "get_serial" | "get_uid" => {
                let key = match name {
                    "get_mac_addr" => "mac",
                    "get_serial" => "serial_no",
                    _ => "uid",
                };
                let v = self.nvram.get(key).cloned().unwrap_or_default();
                mem.write_cstr(args[0], &v).unwrap();
                args[0]
            }
            "hmac_sign" => {
                let secret = mem.read_cstr(args[0]).unwrap();
                let id = self.nvram.get("device_id").cloned().unwrap_or_default();
                mem.alloc_cstr(&derive_signature(&secret, &id)).unwrap()
            }
            "cJSON_CreateObject" => {
                self.objects.push(BTreeMap::new());
                self.objects.len() as u32 // 1-based handle
            }
            "cJSON_AddStringToObject" => {
                let k = mem.read_cstr(args[1]).unwrap();
                let v = mem.read_cstr(args[2]).unwrap();
                let obj = &mut self.objects[args[0] as usize - 1];
                obj.insert(k, firmres_cloud::json::Json::Str(v));
                0
            }
            "cJSON_AddNumberToObject" => {
                let k = mem.read_cstr(args[1]).unwrap();
                let obj = &mut self.objects[args[0] as usize - 1];
                obj.insert(k, firmres_cloud::json::Json::Num(args[2] as i64));
                0
            }
            "cJSON_Print" => {
                let obj = self.objects[args[0] as usize - 1].clone();
                let text = firmres_cloud::json::Json::Obj(obj).to_string();
                mem.alloc_cstr(&text).unwrap()
            }
            "SSL_write" | "send" => {
                let payload = mem.read_cstr(args[1]).unwrap();
                self.sent
                    .borrow_mut()
                    .push((name.to_string(), None, payload));
                0
            }
            "mosquitto_publish" => {
                let topic = mem.read_cstr(args[1]).unwrap();
                let payload = mem.read_cstr(args[2]).unwrap();
                self.sent
                    .borrow_mut()
                    .push((name.to_string(), Some(topic), payload));
                0
            }
            "http_post" => {
                let path = mem.read_cstr(args[1]).unwrap();
                let payload = mem.read_cstr(args[2]).unwrap();
                self.sent
                    .borrow_mut()
                    .push((name.to_string(), Some(path), payload));
                0
            }
            "http_get" => {
                let path = mem.read_cstr(args[1]).unwrap();
                self.sent.borrow_mut().push((name.to_string(), None, path));
                0
            }
            "ssl_connect" | "register_callback" | "event_loop" => 0,
            other => panic!("unexpected host call {other}"),
        }
    }
}

/// Parse an emulated payload into parameters (JSON body, query string, or
/// a GET path with query).
fn emulated_params(payload: &str) -> BTreeMap<String, String> {
    let req = if payload.starts_with('/') || payload.contains('?') {
        HttpRequest::new(payload, "")
    } else {
        HttpRequest::new("/", payload)
    };
    let mut params = req.params();
    params.remove("path");
    params.remove("method");
    params
}

fn differential_check(device_id: u8) {
    let dev = generate_device(device_id, 7);
    let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
    let exe = dev
        .firmware
        .load_executable(dev.cloud_executable.as_deref().unwrap())
        .unwrap();

    let mut compared = 0;
    for plan in dev.plans.iter().filter(|p| !p.lan) {
        // Dynamic: run the message function under the emulator.
        let sent: Sent = Rc::new(RefCell::new(Vec::new()));
        let mut host = Host::new(&dev.firmware, Rc::clone(&sent));
        let mut emu = Emulator::new(&exe, |name: &str, args: [u32; 6], mem: &mut Mem| {
            host.call(name, args, mem)
        });
        emu.run_function(&plan.func_name, &[])
            .unwrap_or_else(|e| panic!("device {device_id} {} crashed: {e}", plan.func_name));
        let sent = sent.borrow();
        assert_eq!(sent.len(), 1, "{} delivers exactly once", plan.func_name);
        let (delivery_fn, endpoint, payload) = &sent[0];
        assert_eq!(*delivery_fn, plan.delivery.import(), "{}", plan.func_name);
        let dynamic = emulated_params(payload);

        // Static: the reconstructed message filled from the firmware.
        let record = analysis
            .identified()
            .find(|r| r.function == plan.func_name)
            .unwrap_or_else(|| panic!("no reconstruction for {}", plan.func_name));
        let filled = fill_message(&record.message, &dev.firmware);

        assert_eq!(
            dynamic, filled.params,
            "device {device_id} {}: static reconstruction ({:?}) diverges from execution ({payload})",
            plan.func_name, record.message
        );
        // Endpoints agree too (topic/path argument or embedded).
        if matches!(plan.delivery, Delivery::MqttPublish | Delivery::HttpPost) {
            assert_eq!(
                endpoint.as_deref(),
                filled.endpoint.as_deref(),
                "{}",
                plan.func_name
            );
        }
        compared += 1;
    }
    assert!(
        compared >= 5,
        "device {device_id}: {compared} messages compared"
    );
}

#[test]
fn device_10_static_equals_dynamic() {
    differential_check(10);
}

#[test]
fn device_11_static_equals_dynamic() {
    differential_check(11);
}

#[test]
fn device_13_static_equals_dynamic() {
    differential_check(13);
}

#[test]
fn device_20_static_equals_dynamic() {
    differential_check(20);
}

#[test]
fn device_5_static_equals_dynamic() {
    differential_check(5);
}
