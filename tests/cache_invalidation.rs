//! The analysis cache's correctness contract: warm runs are
//! byte-identical to the cold run that populated the store, and any
//! change to the image bytes, the pipeline version, the analysis
//! configuration, or the semantics classifier invalidates the entry
//! (forces a miss).

use firmres::{AnalysisConfig, NullObserver};
use firmres_cache::{analyze_corpus_incremental, codec, AnalysisCache, CacheKey, PIPELINE_VERSION};
use firmres_corpus::generate_corpus;
use firmres_firmware::FirmwareImage;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("firmres-invalidation-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The exact bytes the store persists for an analysis — timings, MFTs,
/// IR operations and all. Byte equality here is the strongest
/// observable-equality statement the system can make.
fn encoded(analysis: &firmres::FirmwareAnalysis) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_analysis(&mut out, analysis);
    out
}

#[test]
fn warm_rerun_is_byte_identical_over_the_full_corpus() {
    let corpus = generate_corpus(7);
    let images: Vec<&FirmwareImage> = corpus.iter().map(|d| &d.firmware).collect();
    let config = AnalysisConfig::default();
    let cache = AnalysisCache::new(temp_dir("full-corpus"));

    let cold = analyze_corpus_incremental(&images, None, &config, 4, &cache, &mut NullObserver);
    assert_eq!(cold.stats.misses, images.len() as u64);
    assert_eq!(cold.stats.hits, 0);

    let warm = analyze_corpus_incremental(&images, None, &config, 4, &cache, &mut NullObserver);
    assert_eq!(warm.stats.hits, images.len() as u64);
    assert_eq!(warm.stats.misses, 0);
    assert_eq!(warm.stats.hit_rate(), 1.0);

    for ((dev, c), w) in corpus.iter().zip(&cold.analyses).zip(&warm.analyses) {
        assert_eq!(
            encoded(c),
            encoded(w),
            "device {} warm result is not byte-identical to cold",
            dev.spec.id
        );
    }
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn image_byte_flip_forces_a_miss() {
    let dev = firmres_corpus::generate_device(10, 7);
    let config = AnalysisConfig::default();
    let packed = dev.firmware.pack();

    let key = CacheKey::of_packed(&packed, None, &config);
    let mut flipped = packed.to_vec();
    // Flip one payload byte: a genuinely different firmware image.
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    let flipped_key = CacheKey::of_packed(&flipped, None, &config);

    assert_ne!(
        key, flipped_key,
        "one flipped byte must change the cache key"
    );
    assert_ne!(key.file_name(), flipped_key.file_name());

    // And therefore a populated store has no entry for the flipped image.
    let cache = AnalysisCache::new(temp_dir("byteflip"));
    let analysis = firmres::analyze_firmware(&dev.firmware, None, &config);
    cache.store(&key, &analysis).unwrap();
    assert!(cache.load(&key).is_ok());
    assert!(cache.load(&flipped_key).unwrap_err().is_miss());
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn pipeline_version_bump_forces_a_miss() {
    let dev = firmres_corpus::generate_device(10, 7);
    let config = AnalysisConfig::default();
    let key = CacheKey::compute(&dev.firmware, None, &config);
    assert_eq!(key.pipeline, PIPELINE_VERSION);

    // A future pipeline's key: same image, same config, bumped version.
    let future = CacheKey {
        pipeline: PIPELINE_VERSION + 1,
        ..key
    };
    assert_ne!(key.file_name(), future.file_name());

    let cache = AnalysisCache::new(temp_dir("version"));
    let analysis = firmres::analyze_firmware(&dev.firmware, None, &config);
    cache.store(&key, &analysis).unwrap();
    assert!(cache.load(&key).is_ok());
    assert!(cache.load(&future).unwrap_err().is_miss());
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn classifier_change_forces_a_miss() {
    use firmres_semantics::{Classifier, Primitive, TrainConfig};
    let dev = firmres_corpus::generate_device(10, 7);
    let config = AnalysisConfig::default();
    let image: &FirmwareImage = &dev.firmware;
    let cache = AnalysisCache::new(temp_dir("classifier"));

    // Cold run without a model, as `analyze img --cache d` would do.
    let bare = analyze_corpus_incremental(&[image], None, &config, 1, &cache, &mut NullObserver);
    assert_eq!(bare.stats.misses, 1);

    // `analyze img model.fsm --cache d` over the same store must re-run
    // the pipeline, not silently serve the no-model analysis.
    let data = vec![
        ("mac address".to_string(), Primitive::DevIdentifier),
        ("password login".to_string(), Primitive::UserCred),
    ];
    let model = Classifier::train(
        &data,
        &TrainConfig {
            epochs: 3,
            ..Default::default()
        },
    );
    let with_model = analyze_corpus_incremental(
        &[image],
        Some(&model),
        &config,
        1,
        &cache,
        &mut NullObserver,
    );
    assert_eq!(with_model.stats.misses, 1);

    // A differently-trained model is a different key again.
    let other = Classifier::train(
        &data,
        &TrainConfig {
            epochs: 4,
            ..Default::default()
        },
    );
    let with_other = analyze_corpus_incremental(
        &[image],
        Some(&other),
        &config,
        1,
        &cache,
        &mut NullObserver,
    );
    assert_eq!(with_other.stats.misses, 1);

    // All three variants now coexist and hit independently.
    let warm = analyze_corpus_incremental(
        &[image],
        Some(&model),
        &config,
        1,
        &cache,
        &mut NullObserver,
    );
    assert_eq!(warm.stats.hits, 1);
    assert_eq!(encoded(&warm.analyses[0]), encoded(&with_model.analyses[0]));
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn config_change_forces_a_miss() {
    let dev = firmres_corpus::generate_device(10, 7);
    let base = AnalysisConfig::default();
    let mut ablated = AnalysisConfig::default();
    ablated.taint.overtaint = false;

    let cache = AnalysisCache::new(temp_dir("config"));
    let image: &FirmwareImage = &dev.firmware;

    let first = analyze_corpus_incremental(&[image], None, &base, 1, &cache, &mut NullObserver);
    assert_eq!(first.stats.misses, 1);

    // Same image, different taint config: a fresh analysis, not the
    // cached over-taint result.
    let second = analyze_corpus_incremental(&[image], None, &ablated, 1, &cache, &mut NullObserver);
    assert_eq!(second.stats.misses, 1, "config change must not hit");

    // Both configurations are now cached independently.
    let warm_base = analyze_corpus_incremental(&[image], None, &base, 1, &cache, &mut NullObserver);
    let warm_ablated =
        analyze_corpus_incremental(&[image], None, &ablated, 1, &cache, &mut NullObserver);
    assert_eq!(warm_base.stats.hits, 1);
    assert_eq!(warm_ablated.stats.hits, 1);
    assert_eq!(encoded(&warm_base.analyses[0]), encoded(&first.analyses[0]));
    assert_eq!(
        encoded(&warm_ablated.analyses[0]),
        encoded(&second.analyses[0])
    );
    let _ = std::fs::remove_dir_all(cache.dir());
}
