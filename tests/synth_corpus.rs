//! Synthetic-fleet generator guarantees (ISSUE 7): any seed yields
//! devices that analyze without Error-severity diagnostics, and
//! synthesis is byte-deterministic — across runs and across generation
//! thread counts.

use firmres::{analyze_packed, run_pool, AnalysisConfig, Severity};
use firmres_corpus::{synth_corpus, synth_device, SynthConfig};
use proptest::prelude::*;

/// One device, full pipeline: no Error diagnostics, the sampled agent
/// path is the identified device-cloud executable, and every registered
/// handler is found asynchronous.
fn assert_analyzes_cleanly(dev: &firmres_corpus::SynthDevice) {
    let analysis = analyze_packed(&dev.packed, None, &AnalysisConfig::default());
    let errors: Vec<_> = analysis.diagnostics_at_least(Severity::Error).collect();
    assert!(
        errors.is_empty(),
        "index {} seed-device produced Error diagnostics: {errors:?}",
        dev.spec.index
    );
    assert_eq!(
        analysis.executable.as_deref(),
        Some(dev.spec.agent_path.as_str()),
        "index {}: agent not identified",
        dev.spec.index
    );
    let found: std::collections::BTreeSet<&str> = analysis
        .handlers
        .iter()
        .map(|h| h.handler_name.as_str())
        .collect();
    for name in &dev.spec.handler_names {
        assert!(
            found.contains(name.as_str()),
            "index {}: handler {name} not identified (found {found:?})",
            dev.spec.index
        );
    }
}

proptest! {
    #[test]
    fn any_seed_analyzes_cleanly_and_is_deterministic(
        seed in any::<u64>(),
        index in 0u32..10_000,
    ) {
        let dev = synth_device(index, seed);
        let again = synth_device(index, seed);
        prop_assert_eq!(&dev.packed, &again.packed, "same-seed synthesis drifted");
        prop_assert_eq!(&dev.plans, &again.plans);
        assert_analyzes_cleanly(&dev);
    }
}

#[test]
fn small_fleet_analyzes_cleanly() {
    let fleet = synth_corpus(&SynthConfig { count: 12, seed: 7 });
    for dev in &fleet {
        assert_analyzes_cleanly(dev);
    }
}

#[test]
fn fleet_bytes_independent_of_generation_parallelism() {
    let sequential: Vec<Vec<u8>> = (0..16u32).map(|i| synth_device(i, 9).packed).collect();
    let parallel = run_pool(16, 4, |i| synth_device(i as u32, 9).packed);
    assert_eq!(sequential, parallel, "jobs must not change fleet bytes");
}
