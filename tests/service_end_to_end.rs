//! End-to-end contract of the resident analysis daemon: a served
//! analysis is byte-identical (through the FRAC codec) to a local
//! `analyze_firmware` of the same image, config and model; a warm
//! submit-by-hash answers from the cache without re-running the
//! pipeline; a full queue rejects with a structured reason instead of
//! hanging; and drain finishes accounting for in-flight work before
//! refusing the world.

use firmres::{analyze_firmware, AnalysisConfig};
use firmres_cache::codec::put_analysis;
use firmres_firmware::content_hash_packed_wide;
use firmres_service::wire::{read_response, send_request, Request, Response};
use firmres_service::{
    Client, ClientError, JobState, RejectReason, Server, ServerConfig, SubmitImage,
    PROTOCOL_VERSION,
};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("firmres-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The exact bytes the cache codec persists, with the (run-dependent,
/// wall-clock) stage timings zeroed: the same canonical-equality form
/// the unit-parallelism suite uses.
fn canonical(mut analysis: firmres::FirmwareAnalysis) -> Vec<u8> {
    analysis.timings = Default::default();
    let mut out = Vec::new();
    put_analysis(&mut out, &analysis);
    out
}

fn spawn(
    cfg: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<firmres_service::ServiceStatus>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

#[test]
fn served_analysis_is_byte_identical_and_hash_submits_reuse_the_cache() {
    let dev = firmres_corpus::generate_device(12, 3);
    let packed = dev.firmware.pack().to_vec();
    let mut config = AnalysisConfig::default();
    config.taint.max_depth = 32;

    let dir = temp_dir("byte-identity");
    let (addr, handle) = spawn(ServerConfig {
        workers: 2,
        unit_jobs: 2,
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });

    // The ground truth: a plain local run of the same inputs.
    let local = canonical(analyze_firmware(&dev.firmware, None, &config));

    let mut client = Client::connect(addr).expect("connect");

    // Cold submit runs the pipeline; through the cache codec the served
    // analysis is byte-identical to the local run (timings are the one
    // run-dependent field, zeroed on both sides as everywhere else).
    let cold = client
        .submit(SubmitImage::Bytes(packed.clone()), &config, true, 0)
        .expect("cold submit");
    assert!(!cold.from_cache);
    assert_eq!(
        canonical(cold.analysis),
        local,
        "served analysis differs from local"
    );
    assert!(
        !cold.events.is_empty(),
        "a streamed cold run reports progress events"
    );

    // Warm submit of the same bytes: answered from the cache, and the
    // shipped payload is the cold run's encoding exactly — raw bytes,
    // timings included, because it is the same stored entry.
    let warm = client
        .submit(SubmitImage::Bytes(packed.clone()), &config, false, 0)
        .expect("warm submit");
    assert!(warm.from_cache);
    assert_eq!(warm.payload, cold.payload);

    // Warm submit-by-hash: no image bytes shipped at all, still the
    // same payload, and the pipeline did not run again.
    let by_hash = client
        .submit(
            SubmitImage::Hash(content_hash_packed_wide(&packed)),
            &config,
            false,
            0,
        )
        .expect("hash submit");
    assert!(by_hash.from_cache);
    assert_eq!(by_hash.payload, cold.payload);
    assert_eq!(by_hash.analysis.executable, dev.cloud_executable);

    let status = client.status().expect("status");
    assert_eq!(status.cache_misses, 1, "pipeline ran exactly once");
    assert_eq!(status.cache_hits, 2);
    assert_eq!(status.jobs_served, 3);

    // A hash the server has never seen cannot be analyzed.
    match client.submit(SubmitImage::Hash(0xDEAD), &config, false, 0) {
        Err(ClientError::Rejected(RejectReason::UnknownImage)) => {}
        other => panic!("expected UnknownImage rejection, got {other:?}"),
    }

    let served = client.drain().expect("drain");
    assert_eq!(served, 3);
    let final_status = handle.join().expect("server thread");
    assert_eq!(final_status.jobs_served, 3);
    assert_eq!(final_status.jobs_rejected, 1);
    assert!(final_status.draining);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mutated_resubmit_reuses_unit_artifacts() {
    // Submit a firmware image, then a 1%-mutated update of it: the
    // second submit misses the image-level entry but the daemon diffs
    // it against its unit-granular store automatically, splicing every
    // unit the update did not dirty — and still serves bytes identical
    // to a from-scratch local run of the mutated image.
    let dev = firmres_corpus::generate_device(10, 7);
    let config = AnalysisConfig::default();
    let dir = temp_dir("unit-reuse");
    let (addr, handle) = spawn(ServerConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });

    let mut client = Client::connect(addr).expect("connect");
    client
        .submit(
            SubmitImage::Bytes(dev.firmware.pack().to_vec()),
            &config,
            false,
            0,
        )
        .expect("v1 submit");

    let update = firmres_corpus::mutate_firmware(&dev.firmware, 1.0, 42);
    let served = client
        .submit(
            SubmitImage::Bytes(update.image.pack().to_vec()),
            &config,
            false,
            0,
        )
        .expect("v2 submit");
    assert!(!served.from_cache, "a mutated image is not an image hit");

    let status = client.status().expect("status");
    assert_eq!(status.cache_misses, 2, "both versions ran the funnel");
    assert!(
        status.unit_hits > 0,
        "clean units spliced from the store: {status:?}"
    );
    assert!(status.unit_misses > 0, "the dirty closure re-ran");

    let local = canonical(analyze_firmware(&update.image, None, &config));
    assert_eq!(
        canonical(served.analysis),
        local,
        "spliced result differs from a from-scratch run"
    );

    client.drain().expect("drain");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_rejects_with_retry_hint_instead_of_hanging() {
    // queue_cap 0 and no workers: every by-bytes submit finds the queue
    // at capacity and must be answered, not parked.
    let (addr, handle) = spawn(ServerConfig {
        workers: 0,
        queue_cap: 0,
        retry_after_ms: 125,
        ..ServerConfig::default()
    });

    let dev = firmres_corpus::generate_device(6, 5);
    let packed = dev.firmware.pack().to_vec();
    let mut client = Client::connect(addr).expect("connect");
    match client.submit(
        SubmitImage::Bytes(packed),
        &AnalysisConfig::default(),
        false,
        0,
    ) {
        Err(ClientError::Rejected(RejectReason::QueueFull {
            depth,
            retry_after_ms,
        })) => {
            assert_eq!(depth, 0);
            assert_eq!(retry_after_ms, 125);
        }
        other => panic!("expected QueueFull rejection, got {other:?}"),
    }

    let status = client.status().expect("status");
    assert_eq!(status.jobs_rejected, 1);
    assert_eq!(status.jobs_served, 0);

    client.drain().expect("drain");
    handle.join().expect("server thread");
}

#[test]
fn many_idle_connections_share_a_fixed_io_pool() {
    // 80 concurrent connections against a 2-io-thread server: every one
    // is serviced (Hello + status round-trips) while the process thread
    // count stays flat — sockets are multiplexed onto the fixed shard
    // pool, not handed a thread each.
    let (addr, handle) = spawn(ServerConfig {
        workers: 1,
        io_threads: 2,
        ..ServerConfig::default()
    });

    let count_threads = || std::fs::read_dir("/proc/self/task").map(|d| d.count()).ok();

    // One connection first so the server's fixed threads all exist.
    let mut first = Client::connect(addr).expect("connect");
    first.status().expect("status");
    let before = count_threads();

    let mut idle: Vec<Client> = (0..79)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e:?}")))
        .collect();
    for (i, conn) in idle.iter_mut().enumerate() {
        let status = conn
            .status()
            .unwrap_or_else(|e| panic!("status {i}: {e:?}"));
        assert!(!status.draining);
    }
    // The harness runs sibling tests (and their servers) concurrently,
    // so allow generous noise — the claim is only that 79 extra sockets
    // did not cost anywhere near 79 extra threads.
    if let (Some(before), Some(after)) = (before, count_threads()) {
        assert!(
            after < before + 40,
            "79 extra connections must not grow the thread pool: {before} -> {after}"
        );
    }

    // The crowded server still does real work: a submit on one of the
    // multiplexed connections runs while the other 79 sit parked.
    let dev = firmres_corpus::generate_device(6, 9);
    let served = idle[0]
        .submit(
            SubmitImage::Bytes(dev.firmware.pack().to_vec()),
            &AnalysisConfig::default(),
            false,
            0,
        )
        .expect("submit across a crowded server");
    assert!(!served.from_cache);

    drop(idle);
    first.drain().expect("drain");
    let final_status = handle.join().expect("server thread");
    assert_eq!(final_status.jobs_served, 1);
}

#[test]
fn drain_waits_for_the_queue_and_refuses_new_submissions() {
    // No workers: an admitted job sits in the queue forever, so a drain
    // issued after it deterministically blocks until the job is
    // cancelled — which lets us observe the draining state from a
    // second connection with no timing dependence.
    let (addr, handle) = spawn(ServerConfig {
        workers: 0,
        queue_cap: 4,
        ..ServerConfig::default()
    });

    let dev = firmres_corpus::generate_device(6, 5);
    let packed = dev.firmware.pack().to_vec();
    let config = AnalysisConfig::default();

    // Connection A, on raw frames so we can send Drain while our job is
    // still in flight.
    let mut a = TcpStream::connect(addr).expect("connect a");
    send_request(
        &mut a,
        &Request::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .expect("hello");
    assert!(matches!(
        read_response(&mut a).expect("hello ok"),
        Response::HelloOk { .. }
    ));
    send_request(
        &mut a,
        &Request::Submit {
            image: SubmitImage::Bytes(packed.clone()),
            config: config.clone(),
            want_events: false,
            deadline_ms: 0,
        },
    )
    .expect("submit");
    let job_id = match read_response(&mut a).expect("accepted") {
        Response::Accepted { job_id } => job_id,
        other => panic!("expected Accepted, got {other:?}"),
    };
    send_request(&mut a, &Request::Drain).expect("drain request");

    // Connection B: wait until A's Drain has set the draining flag
    // (status reads it directly), then submit — the drain is still
    // blocked on the queued job, so the refusal is deterministic.
    let mut b = Client::connect(addr).expect("connect b");
    while !b.status().expect("status").draining {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    match b.submit(SubmitImage::Bytes(packed.clone()), &config, false, 0) {
        Err(ClientError::Rejected(RejectReason::Draining)) => {}
        other => panic!("expected Draining rejection, got {other:?}"),
    }

    // Unblock the drain by cancelling the queued job.
    assert_eq!(b.cancel(job_id).expect("cancel"), JobState::Queued);

    // A's stream: the cancelled job's terminal frame, then DrainOk —
    // proving drain waited for the queue to empty before completing.
    match read_response(&mut a).expect("terminal") {
        Response::Cancelled { job_id: id, reason } => {
            assert_eq!(id, job_id);
            assert_eq!(reason, "cancelled while queued");
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    match read_response(&mut a).expect("drain ok") {
        Response::DrainOk { jobs_served } => assert_eq!(jobs_served, 0),
        other => panic!("expected DrainOk, got {other:?}"),
    }

    let final_status = handle.join().expect("server thread");
    assert_eq!(final_status.jobs_cancelled, 1);
    assert!(final_status.jobs_rejected >= 1);
    assert!(final_status.draining);
    assert_eq!(final_status.queue_depth, 0);
}
