//! Cross-crate integration: the full FIRMRES pipeline against the
//! generated corpus ground truth — the claims behind Table II.

use firmres::{analyze_firmware, AnalysisConfig};
use firmres_bench::score_analysis;
use firmres_corpus::{generate_corpus, generate_device};

#[test]
fn corpus_totals_match_paper_table_two() {
    let corpus = generate_corpus(7);
    let config = AnalysisConfig::default();
    let mut identified = 0usize;
    let mut valid = 0usize;
    let mut fields = 0usize;
    let mut confirmed = 0usize;
    let mut accurate = 0usize;
    let mut executables_found = 0usize;
    for dev in &corpus {
        let analysis = analyze_firmware(&dev.firmware, None, &config);
        if analysis.executable.is_some() {
            executables_found += 1;
        }
        if dev.cloud_executable.is_none() {
            assert!(
                analysis.executable.is_none(),
                "device {} is script-based",
                dev.spec.id
            );
            continue;
        }
        let s = score_analysis(dev, &analysis);
        identified += s.identified_messages;
        valid += s.valid_messages;
        fields += s.fields_identified;
        confirmed += s.fields_confirmed;
        accurate += s.semantics_accurate;
    }
    // §V-B: 20 of 22 devices have binary device-cloud executables.
    assert_eq!(executables_found, 20);
    // Table II totals: exact message counts by construction, field counts
    // within the paper's ballpark.
    assert_eq!(identified, 281, "paper: 281 identified messages");
    assert_eq!(valid, 246, "paper: 246 valid messages");
    assert!(
        (1800..=2400).contains(&fields),
        "paper: 2019 fields, measured {fields}"
    );
    let confirm_rate = confirmed as f64 / fields as f64;
    assert!(
        (0.80..=1.00).contains(&confirm_rate),
        "paper: 88.41% field confirmation, measured {:.1}%",
        confirm_rate * 100.0
    );
    let accuracy = accurate as f64 / confirmed as f64;
    assert!(
        (0.80..=0.99).contains(&accuracy),
        "paper: 91.93% semantics accuracy, measured {:.1}%",
        accuracy * 100.0
    );
}

#[test]
fn per_device_counts_are_exact() {
    // Spot-check one device of each style family.
    for id in [5u8, 11, 14, 17] {
        let dev = generate_device(id, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        let s = score_analysis(&dev, &analysis);
        assert_eq!(
            s.identified_messages, dev.spec.target_messages,
            "device {id} identified"
        );
        assert_eq!(
            s.identified_messages - s.valid_messages,
            dev.spec.target_invalid,
            "device {id} invalid (stale endpoints)"
        );
    }
}

#[test]
fn sprintf_cluster_columns_follow_usage() {
    use firmres_corpus::SprintfUsage;
    for id in [1u8, 8, 11] {
        let dev = generate_device(id, 7);
        let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
        let s = score_analysis(&dev, &analysis);
        match dev.spec.sprintf {
            SprintfUsage::None => assert!(s.clusters.is_none(), "device {id} reports '-'"),
            SprintfUsage::SingleField => {
                assert_eq!(
                    s.clusters,
                    Some((0, 0, 0)),
                    "device {id}: sprintf but no splits"
                )
            }
            SprintfUsage::MultiField => {
                let (a, b, c) = s.clusters.expect("cluster counts");
                assert!(a >= 1, "device {id} has clusters");
                assert!(a <= b && b <= c, "device {id}: monotone in threshold");
            }
        }
    }
}

#[test]
fn naive_sink_ablation_collapses_field_recovery() {
    // DESIGN.md §5: without the single-information-source sink criterion
    // (buffer decomposition), the message argument itself is the sink and
    // per-field recovery collapses.
    let dev = generate_device(13, 7);
    let full = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
    let mut naive_cfg = AnalysisConfig::default();
    naive_cfg.taint.decompose_buffers = false;
    let naive = analyze_firmware(&dev.firmware, None, &naive_cfg);
    let full_fields: usize = full.identified().map(|m| m.slices.len()).sum();
    let naive_concrete: usize = naive
        .identified()
        .flat_map(|m| m.slices.iter())
        .filter(|s| s.source.is_concrete())
        .count();
    let full_concrete: usize = full
        .identified()
        .flat_map(|m| m.slices.iter())
        .filter(|s| s.source.is_concrete())
        .count();
    assert!(
        naive_concrete * 4 < full_concrete,
        "naive sinks recover a fraction of the fields: {naive_concrete} vs {full_concrete} (of {full_fields})"
    );
}

#[test]
fn overtaint_ablation_loses_fields() {
    let dev = generate_device(13, 7);
    let mut with = AnalysisConfig::default();
    with.taint.overtaint = true;
    let mut without = AnalysisConfig::default();
    without.taint.overtaint = false;
    let a = analyze_firmware(&dev.firmware, None, &with);
    let b = analyze_firmware(&dev.firmware, None, &without);
    let fields_with: usize = a.identified().map(|m| m.slices.len()).sum();
    let fields_without: usize = b.identified().map(|m| m.slices.len()).sum();
    assert!(
        fields_with >= fields_without,
        "over-tainting never recovers fewer fields ({fields_with} vs {fields_without})"
    );
}
