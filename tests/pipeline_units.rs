//! The message-unit execution model is a pure speedup: per-image output
//! is byte-identical whatever the unit job count, and the merge order is
//! the canonical unit order, never the workers' completion order.

use firmres::{analyze_firmware_jobs, run_pool, AnalysisConfig, FirmwareAnalysis};
use firmres_cache::codec;
use firmres_corpus::{generate_corpus, generate_device};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// The exact bytes the analysis cache would persist, with the (run- and
/// schedule-dependent) timings zeroed out: the strictest observable
/// equality available — messages, flaws, diagnostics, counters, handler
/// scores, everything the codec round-trips.
fn canonical_bytes(mut analysis: FirmwareAnalysis) -> Vec<u8> {
    analysis.timings = Default::default();
    let mut out = Vec::new();
    codec::put_analysis(&mut out, &analysis);
    out
}

#[test]
fn unit_jobs_are_byte_identical_across_the_corpus() {
    let corpus = generate_corpus(7);
    let config = AnalysisConfig::default();
    assert_eq!(corpus.len(), 22, "the full corpus");
    for dev in &corpus {
        let baseline = canonical_bytes(analyze_firmware_jobs(&dev.firmware, None, &config, 1));
        for jobs in [2, 8] {
            let parallel =
                canonical_bytes(analyze_firmware_jobs(&dev.firmware, None, &config, jobs));
            assert_eq!(
                baseline, parallel,
                "device {} differs between 1 and {jobs} unit jobs",
                dev.spec.id
            );
        }
    }
}

/// Sequential baseline per device id, computed once across proptest
/// cases (the parallel side re-runs every case; the baseline never
/// changes).
fn baseline_bytes(id: u8) -> Vec<u8> {
    static BASELINES: OnceLock<Mutex<HashMap<u8, Vec<u8>>>> = OnceLock::new();
    let map = BASELINES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = map.lock().unwrap();
    map.entry(id)
        .or_insert_with(|| {
            let dev = generate_device(id, 7);
            canonical_bytes(analyze_firmware_jobs(
                &dev.firmware,
                None,
                &AnalysisConfig::default(),
                1,
            ))
        })
        .clone()
}

proptest! {
    /// The pool's slot placement — the mechanism the unit merge builds
    /// on — puts `job(i)` in slot `i` under any completion order. The
    /// random per-item delays scramble completion aggressively; the
    /// output order must not notice.
    #[test]
    fn run_pool_order_is_independent_of_completion_order(
        delays in proptest::collection::vec(0u64..3, 1..12),
        threads in 1usize..9,
    ) {
        let out = run_pool(delays.len(), threads, |i| {
            std::thread::sleep(Duration::from_millis(delays[i]));
            i * 10
        });
        let expected: Vec<usize> = (0..delays.len()).map(|i| i * 10).collect();
        prop_assert_eq!(out, expected);
    }

    /// Full-pipeline restatement: any device, any job count, one output.
    #[test]
    fn unit_parallel_analysis_matches_sequential(
        id in 1u8..23,
        jobs in 2usize..9,
    ) {
        let dev = generate_device(id, 7);
        let parallel = canonical_bytes(analyze_firmware_jobs(
            &dev.firmware,
            None,
            &AnalysisConfig::default(),
            jobs,
        ));
        prop_assert_eq!(parallel, baseline_bytes(id), "device {} at {} jobs", id, jobs);
    }
}
