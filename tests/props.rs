//! Cross-crate property-based tests (proptest) on the core data
//! structures and invariants.

use firmres_cloud::json::Json;
use firmres_firmware::{DeviceInfo, DeviceType, FileEntry, FirmwareImage, Nvram, ScriptLang};
use firmres_isa::{decode, encode, Inst, Reg};
use firmres_mft::{cluster, lcs_len, similarity, split_format};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|n| Reg::new(n).expect("in range"))
}

fn arb_imm14() -> impl Strategy<Value = i16> {
    -(1i16 << 13)..(1i16 << 13)
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, a, b)| Inst::Add(d, a, b)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, a, b)| Inst::Mul(d, a, b)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, a, b)| Inst::Xor(d, a, b)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, a, b)| Inst::Seq(d, a, b)),
        (arb_reg(), arb_reg(), arb_imm14()).prop_map(|(d, a, i)| Inst::Addi(d, a, i)),
        (arb_reg(), arb_reg(), 0i16..(1 << 14)).prop_map(|(d, a, i)| Inst::Ori(d, a, i)),
        (arb_reg(), 0u32..(1 << 18)).prop_map(|(d, i)| Inst::Lui(d, i)),
        (arb_reg(), arb_reg(), arb_imm14()).prop_map(|(d, b, i)| Inst::Lw(d, b, i)),
        (arb_reg(), arb_reg(), arb_imm14()).prop_map(|(s, b, i)| Inst::Sw(s, b, i)),
        (arb_reg(), arb_reg(), arb_imm14()).prop_map(|(a, b, o)| Inst::Beq(a, b, o)),
        (arb_reg(), arb_reg(), arb_imm14()).prop_map(|(a, b, o)| Inst::Bne(a, b, o)),
        (-(1i32 << 25)..(1 << 25)).prop_map(Inst::Jal),
        (arb_reg(), arb_reg()).prop_map(|(d, s)| Inst::Jalr(d, s)),
        any::<u16>().prop_map(Inst::Callx),
        Just(Inst::Halt),
    ]
}

proptest! {
    #[test]
    fn mr32_encode_decode_round_trip(inst in arb_inst()) {
        let word = encode(inst);
        prop_assert_eq!(decode(word), Ok(inst));
    }

    #[test]
    fn lcs_is_bounded_and_symmetric(a in "[a-z=&%{}\":]{0,24}", b in "[a-z=&%{}\":]{0,24}") {
        let l = lcs_len(&a, &b);
        prop_assert!(l <= a.len().min(b.len()));
        prop_assert_eq!(l, lcs_len(&b, &a));
        let s = similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, similarity(&b, &a));
    }

    #[test]
    fn clustering_partitions_input(items in proptest::collection::vec("[a-z=&%]{1,12}", 0..24),
                                    thd in 0.0f64..1.0) {
        let clusters = cluster(&items, thd);
        let total: usize = clusters.iter().map(Vec::len).sum();
        prop_assert_eq!(total, items.len(), "every item lands in exactly one cluster");
        prop_assert!(clusters.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn split_format_preserves_conversions(fmt in "[a-zA-Z0-9=&{}\",:]{0,24}") {
        // Conversion count in == pieces with spec out (no %-escapes in
        // this alphabet, so every piece maps to original text).
        let pieces = split_format(&fmt);
        prop_assert!(pieces.len() <= fmt.len() + 1);
    }

    #[test]
    fn json_print_parse_round_trip(v in arb_json(3)) {
        let printed = v.to_string();
        let back = Json::parse(&printed);
        prop_assert_eq!(back, Ok(v));
    }

    #[test]
    fn nvram_text_round_trip(pairs in proptest::collection::btree_map("[a-z_]{1,10}", "[a-zA-Z0-9:._-]{0,16}", 0..12)) {
        let mut nv = Nvram::new();
        for (k, v) in &pairs {
            nv.set(k.clone(), v.clone());
        }
        let back = Nvram::parse(&nv.to_text());
        prop_assert_eq!(back, nv);
    }

    #[test]
    fn firmware_pack_unpack_round_trip(
        files in proptest::collection::vec(
            ("[a-z/]{1,20}", prop_oneof![
                proptest::collection::vec(any::<u8>(), 0..64).prop_map(FileEntry::Data),
                "[ -~]{0,64}".prop_map(FileEntry::Config),
                "[ -~]{0,64}".prop_map(|t| FileEntry::Script { lang: ScriptLang::Shell, text: t }),
            ]),
            0..8,
        )
    ) {
        let mut fw = FirmwareImage::new(DeviceInfo {
            vendor: "V".into(),
            model: "M".into(),
            device_type: DeviceType::SmartPlug,
            firmware_version: "1.0".into(),
        });
        for (path, entry) in files {
            fw.add_file(path, entry);
        }
        let packed = fw.pack();
        prop_assert_eq!(FirmwareImage::unpack(&packed), Ok(fw));
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_unpackers(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Typed errors, never panics, on fully arbitrary input.
        let _ = firmres_isa::Executable::from_bytes(&bytes);
        let _ = FirmwareImage::unpack(&bytes);
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = Json::parse(text);
        }
    }

    #[test]
    fn arbitrary_words_never_panic_decode(words in proptest::collection::vec(any::<u32>(), 0..32)) {
        for w in &words {
            let _ = decode(*w);
        }
    }

    #[test]
    fn lift_handles_arbitrary_code_words(words in proptest::collection::vec(any::<u32>(), 1..32)) {
        // A syntactically valid MRE wrapping arbitrary code must lift or
        // fail with a typed error — never panic.
        let exe = firmres_isa::Executable {
            entry: firmres_isa::CODE_BASE,
            code: words,
            data: vec![],
            imports: vec!["x".into()],
            funcs: vec![firmres_isa::FuncSymbol {
                name: "main".into(),
                addr: firmres_isa::CODE_BASE,
                params: vec![],
            }],
            locals: vec![],
            data_syms: vec![],
        };
        let _ = firmres_isa::lift(&exe, "fuzz");
    }

    #[test]
    fn classifier_probabilities_are_a_distribution(text in "[ -~]{0,80}") {
        use firmres_semantics::{Classifier, Primitive, TrainConfig};
        // A tiny fixed model is enough: the property is about inference.
        let data = vec![
            ("mac address".to_string(), Primitive::DevIdentifier),
            ("password login".to_string(), Primitive::UserCred),
        ];
        let model = Classifier::train(&data, &TrainConfig { epochs: 2, ..Default::default() });
        let probs = model.probabilities(&text);
        let sum: f32 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3);
        prop_assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }
}

fn arb_json(depth: u32) -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i32>().prop_map(|n| Json::Num(n as i64)),
        "[a-zA-Z0-9 _\\-\"\\\\/\n\t]{0,16}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(depth, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Json::Obj),
        ]
    })
}
