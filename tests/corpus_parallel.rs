//! The parallel corpus driver is a pure speedup: per-device results are
//! identical whatever the thread count, in input order.

use firmres::{analyze_corpus, AnalysisConfig, FirmwareAnalysis};
use firmres_corpus::generate_corpus;

/// Everything observable about one analysis except wall-clock timings,
/// rendered to a comparable string.
fn fingerprint(analysis: &FirmwareAnalysis) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "executable: {:?}", analysis.executable).unwrap();
    writeln!(out, "handlers: {}", analysis.handlers.len()).unwrap();
    writeln!(out, "counters: {:?}", analysis.counters).unwrap();
    for d in &analysis.diagnostics {
        writeln!(out, "diag: {d}").unwrap();
    }
    for m in &analysis.messages {
        writeln!(
            out,
            "msg {}@{:#x} lan={} echo={} slices={} sems={:?} fields={:?} flaws={:?}",
            m.function,
            m.callsite,
            m.lan_discarded,
            m.is_response_echo,
            m.slices.len(),
            m.slice_semantics,
            m.message,
            m.flaws,
        )
        .unwrap();
    }
    out
}

#[test]
fn parallel_sweep_is_deterministic_across_thread_counts() {
    let corpus = generate_corpus(7);
    let images: Vec<_> = corpus.iter().map(|d| &d.firmware).collect();
    let config = AnalysisConfig::default();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2);

    let sequential = analyze_corpus(&images, None, &config, 1);
    let parallel = analyze_corpus(&images, None, &config, threads);

    assert_eq!(sequential.len(), corpus.len());
    assert_eq!(parallel.len(), corpus.len());
    for ((dev, seq), par) in corpus.iter().zip(&sequential).zip(&parallel) {
        assert_eq!(
            fingerprint(seq),
            fingerprint(par),
            "device {} differs between 1 and {threads} threads",
            dev.spec.id
        );
    }
}
