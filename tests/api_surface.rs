//! API-surface sweep: exercises public helpers that the scenario tests
//! touch only incidentally, pinning their contracts.

use firmres_mft::{MessageFormat, Transport};
use firmres_semantics::{featurize, tokenize, weak_label_with_report, Primitive};

#[test]
fn transport_classification_table() {
    for (name, t) in [
        ("SSL_write", Transport::Ssl),
        ("CyaSSL_write", Transport::Ssl),
        ("send", Transport::Tcp),
        ("sendto", Transport::Tcp),
        ("write", Transport::Tcp),
        ("mosquitto_publish", Transport::Mqtt),
        ("mqtt_publish", Transport::Mqtt),
        ("http_post", Transport::Http),
        ("http_get", Transport::Http),
        ("curl_easy_perform", Transport::Http),
        ("made_up", Transport::Unknown),
    ] {
        assert_eq!(Transport::from_delivery(name), t, "{name}");
    }
    assert_eq!(Transport::Mqtt.to_string(), "mqtt");
    assert_eq!(MessageFormat::Json.to_string(), "json");
    assert_eq!(MessageFormat::Raw.to_string(), "raw");
}

#[test]
fn program_statistics() {
    use firmres_ir::{FunctionBuilder, Program, Varnode};
    let mut p = Program::new("stats");
    let mut fb = FunctionBuilder::new("f", 0x100);
    fb.copy(Varnode::register(1, 4), Varnode::constant(1, 4));
    fb.ret();
    p.add_function(fb.finish());
    let mut fb = FunctionBuilder::new("g", 0x200);
    fb.ret();
    p.add_function(fb.finish());
    assert_eq!(p.function_count(), 2);
    assert_eq!(p.op_count(), 3);
    assert_eq!(p.name(), "stats");
}

#[test]
fn tokenizer_and_featurizer_agree_on_case() {
    let a = featurize(&tokenize("DeviceToken"));
    let b = featurize(&tokenize("devicetoken"));
    // The full lowercased identifier hashes identically; the camelCase
    // variant additionally contributes its word parts.
    let a_keys: std::collections::BTreeSet<usize> = a.iter().map(|(i, _)| *i).collect();
    let b_keys: std::collections::BTreeSet<usize> = b.iter().map(|(i, _)| *i).collect();
    assert!(b_keys.is_subset(&a_keys));
    assert!(a_keys.len() > b_keys.len());
}

#[test]
fn weak_label_reports_are_ordered_by_specificity() {
    // A slice mentioning both a signature keyword and an identifier
    // keyword is labeled Signature (the more specific dictionary first).
    let hit = weak_label_with_report("hmac_sign over mac address").unwrap();
    assert_eq!(hit.primitive, Primitive::Signature);
    // Identifier beats Address when both are present? No — Address is
    // checked after identifiers by design.
    let hit = weak_label_with_report("mac host").unwrap();
    assert_eq!(hit.primitive, Primitive::DevIdentifier);
}

#[test]
fn stage_timings_arithmetic() {
    use firmres::StageTimings;
    use std::time::Duration;
    let t = StageTimings {
        exeid: Duration::from_millis(10),
        field_identification: Duration::from_millis(20),
        semantics: Duration::from_millis(30),
        concatenation: Duration::from_millis(25),
        form_check: Duration::from_millis(15),
    };
    assert_eq!(t.total(), Duration::from_millis(100));
    let shares = t.shares();
    assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    assert!((shares[2] - 0.30).abs() < 1e-12);
}

#[test]
fn probe_outcome_and_status_interplay() {
    use firmres_cloud::{classify_response, ResponseStatus};
    // Round-trip every phrase and pin the validity partition sizes.
    let valid: Vec<ResponseStatus> = [
        "Request OK",
        "No Permission",
        "Access Denied",
        "Bad Request",
        "Request Not Supported",
        "Path Not Exists",
    ]
    .iter()
    .map(|p| classify_response(p).unwrap())
    .filter(|s| s.validates_message())
    .collect();
    assert_eq!(
        valid.len(),
        3,
        "exactly the paper's three validating phrases"
    );
}

#[test]
fn mft_annotations_survive_transformations() {
    use firmres_dataflow::TaintEngine;
    use firmres_isa::{lift, Assembler};
    use firmres_mft::{Mft, MftNodeKind};
    let exe = Assembler::new()
        .assemble(
            ".func main\n la a1, m\n li a0, 1\n callx SSL_write\n ret\n.endfunc\n.data\nm: .asciz \"x\"\n",
        )
        .unwrap();
    let p = lift(&exe, "t").unwrap();
    let f = p.function_by_name("main").unwrap();
    let call = f.callsites().next().unwrap().addr;
    let tree = TaintEngine::new(&p).trace(f.entry(), call, 1);
    let mut mft = Mft::from_taint(&tree);
    let leaf = mft.leaves()[0];
    mft.annotate(leaf, "Dev-Identifier");
    let simplified = mft.simplified();
    assert!(
        simplified
            .nodes()
            .iter()
            .any(|n| matches!(&n.kind, MftNodeKind::Annotation(a) if a == "Dev-Identifier")),
        "annotations survive simplification"
    );
    let inverted = simplified.inverted();
    assert_eq!(inverted.leaves().len(), simplified.leaves().len());
}

#[test]
fn device_identity_value_map_is_total_over_nvram_keys() {
    use firmres_corpus::DeviceIdentity;
    let id = DeviceIdentity::generate(3, 99);
    for key in [
        "mac",
        "serial",
        "uid",
        "device_id",
        "device_secret",
        "cloud_user",
        "cloud_pass",
        "cloud_host",
    ] {
        assert!(id.value_of(key).is_some(), "{key}");
    }
}
