//! Failure injection: corrupted inputs at every layer degrade into typed
//! errors or clean rejections — never panics, never silent garbage.

use firmres::{
    analyze_firmware, analyze_packed, try_analyze_firmware, try_analyze_packed, AnalysisConfig,
    Error, Severity, StageKind,
};
use firmres_cloud::{HttpRequest, ResponseStatus};
use firmres_corpus::generate_device;
use firmres_firmware::{FileEntry, FirmwareImage};
use firmres_isa::Executable;

/// Bit-flip every byte of a packed firmware image, one at a time (sampled
/// for speed), and confirm unpacking reports corruption.
#[test]
fn corrupted_firmware_images_are_rejected() {
    let dev = generate_device(15, 7);
    let packed = dev.firmware.pack();
    let mut rejected = 0;
    for i in (0..packed.len()).step_by(97) {
        let mut bad = packed.to_vec();
        bad[i] ^= 0xA5;
        if FirmwareImage::unpack(&bad).is_err() {
            rejected += 1;
        }
    }
    // Checksums catch essentially every flip.
    assert!(
        rejected >= packed.len() / 97,
        "all sampled corruptions rejected"
    );
}

#[test]
fn truncated_firmware_images_are_rejected() {
    let dev = generate_device(15, 7);
    let packed = dev.firmware.pack();
    for cut in [0, 1, 7, packed.len() / 2, packed.len() - 1] {
        assert!(
            FirmwareImage::unpack(&packed[..cut]).is_err(),
            "truncation at {cut} rejected"
        );
    }
}

#[test]
fn corrupted_executable_inside_valid_image_is_skipped() {
    let dev = generate_device(15, 7);
    let mut fw = dev.firmware.clone();
    // Replace the cloud agent with garbage that still parses as a file
    // entry but not as an MRE executable.
    fw.add_file(
        "/usr/bin/cloud_agent",
        FileEntry::Executable(vec![0xFF; 64]),
    );
    let analysis = analyze_firmware(&fw, None, &AnalysisConfig::default());
    assert!(
        analysis.executable.is_none(),
        "pipeline degrades to 'no device-cloud executable', no panic"
    );
    // The degradation is no longer silent: the skipped executable shows
    // up as a warning-severity stage-1 diagnostic naming the path.
    let exeid_warnings: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.stage == StageKind::ExeId && d.severity == Severity::Warning)
        .collect();
    assert!(
        exeid_warnings
            .iter()
            .any(|d| d.subject.as_deref() == Some("/usr/bin/cloud_agent")),
        "skipped executable diagnosed: {:?}",
        analysis.diagnostics
    );
    assert!(
        analysis.counters.parse_failures >= 1,
        "parse failure counted"
    );
}

#[test]
fn image_whose_every_executable_is_corrupt_is_a_typed_error() {
    let dev = generate_device(15, 7);
    let mut fw = dev.firmware.clone();
    let paths: Vec<String> = fw.executables().map(|(p, _)| p.to_string()).collect();
    assert!(!paths.is_empty());
    for p in &paths {
        fw.add_file(p, FileEntry::Executable(vec![0xFF; 64]));
    }
    match try_analyze_firmware(&fw, None, &AnalysisConfig::default()) {
        Err(Error::NoUsableExecutable { tried, diagnostics }) => {
            assert_eq!(tried, paths.len());
            assert!(!diagnostics.is_empty(), "each failure carries a diagnostic");
        }
        other => panic!("expected NoUsableExecutable, got {other:?}"),
    }
}

#[test]
fn truncated_packed_image_degrades_into_input_diagnostic() {
    let dev = generate_device(15, 7);
    let packed = dev.firmware.pack();
    for cut in [0, 7, packed.len() / 2] {
        let analysis = analyze_packed(&packed[..cut], None, &AnalysisConfig::default());
        assert!(analysis.executable.is_none());
        assert!(analysis.messages.is_empty());
        let input_errors: Vec<_> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.stage == StageKind::Input && d.severity == Severity::Error)
            .collect();
        assert_eq!(input_errors.len(), 1, "truncation at {cut} diagnosed");
        // The fallible entry point returns the typed unpack error.
        assert!(matches!(
            try_analyze_packed(&packed[..cut], None, &AnalysisConfig::default()),
            Err(Error::Firmware(_))
        ));
    }
}

#[test]
fn executable_with_reserved_opcodes_fails_to_lift_cleanly() {
    let dev = generate_device(15, 7);
    let path = dev.cloud_executable.as_deref().unwrap();
    let mut exe = dev.firmware.load_executable(path).unwrap();
    // Inject a reserved opcode (>= 32) into the middle of the image.
    let mid = exe.code.len() / 2;
    exe.code[mid] = 0xFFFF_FFFF;
    match firmres_isa::lift(&exe, "bad") {
        Err(firmres_isa::LiftError::Decode { .. }) => {}
        Err(other) => panic!("expected a decode error, got {other:?}"),
        Ok(_) => {
            // The word may fall between functions or in dead space of a
            // function whose extent ends earlier — also acceptable, as
            // long as nothing panicked.
        }
    }
}

#[test]
fn mre_truncation_and_checksum_errors() {
    let dev = generate_device(15, 7);
    let path = dev.cloud_executable.as_deref().unwrap();
    let FileEntry::Executable(bytes) = dev.firmware.file(path).unwrap() else {
        panic!("agent is an executable");
    };
    for cut in [0usize, 3, 16, bytes.len() / 2] {
        assert!(Executable::from_bytes(&bytes[..cut]).is_err());
    }
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 1;
    assert!(
        Executable::from_bytes(&flipped).is_err(),
        "checksum catches the flip"
    );
}

#[test]
fn cloud_handles_malformed_probes_gracefully() {
    let dev = generate_device(17, 7);
    // Garbage JSON.
    let r = dev
        .cloud
        .handle(&HttpRequest::new("/camera-cgi", "{\"uid\":"));
    assert_eq!(r.status, ResponseStatus::BadRequest);
    // Unknown path.
    let r = dev.cloud.handle(&HttpRequest::new("/../../etc/passwd", ""));
    assert_eq!(r.status, ResponseStatus::PathNotExists);
    // Huge body of junk.
    let junk = "x".repeat(1 << 16);
    let r = dev.cloud.handle(&HttpRequest::new("/camera-cgi", junk));
    assert!(matches!(
        r.status,
        ResponseStatus::BadRequest | ResponseStatus::AccessDenied
    ));
    // Empty everything.
    let r = dev.cloud.handle(&HttpRequest::new("", ""));
    assert_eq!(r.status, ResponseStatus::PathNotExists);
}

#[test]
fn emulator_faults_do_not_poison_subsequent_runs() {
    use firmres_isa::{Assembler, EmuError, Emulator, Mem};
    let exe = Assembler::new()
        .assemble(
            ".func crash\n li t0, 0x10\n lw rv, 0(t0)\n ret\n.endfunc\n\
             .func fine\n li rv, 7\n ret\n.endfunc\n.func main\n halt\n.endfunc\n",
        )
        .unwrap();
    let mut emu = Emulator::new(&exe, |_: &str, _: [u32; 6], _: &mut Mem| 0);
    assert!(matches!(
        emu.run_function("crash", &[]),
        Err(EmuError::MemFault { .. })
    ));
    assert_eq!(
        emu.run_function("fine", &[]).unwrap(),
        7,
        "emulator recovers"
    );
}

#[test]
fn corrupted_cache_entry_falls_back_to_reanalysis() {
    use firmres::{CollectingObserver, Counter};
    use firmres_cache::{analyze_corpus_incremental, AnalysisCache, CacheKey};

    let dev = generate_device(10, 7);
    let config = AnalysisConfig::default();
    let dir = std::env::temp_dir().join(format!("firmres-failinj-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = AnalysisCache::new(&dir);
    let image = &dev.firmware;

    // Populate, then damage the entry on disk.
    let cold = analyze_corpus_incremental(&[image], None, &config, 1, &cache, &mut obs());
    let key = CacheKey::compute(image, None, &config);
    let path = cache.entry_path(&key);
    let good = std::fs::read(&path).unwrap();
    std::fs::write(&path, &good[..good.len() / 3]).unwrap();

    // The damaged entry is not fatal: the image is re-analyzed and the
    // result matches the cold run, carrying one extra cache diagnostic.
    let mut observer = obs();
    let fallback = analyze_corpus_incremental(&[image], None, &config, 1, &cache, &mut observer);
    assert_eq!(fallback.stats.misses, 1);
    assert_eq!(fallback.stats.corrupt, 1);
    assert_eq!(observer.counters.get(Counter::CacheMisses), 1);
    let a = &fallback.analyses[0];
    assert_eq!(a.executable, cold.analyses[0].executable);
    assert_eq!(a.messages.len(), cold.analyses[0].messages.len());
    let cache_diags: Vec<_> = a
        .diagnostics
        .iter()
        .filter(|d| d.stage == StageKind::Cache && d.severity == Severity::Warning)
        .collect();
    assert_eq!(
        cache_diags.len(),
        1,
        "the damaged entry is diagnosed: {:?}",
        a.diagnostics
    );
    assert!(cache_diags[0].detail.contains("re-analyzing"));

    // The fallback overwrote the damaged entry; the next run hits again
    // and the stored result carries no cache diagnostics.
    let warm = analyze_corpus_incremental(&[image], None, &config, 1, &cache, &mut obs());
    assert_eq!(warm.stats.hits, 1);
    assert!(warm.analyses[0]
        .diagnostics
        .iter()
        .all(|d| d.stage != StageKind::Cache));
    let _ = std::fs::remove_dir_all(&dir);

    fn obs() -> CollectingObserver {
        CollectingObserver::default()
    }
}

#[test]
fn analysis_of_empty_firmware_is_empty() {
    let fw = FirmwareImage::new(firmres_firmware::DeviceInfo {
        vendor: "none".into(),
        model: "none".into(),
        device_type: firmres_firmware::DeviceType::Nas,
        firmware_version: "0".into(),
    });
    let analysis = analyze_firmware(&fw, None, &AnalysisConfig::default());
    assert!(analysis.executable.is_none());
    assert!(analysis.messages.is_empty());
}
