//! End-to-end contract of known-library identification: replaying
//! recorded taint summaries (`LibId::On` + a roster `.flix` index) is
//! byte-identical to full traversal over the library-aware synthetic
//! fleet — at any job count — while actually skipping traversals, and
//! the index fingerprint invalidates both whole-image cache entries
//! and unit banks.

use firmres::{analyze_firmware, analyze_firmware_jobs, AnalysisConfig, NullObserver};
use firmres_cache::{analyze_corpus_incremental, codec, AnalysisCache};
use firmres_corpus::synth_device_with_libraries;
use firmres_dataflow::{LibId, LibIndex};
use firmres_firmware::FirmwareImage;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("firmres-libid-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Build the roster index exactly as `libid build` does.
fn roster_index() -> Arc<LibIndex> {
    let dir = temp_dir("fixtures");
    std::fs::create_dir_all(&dir).unwrap();
    for k in 0..firmres_corpus::ROSTER.len() {
        std::fs::write(
            dir.join(firmres_corpus::library_fixture_file(k)),
            firmres_corpus::library_fixture_source(k),
        )
        .unwrap();
    }
    let (index, _) = firmres_libid::build_index_from_dir(&dir).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(index)
}

fn on_config(index: &Arc<LibIndex>) -> AnalysisConfig {
    let mut config = AnalysisConfig::default();
    config.taint.libid = LibId::On;
    config.taint.lib_index = Some(Arc::clone(index));
    config
}

/// Canonical comparison bytes: the cache codec's encoding with timings
/// and the three libid usage meters zeroed (the meters report the
/// replay mechanism itself, so they differ between modes by design —
/// every other byte must match).
fn canonical(mut analysis: firmres::FirmwareAnalysis) -> Vec<u8> {
    analysis.timings = Default::default();
    analysis.counters.lib_fns_matched = 0;
    analysis.counters.lib_traversals_skipped = 0;
    analysis.counters.lib_summary_applies = 0;
    let mut out = Vec::new();
    codec::put_analysis(&mut out, &analysis);
    out
}

/// A device from the library-aware fleet that links at least one
/// roster library (fixed probe keeps the test deterministic).
fn linked_device() -> FirmwareImage {
    for index in 0..16 {
        let dev = synth_device_with_libraries(index, 7);
        if !dev.spec.linked_libraries.is_empty() {
            return FirmwareImage::unpack(&dev.packed).unwrap();
        }
    }
    panic!("no device in the first 16 links a library");
}

#[test]
fn replay_is_byte_identical_and_skips_traversals() {
    let index = roster_index();
    let fw = linked_device();
    let off = analyze_firmware(&fw, None, &AnalysisConfig::default());
    let on = analyze_firmware(&fw, None, &on_config(&index));

    assert!(on.counters.lib_fns_matched > 0, "roster functions match");
    assert!(on.counters.lib_traversals_skipped > 0, "traversals skipped");
    assert!(on.counters.lib_summary_applies > 0, "summaries applied");
    assert_eq!(off.counters.lib_fns_matched, 0, "Off meters stay zero");
    assert_eq!(canonical(off), canonical(on), "replay is byte-identical");
}

#[test]
fn unlinked_devices_are_untouched_by_the_index() {
    let index = roster_index();
    for probe in 0..16 {
        let dev = synth_device_with_libraries(probe, 7);
        if !dev.spec.linked_libraries.is_empty() {
            continue;
        }
        let fw = FirmwareImage::unpack(&dev.packed).unwrap();
        let on = analyze_firmware(&fw, None, &on_config(&index));
        // Decoy slots hash differently from real roster functions, so
        // nothing matches and nothing is skipped.
        assert_eq!(on.counters.lib_fns_matched, 0, "device {probe}");
        assert_eq!(on.counters.lib_traversals_skipped, 0, "device {probe}");
        return;
    }
    panic!("no unlinked device in the first 16");
}

proptest! {
    /// On == Off report bytes for any seeded device at one worker and
    /// at eight — replay is deterministic under unit parallelism.
    #[test]
    fn replay_matches_traversal_at_any_job_count(seed in 0u64..1000, index in 0u32..40) {
        let idx = roster_index();
        let fw = FirmwareImage::unpack(&synth_device_with_libraries(index, seed).packed).unwrap();
        let off = canonical(analyze_firmware_jobs(&fw, None, &AnalysisConfig::default(), 1));
        for jobs in [1usize, 8] {
            let on = canonical(analyze_firmware_jobs(&fw, None, &on_config(&idx), jobs));
            prop_assert_eq!(&off, &on, "jobs {}", jobs);
        }
    }
}

#[test]
fn index_fingerprint_invalidates_image_entries_and_unit_banks() {
    let index = roster_index();
    let fw = linked_device();
    let images = [&fw];
    let off = AnalysisConfig::default();
    let on = on_config(&index);
    // Off with a loaded index keeps the toggle authoritative: identical
    // keys to plain Off, so preloading an index is free until enabled.
    let mut off_loaded = AnalysisConfig::default();
    off_loaded.taint.lib_index = Some(Arc::clone(&index));

    let cache = AnalysisCache::new(temp_dir("invalidate"));
    let run = |config: &AnalysisConfig| {
        let out = analyze_corpus_incremental(&images, None, config, 1, &cache, &mut NullObserver);
        (out.stats.hits, out.stats.misses, out.stats.unit_hits)
    };

    assert_eq!(run(&off), (0, 1, 0), "cold Off populates");
    assert_eq!(run(&off).0, 1, "warm Off hits");
    assert_eq!(run(&off_loaded).0, 1, "loaded-but-Off shares the key");

    // Enabling the index changes the whole-image key AND the unit-bank
    // family key: full miss, no units spliced from the Off bank.
    let (hits, misses, unit_hits) = run(&on);
    assert_eq!((hits, misses), (0, 1), "On misses the Off entry");
    assert_eq!(unit_hits, 0, "On does not splice Off unit banks");

    assert_eq!(run(&on).0, 1, "warm On hits its own entry");

    // Swapping to a different index (subset roster) misses again.
    let dir = temp_dir("subset");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join(firmres_corpus::library_fixture_file(0)),
        firmres_corpus::library_fixture_source(0),
    )
    .unwrap();
    let (subset, _) = firmres_libid::build_index_from_dir(&dir).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let mut swapped = AnalysisConfig::default();
    swapped.taint.libid = LibId::On;
    swapped.taint.lib_index = Some(Arc::new(subset));
    assert_eq!(run(&swapped).1, 1, "a swapped index forces a miss");

    let _ = std::fs::remove_dir_all(cache.dir());
}
