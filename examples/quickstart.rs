//! Quickstart: reconstruct the device-cloud messages of one firmware
//! image in a dozen lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use firmres_suite::prelude::*;

fn main() {
    // A synthetic firmware image — device 11 is the Teltonika RUT241 from
    // the paper's running example (CVE-2023-2586).
    let device = generate_device(11, 7);
    println!(
        "analyzing {} {} ({:?})…\n",
        device.spec.vendor, device.spec.model, device.cloud_executable
    );

    // The whole FIRMRES pipeline in one call: executable identification,
    // backward taint, semantics recovery, message reconstruction, form
    // check.
    let analysis = analyze_firmware(&device.firmware, None, &AnalysisConfig::default());

    println!(
        "device-cloud executable: {}",
        analysis.executable.as_deref().unwrap_or("not found")
    );
    println!("reconstructed messages:");
    for record in analysis.identified() {
        println!("  {} → {}", record.function, record.message);
        for flaw in &record.flaws {
            println!("    ⚠ {flaw}");
        }
    }
}
