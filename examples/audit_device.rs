//! Full access-control audit of one device: reconstruct every message,
//! run the form check, forge each message against the vendor cloud, and
//! report confirmed vulnerabilities — the paper's workflow end to end.
//!
//! ```text
//! cargo run --release --example audit_device -- 20
//! ```

use firmres::{extract_endpoint, fill_message, probe_cloud};
use firmres_bench::discover_vulnerabilities;
use firmres_suite::prelude::*;

fn main() {
    let id: u8 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let device = generate_device(id, 7);
    println!(
        "== auditing device {id}: {} {} ({}) ==\n",
        device.spec.vendor,
        device.spec.model,
        device.spec.device_type.name()
    );

    let analysis = analyze_firmware(&device.firmware, None, &AnalysisConfig::default());
    let Some(exe) = &analysis.executable else {
        println!(
            "no device-cloud executable found — device-cloud logic is handled by scripts\n\
             (devices 21 and 22 reproduce the paper's out-of-scope cases)"
        );
        return;
    };
    println!("device-cloud executable: {exe}");
    println!("messages reconstructed:  {}", analysis.identified().count());
    println!("form-check alarms:       {}\n", analysis.flagged().count());

    println!("probing the vendor cloud with forged messages:");
    for record in analysis.identified() {
        let filled = fill_message(&record.message, &device.firmware);
        let outcome = probe_cloud(&device.cloud, &filled);
        let endpoint = extract_endpoint(&record.message).unwrap_or_else(|| "?".into());
        println!(
            "  {:<28} {:<18} {}",
            endpoint,
            outcome.status.to_string(),
            if outcome.leaked.is_empty() {
                String::new()
            } else {
                format!(
                    "LEAKED: {}",
                    outcome
                        .leaked
                        .iter()
                        .map(|(k, _)| k.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
        );
    }

    let vulns = discover_vulnerabilities(&device, &analysis);
    println!("\nconfirmed vulnerabilities: {}", vulns.len());
    for v in &vulns {
        println!("  [{}] {} — {}", v.flaw, v.functionality, v.consequence);
    }
}
