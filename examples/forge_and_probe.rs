//! Impersonate a device from its firmware alone: the attacker story of
//! the paper's threat model (§III-B), played out against the RUISION
//! camera's cloud-storage interfaces (Table III, device 20).
//!
//! The attacker holds the firmware (purchased device, downloaded image),
//! extracts the identifiers FIRMRES says the messages need, and walks the
//! storage API: status → auth (leaks the storage keys) → file list (leaks
//! recording paths).
//!
//! ```text
//! cargo run --release --example forge_and_probe
//! ```

use firmres::{extract_endpoint, fill_message, probe_cloud};
use firmres_suite::prelude::*;

fn main() {
    let device = generate_device(20, 7);
    println!(
        "target: {} {} cloud storage\n",
        device.spec.vendor, device.spec.model
    );

    let analysis = analyze_firmware(&device.firmware, None, &AnalysisConfig::default());
    // The three storage interfaces of Table III.
    let storage: Vec<&MessageRecord> = analysis
        .identified()
        .filter(|r| extract_endpoint(&r.message).is_some_and(|e| e.starts_with("/store-server/")))
        .collect();
    assert_eq!(storage.len(), 3, "status, auth, files");

    for record in &storage {
        let endpoint = extract_endpoint(&record.message).unwrap();
        println!("→ {endpoint}");
        println!("   reconstructed: {}", record.message);
        let filled = fill_message(&record.message, &device.firmware);
        println!(
            "   forged params: {:?}",
            filled
                .params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
        );
        let outcome = probe_cloud(&device.cloud, &filled);
        println!("   cloud: {}", outcome.status);
        for (k, v) in &outcome.leaked {
            println!("   LEAKED {k}: {v}");
        }
        println!();
    }
    println!(
        "all three interfaces accepted requests authenticated by nothing but the\n\
         deviceId — the paper's identifier-only class. A real attacker needs only\n\
         a leaked or enumerated device id to read the victim's recordings."
    );
}
