//! Sweep the whole 22-device corpus in parallel and print a per-device
//! summary — the shape of the paper's full evaluation run.
//!
//! The sweep rides on [`firmres::analyze_corpus`], the pipeline's
//! worker-pool driver: results come back in input order and are
//! identical to a sequential run, only faster.
//!
//! ```text
//! cargo run --release --example corpus_sweep
//! ```

use firmres_bench::{discover_vulnerabilities, score_analysis};
use firmres_suite::prelude::*;
use std::time::Instant;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("sweeping the 22-device corpus on {threads} thread(s)…\n");
    let corpus = generate_corpus(7);
    let images: Vec<_> = corpus.iter().map(|d| &d.firmware).collect();
    let started = Instant::now();
    let analyses = analyze_corpus(&images, None, &AnalysisConfig::default(), threads);
    let wall = started.elapsed();
    for (dev, analysis) in corpus.iter().zip(&analyses) {
        let summary = if analysis.executable.is_some() {
            let score = score_analysis(dev, analysis);
            let vulns = discover_vulnerabilities(dev, analysis);
            format!(
                "{:>3} msgs ({} valid), {:>3} fields, {} vulns, {:?}",
                score.identified_messages,
                score.valid_messages,
                score.fields_identified,
                vulns.len(),
                analysis.timings.total(),
            )
        } else {
            "script-based device-cloud logic (out of scope)".to_string()
        };
        println!(
            "device {:>2} ({:<16}): {summary}",
            dev.spec.id, dev.spec.vendor
        );
    }
    println!(
        "\nswept {} devices in {wall:?} on {threads} thread(s)",
        corpus.len()
    );
}
