//! Sweep the whole 22-device corpus in parallel and print a per-device
//! summary — the shape of the paper's full evaluation run.
//!
//! ```text
//! cargo run --release --example corpus_sweep
//! ```

use firmres_bench::{discover_vulnerabilities, score_analysis};
use firmres_suite::prelude::*;
use std::sync::mpsc;
use std::thread;

fn main() {
    println!("sweeping the 22-device corpus…\n");
    let corpus = generate_corpus(7);
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for dev in &corpus {
            let tx = tx.clone();
            scope.spawn(move || {
                let analysis =
                    analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());
                let summary = if analysis.executable.is_some() {
                    let score = score_analysis(dev, &analysis);
                    let vulns = discover_vulnerabilities(dev, &analysis);
                    format!(
                        "{:>3} msgs ({} valid), {:>3} fields, {} vulns, {:?}",
                        score.identified_messages,
                        score.valid_messages,
                        score.fields_identified,
                        vulns.len(),
                        analysis.timings.total(),
                    )
                } else {
                    "script-based device-cloud logic (out of scope)".to_string()
                };
                tx.send((dev.spec.id, dev.spec.vendor, summary)).expect("channel open");
            });
        }
        drop(tx);
        let mut results: Vec<_> = rx.iter().collect();
        results.sort_by_key(|(id, _, _)| *id);
        for (id, vendor, summary) in results {
            println!("device {id:>2} ({vendor:<16}): {summary}");
        }
    });
}
