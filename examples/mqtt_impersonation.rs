//! The complete CVE-2023-2586 attack chain, end to end:
//!
//! 1. FIRMRES reconstructs the Teltonika registration message from the
//!    firmware and flags its weak form (identifiers only).
//! 2. The forged registration is sent to the vendor cloud, which returns
//!    the device certificate.
//! 3. The attacker connects to the vendor's MQTT broker *with the leaked
//!    certificate*, impersonating the device: pushing forged telemetry to
//!    the victim's app and eavesdropping on the device's command channel.
//!
//! ```text
//! cargo run --release --example mqtt_impersonation
//! ```

use firmres::{fill_message, probe_cloud};
use firmres_cloud::mqtt::{Broker, MqttAuth};
use firmres_suite::prelude::*;

fn main() {
    let device = generate_device(11, 7); // Teltonika RUT241
    println!("target: {} {}\n", device.spec.vendor, device.spec.model);

    // Step 1: static reconstruction.
    let analysis = analyze_firmware(&device.firmware, None, &AnalysisConfig::default());
    let registration = analysis
        .identified()
        .find(|m| m.function == "snd_00")
        .expect("registration message");
    println!("[1] reconstructed: {}", registration.message);
    for flaw in &registration.flaws {
        println!("    form check: {flaw}");
    }

    // Step 2: forge it and harvest the certificate.
    let filled = fill_message(&registration.message, &device.firmware);
    let outcome = probe_cloud(&device.cloud, &filled);
    println!("\n[2] forged registration → {}", outcome.status);
    let cert = outcome
        .leaked
        .iter()
        .find(|(k, _)| k == "certificate")
        .map(|(_, v)| v.clone())
        .expect("certificate leaked");
    println!("    certificate obtained: {cert}");
    assert_eq!(cert, device.identity.secret);

    // Step 3: become the device on the MQTT broker.
    let state = device.cloud.with_state(|s| s.clone());
    let mut broker = Broker::new(state);
    let victim = broker
        .connect(
            "victim-app",
            MqttAuth::UserPass {
                user: device.identity.user.clone(),
                password: device.identity.password.clone(),
            },
        )
        .expect("victim's app connects");
    let device_topic = format!("/dev/{}/telemetry", device.identity.device_id);
    let cmd_filter = format!("/dev/{}/cmd/#", device.identity.device_id);
    broker.subscribe(victim, &device_topic).unwrap();

    let attacker = broker
        .connect("attacker", MqttAuth::DeviceCert { cert })
        .expect("leaked certificate authenticates");
    println!(
        "\n[3] attacker connected to the broker as device {}",
        broker.session_device(attacker).unwrap()
    );
    broker
        .publish(attacker, &device_topic, "{\"rssi\":-30,\"tamper\":false}")
        .unwrap();
    let seen = broker.poll(victim).unwrap();
    println!(
        "    victim's app received forged telemetry: {}",
        seen[0].payload
    );

    broker.subscribe(attacker, &cmd_filter).unwrap();
    let cloud_svc = broker
        .connect(
            "cloud-svc",
            MqttAuth::UserPass {
                user: device.identity.user.clone(),
                password: device.identity.password.clone(),
            },
        )
        .unwrap();
    broker
        .publish(
            cloud_svc,
            &format!("/dev/{}/cmd/reboot", device.identity.device_id),
            "{}",
        )
        .unwrap();
    let intercepted = broker.poll(attacker).unwrap();
    println!(
        "    attacker intercepted a device command: {} on {}",
        intercepted[0].payload, intercepted[0].topic
    );
    println!("\nremote and complete control over the running device — the paper's §III-A outcome.");
}
