//! Train the field-semantics classifier on slices harvested from the
//! corpus (the paper's §IV-C pipeline with the model substitution of
//! DESIGN.md), then classify a few hand-written slices.
//!
//! ```text
//! cargo run --release --example train_semantics
//! ```

use firmres_bench::{build_slice_dataset, train_semantics_model};
use firmres_suite::prelude::*;

fn main() {
    println!("harvesting slices from the 20 binary-handled devices…");
    let corpus = generate_corpus(7);
    let config = AnalysisConfig::default();
    let analyses: Vec<_> = corpus
        .iter()
        .filter(|d| d.cloud_executable.is_some())
        .map(|d| (d, analyze_firmware(&d.firmware, None, &config)))
        .collect();
    let dataset = build_slice_dataset(&analyses);
    println!("dataset: {} slices", dataset.len());

    let (model, val, test) = train_semantics_model(&dataset, 7);
    println!("validation accuracy: {:.2}%", val * 100.0);
    println!("test accuracy:       {:.2}%\n", test * 100.0);

    // Classify unseen, hand-written enriched slices.
    let samples = [
        "CALL (Fun, sprintf), (Local, buf, v_1001), (Cons, \"mac=%s\") ; CALL (Fun, get_mac_addr)",
        "CALL (Fun, nvram_get), (Cons, \"cloud_password\") ; FIELD (Cons, \"password=\")",
        "CALL (Fun, hmac_sign), (Local, secret, v_2002) ; FIELD (Cons, \"sign=%s\")",
        "CALL (Fun, cJSON_AddStringToObject), (Cons, \"accessToken\")",
        "COPY (Cons, \"Host: iot.vendor.example\")",
        "CALL (Fun, time) ; FIELD (Cons, \"ts=%d\")",
    ];
    println!("classifying unseen slices:");
    for s in samples {
        let (label, probs) = model.predict(s);
        let confidence = probs[label.index()];
        println!("  {label:<15} ({confidence:>5.2})  {s}");
    }
}
