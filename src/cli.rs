//! The `firmres` command-line tool.
//!
//! Subcommands (see [`run`]):
//!
//! * `gen <device-id> <out.fwi>` — generate a corpus firmware image to disk
//! * `synth <count> <out-dir>` — synthesize a parameterized device fleet
//!   (vendor/model/topology/vulnerability mix drawn from seeded
//!   distributions; byte-deterministic for a given `--seed` at any
//!   `--jobs` count)
//! * `inspect <image.fwi>` — device info, file listing, NVRAM keys
//! * `disasm <image.fwi> <exe-path>` — disassemble an MR32 executable
//! * `lift <image.fwi> <exe-path>` — dump the lifted P-Code IR
//! * `analyze <image.fwi>` — run the full FIRMRES pipeline and report
//!   (`--cache <dir>` runs through the content-addressed analysis cache,
//!   `--jobs <n>` fans the message units out over `n` worker threads,
//!   `--update-of <prev.fwi>` primes the cache from a previous firmware
//!   version so only changed functions' units re-run)
//! * `mutate <in.fwi> <out.fwi> <percent> [seed]` — write a synthetic
//!   firmware update mutating `percent`% of the image's functions
//! * `serve <addr>` — run the resident analysis daemon
//! * `submit <addr> <image.fwi>` — submit an image to a running daemon;
//!   the rendered report is identical to a local `analyze`
//! * `status <addr>` / `drain <addr>` — inspect or gracefully stop a daemon
//! * `load <addr> <dir>` — drive open- or closed-loop submit traffic at a
//!   running daemon and report throughput, latency percentiles and
//!   admission rejections
//! * `cache-stats <dir>` — survey an analysis-cache store directory

use firmres::{
    analyze_firmware, analyze_firmware_jobs, AnalysisConfig, CollectingObserver, Parallelism,
};
use firmres_cache::{analyze_corpus_incremental, AnalysisCache};
use firmres_firmware::{content_hash_packed_wide, FirmwareImage};
use firmres_isa::{decode, CODE_BASE};
use firmres_service::{Client, Server, ServerConfig, SubmitImage};
use std::fmt::Write as _;

/// Execute a CLI invocation; `args` excludes the program name. Returns
/// the rendered output, or a usage/processing error message.
///
/// # Errors
///
/// Returns `Err` with a human-readable message for unknown commands,
/// missing arguments, I/O failures, or malformed inputs.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(args.get(1), args.get(2)),
        Some("synth") => cmd_synth(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        Some("inspect") => cmd_inspect(&load_image(args.get(1))?),
        Some("disasm") => {
            let fw = load_image(args.get(1))?;
            cmd_disasm(&fw, args.get(2).ok_or(USAGE)?)
        }
        Some("lift") => {
            let fw = load_image(args.get(1))?;
            cmd_lift(&fw, args.get(2).ok_or(USAGE)?)
        }
        Some("analyze") => {
            let mut cache_dir: Option<String> = None;
            let mut update_of: Option<String> = None;
            let mut libid: Option<String> = None;
            let mut jobs: usize = 1;
            let mut positional: Vec<&String> = Vec::new();
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                if a == "--cache" {
                    cache_dir = Some(rest.next().ok_or(USAGE)?.clone());
                } else if a == "--update-of" {
                    update_of = Some(rest.next().ok_or(USAGE)?.clone());
                } else if a == "--libid" {
                    libid = Some(rest.next().ok_or(USAGE)?.clone());
                } else if a == "--jobs" {
                    jobs = parse_count(rest.next(), "--jobs")?;
                } else {
                    positional.push(a);
                }
            }
            cmd_analyze(
                &load_image(positional.first().copied())?,
                positional.get(1).copied(),
                cache_dir.as_deref(),
                update_of.as_ref(),
                libid.as_deref(),
                jobs,
            )
        }
        Some("libid") => cmd_libid(&args[1..]),
        Some("mutate") => cmd_mutate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("status") => cmd_status(args.get(1)),
        Some("drain") => cmd_drain(args.get(1)),
        Some("cache-stats") => cmd_cache_stats(args.get(1)),
        Some("train") => cmd_train(args.get(1), args.get(2)),
        Some("cfg") => {
            let fw = load_image(args.get(1))?;
            cmd_cfg(&fw, args.get(2).ok_or(USAGE)?, args.get(3).ok_or(USAGE)?)
        }
        Some("callgraph") => {
            let fw = load_image(args.get(1))?;
            cmd_callgraph(&fw, args.get(2).ok_or(USAGE)?)
        }
        _ => Err(USAGE.to_string()),
    }
}

const USAGE: &str = "usage: firmres-cli <command>\n\
  gen <device-id> <out.fwi>     generate a corpus firmware image\n\
  synth <count> <out-dir> [--seed <n>] [--jobs <n>] [--libraries]\n\
\x20                               synthesize a parameterized device fleet\n\
\x20                               (byte-deterministic per seed at any job\n\
\x20                               count; writes synth-00000.fwi …;\n\
\x20                               --libraries links 0-3 shared roster\n\
\x20                               libraries per device)\n\
  inspect <image.fwi>           device info, files, NVRAM\n\
  disasm <image.fwi> <exe>      disassemble an MR32 executable\n\
  lift <image.fwi> <exe>        dump the lifted P-Code IR\n\
  analyze <image.fwi> [model] [--cache <dir>] [--jobs <n>]\n\
\x20      [--update-of <prev.fwi>] [--libid <index.flix>]\n\
\x20                               run the FIRMRES pipeline (optional model;\n\
\x20                               --cache reuses/populates an analysis cache;\n\
\x20                               --jobs parallelizes within the image;\n\
\x20                               --update-of primes the cache from the\n\
\x20                               previous firmware version first;\n\
\x20                               --libid replays known-library taint\n\
\x20                               summaries from a .flix index)\n\
  libid build <libdir> <out.flix>\n\
\x20                               index a directory of known-library\n\
\x20                               executables (or .s sources) into a\n\
\x20                               sealed .flix artifact\n\
  libid inspect <index.flix>    dump a .flix index entry by entry\n\
  libid fixtures <dir>          write the synthetic roster library\n\
\x20                               sources (zbuf/jfmt/cstr) into <dir>\n\
  mutate <in.fwi> <out.fwi> <percent> [seed]\n\
\x20                               write a synthetic update flipping one\n\
\x20                               immediate in <percent>% of the functions\n\
  serve <addr> [model] [--config <file>] [--cache <dir>] [--workers <n>]\n\
\x20      [--jobs <n>] [--io-threads <n>] [--queue <n>] [--inflight <n>]\n\
\x20      [--retry-after <ms>] [--shards <n>] [--store-budget <bytes|K|M|G|none>]\n\
\x20      [--libid <index.flix>] [--port-file <path>]\n\
\x20                               run the resident analysis daemon (blocks\n\
\x20                               until drained; --config reads an INI policy\n\
\x20                               file, flags override it; --port-file records\n\
\x20                               the bound address for ephemeral ports)\n\
  submit <addr> <image.fwi> [--hash] [--events] [--deadline <ms>]\n\
\x20                               submit to a running daemon (--hash asks\n\
\x20                               the server cache by content hash without\n\
\x20                               shipping the image bytes)\n\
  status <addr>                 one-line daemon status snapshot\n\
  drain <addr>                  finish in-flight jobs, then stop the daemon\n\
  load <addr> <dir> [--connections <n>] [--rate <rps>] [--requests <n>]\n\
\x20      [--mix bytes|hash|both] [--deadline <ms>]\n\
\x20                               drive load at a running daemon from a\n\
\x20                               directory of .fwi images; reports\n\
\x20                               throughput, latency percentiles and\n\
\x20                               admission rejections (--rate 0 = closed\n\
\x20                               loop)\n\
  cache-stats <dir>             survey an analysis-cache store directory\n\
  train <out.fsm> [n-devices]   train + save the semantics model\n\
  cfg <image.fwi> <exe> <fn>    DOT control-flow graph of one function\n\
  callgraph <image.fwi> <exe>   DOT call graph of an executable";

fn load_image(path: Option<&String>) -> Result<FirmwareImage, String> {
    let path = path.ok_or(USAGE)?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    FirmwareImage::unpack(&bytes).map_err(|e| format!("cannot unpack {path}: {e}"))
}

fn cmd_gen(id: Option<&String>, out: Option<&String>) -> Result<String, String> {
    let id: u8 = id
        .ok_or(USAGE)?
        .parse()
        .map_err(|_| "device id must be 1-22".to_string())?;
    if !(1..=22).contains(&id) {
        return Err("device id must be 1-22".into());
    }
    let out = out.ok_or(USAGE)?;
    let dev = firmres_corpus::generate_device(id, 7);
    let packed = dev.firmware.pack();
    std::fs::write(out, &packed).map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "wrote {} ({} bytes): {} {} with {} files\n",
        out,
        packed.len(),
        dev.spec.vendor,
        dev.spec.model,
        dev.firmware.file_count()
    ))
}

fn cmd_synth(args: &[String]) -> Result<String, String> {
    let mut seed: u64 = 7;
    let mut jobs: usize = 1;
    let mut libraries = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--seed" => {
                seed = rest
                    .next()
                    .ok_or(USAGE)?
                    .parse()
                    .map_err(|_| "--seed takes a number".to_string())?;
            }
            "--jobs" => jobs = parse_count(rest.next(), "--jobs")?,
            "--libraries" => libraries = true,
            _ => positional.push(a),
        }
    }
    let count: u32 = positional
        .first()
        .ok_or(USAGE)?
        .parse()
        .map_err(|_| "count must be a number".to_string())?;
    if count == 0 {
        return Err("count must be at least 1".into());
    }
    let dir = positional.get(1).ok_or(USAGE)?;
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    // Generation is a pure function of (index, seed), so fanning it out
    // over a pool cannot change any image's bytes — only the wall clock.
    let images = firmres::run_pool(count as usize, jobs, move |i| {
        if libraries {
            firmres_corpus::synth_device_with_libraries(i as u32, seed).packed
        } else {
            firmres_corpus::synth_device(i as u32, seed).packed
        }
    });
    let mut total_bytes = 0usize;
    for (i, packed) in images.iter().enumerate() {
        let path = std::path::Path::new(dir).join(format!("synth-{i:05}.fwi"));
        std::fs::write(&path, packed)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        total_bytes += packed.len();
    }
    Ok(format!(
        "synthesized {count} device(s) into {dir} (seed {seed}{}, {total_bytes} bytes)\n",
        if libraries { ", shared libraries" } else { "" }
    ))
}

fn cmd_load(args: &[String]) -> Result<String, String> {
    let mut cfg = firmres_service::LoadConfig {
        connections: 4,
        rate: 0.0,
        requests: 0, // default: one request per work item
        ..firmres_service::LoadConfig::default()
    };
    let mut mix = "both";
    let mut positional: Vec<&String> = Vec::new();
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--connections" => cfg.connections = parse_count(rest.next(), "--connections")?,
            "--rate" => {
                cfg.rate = rest
                    .next()
                    .ok_or(USAGE)?
                    .parse()
                    .map_err(|_| "--rate takes requests/second".to_string())?;
            }
            "--requests" => {
                cfg.requests = rest
                    .next()
                    .ok_or(USAGE)?
                    .parse()
                    .map_err(|_| "--requests takes a count".to_string())?;
            }
            "--deadline" => {
                cfg.deadline_ms = rest
                    .next()
                    .ok_or(USAGE)?
                    .parse()
                    .map_err(|_| "--deadline takes milliseconds".to_string())?;
            }
            "--mix" => {
                mix = match rest.next().ok_or(USAGE)?.as_str() {
                    "bytes" => "bytes",
                    "hash" => "hash",
                    "both" => "both",
                    other => return Err(format!("--mix must be bytes|hash|both, not {other}")),
                };
            }
            _ => positional.push(a),
        }
    }
    let addr = positional.first().ok_or(USAGE)?;
    let dir = positional.get(1).ok_or(USAGE)?;

    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "fwi"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .fwi images in {dir}"));
    }
    let mut items = Vec::new();
    for p in &paths {
        let bytes = std::fs::read(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        if mix != "bytes" {
            items.push(SubmitImage::Hash(content_hash_packed_wide(&bytes)));
        }
        if mix != "hash" {
            items.push(SubmitImage::Bytes(bytes));
        }
    }
    if cfg.requests == 0 {
        cfg.requests = items.len();
    }

    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve {addr}"))?;
    let report = firmres_service::run_load(sock, &items, &cfg)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "load: {} request(s) over {} connection(s), {} ({} image(s), mix {mix})",
        report.submitted,
        cfg.connections,
        if cfg.rate > 0.0 {
            format!("open loop @ {:.0}/s", cfg.rate)
        } else {
            "closed loop".to_string()
        },
        paths.len()
    );
    let _ = writeln!(
        out,
        "  completed {} ({} from cache) | rejected {} queue-full, {} other | \
         cancelled {} | errors {} wire, {} protocol",
        report.completed,
        report.from_cache,
        report.rejected_queue_full,
        report.rejected_other,
        report.cancelled,
        report.wire_errors,
        report.protocol_errors
    );
    let ms = |q: f64| report.latency.value_at(q) as f64 / 1e6;
    let _ = writeln!(
        out,
        "  throughput {:.1} req/s | latency p50 {:.2} ms, p90 {:.2} ms, p95 {:.2} ms, \
         p99 {:.2} ms, p99.9 {:.2} ms, max {:.2} ms",
        report.throughput(),
        ms(0.50),
        ms(0.90),
        ms(0.95),
        ms(0.99),
        ms(0.999),
        report.latency.max() as f64 / 1e6
    );
    if report.rejected_queue_full > 0 {
        let _ = writeln!(
            out,
            "  admission control engaged: server advised retry_after {} ms",
            report.retry_after_ms_max
        );
    }
    if report.backoff_waits > 0 {
        let _ = writeln!(
            out,
            "  backed off {} time(s), {} ms total sleeping on retry_after hints",
            report.backoff_waits, report.backoff_ms_total
        );
    }
    if report.behind_schedule > 0 {
        let _ = writeln!(
            out,
            "  {} send(s) fell behind the open-loop schedule — the target \
             rate exceeds capacity at this connection count",
            report.behind_schedule
        );
    }
    Ok(out)
}

fn cmd_inspect(fw: &FirmwareImage) -> Result<String, String> {
    let mut out = String::new();
    let d = fw.device();
    let _ = writeln!(
        out,
        "{} {} — {} (firmware {})",
        d.vendor, d.model, d.device_type, d.firmware_version
    );
    let _ = writeln!(out, "\nfiles:");
    for (path, entry) in fw.files() {
        let _ = writeln!(
            out,
            "  {:<28} {:<10} {:>7} bytes",
            path,
            entry.kind(),
            entry.size()
        );
    }
    let nv = fw.nvram();
    if !nv.is_empty() {
        let _ = writeln!(out, "\nnvram defaults:");
        for (k, v) in nv.iter() {
            let _ = writeln!(out, "  {k} = {v}");
        }
    }
    Ok(out)
}

fn cmd_disasm(fw: &FirmwareImage, exe_path: &str) -> Result<String, String> {
    let exe = fw
        .load_executable(exe_path)
        .map_err(|e| format!("cannot load {exe_path}: {e}"))?;
    let mut out = String::new();
    let mut funcs: Vec<_> = exe.funcs.iter().collect();
    funcs.sort_by_key(|f| f.addr);
    for (i, w) in exe.code.iter().enumerate() {
        let addr = CODE_BASE + (i as u32) * 4;
        if let Some(f) = funcs.iter().find(|f| f.addr == addr) {
            let _ = writeln!(out, "\n{}({}):", f.name, f.params.join(", "));
        }
        match decode(*w) {
            Ok(inst) => {
                let _ = writeln!(out, "  {addr:#08x}:  {inst}");
            }
            Err(_) => {
                let _ = writeln!(out, "  {addr:#08x}:  .word {w:#010x}");
            }
        }
    }
    Ok(out)
}

fn cmd_lift(fw: &FirmwareImage, exe_path: &str) -> Result<String, String> {
    let exe = fw
        .load_executable(exe_path)
        .map_err(|e| format!("cannot load {exe_path}: {e}"))?;
    let program = firmres_isa::lift(&exe, exe_path).map_err(|e| format!("lift failed: {e}"))?;
    let mut out = String::new();
    for f in program.functions() {
        let _ = writeln!(
            out,
            "\nfunction {} @ {:#x} ({} blocks):",
            f.name(),
            f.entry(),
            f.blocks().len()
        );
        for (bid, op) in f.ops_with_blocks() {
            let _ = writeln!(out, "  [{bid}] {op}");
        }
    }
    Ok(out)
}

fn load_program(fw: &FirmwareImage, exe_path: &str) -> Result<firmres_ir::Program, String> {
    let exe = fw
        .load_executable(exe_path)
        .map_err(|e| format!("cannot load {exe_path}: {e}"))?;
    firmres_isa::lift(&exe, exe_path).map_err(|e| format!("lift failed: {e}"))
}

fn cmd_cfg(fw: &FirmwareImage, exe_path: &str, func: &str) -> Result<String, String> {
    let program = load_program(fw, exe_path)?;
    let f = program
        .function_by_name(func)
        .ok_or_else(|| format!("no function `{func}` in {exe_path}"))?;
    Ok(firmres_ir::dot::function_cfg(f))
}

fn cmd_callgraph(fw: &FirmwareImage, exe_path: &str) -> Result<String, String> {
    let program = load_program(fw, exe_path)?;
    let graph = program.call_graph();
    Ok(firmres_ir::dot::call_graph(&program, &graph))
}

fn cmd_train(out: Option<&String>, limit: Option<&String>) -> Result<String, String> {
    let out = out.ok_or(USAGE)?;
    let limit: usize = match limit {
        Some(n) => n
            .parse()
            .map_err(|_| "device limit must be a number".to_string())?,
        None => 20,
    };
    let corpus = firmres_corpus::generate_corpus(7);
    let analyses: Vec<_> = corpus
        .iter()
        .filter(|d| d.cloud_executable.is_some())
        .take(limit.max(1))
        .map(|d| {
            (
                d,
                analyze_firmware(&d.firmware, None, &AnalysisConfig::default()),
            )
        })
        .collect();
    let dataset = firmres_bench::build_slice_dataset(&analyses);
    let (model, val, test) = firmres_bench::train_semantics_model(&dataset, 7);
    let bytes = model.to_bytes();
    std::fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "trained on {} slices from {} devices; validation {:.1}%, test {:.1}%; wrote {} ({} bytes)\n",
        dataset.len(),
        analyses.len(),
        val * 100.0,
        test * 100.0,
        out,
        bytes.len()
    ))
}

fn cmd_analyze(
    fw: &FirmwareImage,
    model_path: Option<&String>,
    cache_dir: Option<&str>,
    update_of: Option<&String>,
    libid: Option<&str>,
    jobs: usize,
) -> Result<String, String> {
    let model = load_model(model_path)?;
    let mut config = AnalysisConfig::default();
    if let Some(path) = libid {
        config.taint.libid = firmres_dataflow::LibId::On;
        config.taint.lib_index = Some(std::sync::Arc::new(load_flix(path)?));
    }
    if update_of.is_some() && cache_dir.is_none() {
        return Err("analyze --update-of requires --cache <dir>".into());
    }
    let mut cache_summary = None;
    let analysis = match cache_dir {
        None => analyze_firmware_jobs(fw, model.as_ref(), &config, jobs),
        Some(dir) => {
            let cache = AnalysisCache::new(dir);
            // Prime the store from the previous firmware version: its
            // unit artifacts let the current image splice every function
            // the update did not touch.
            if let Some(prev_path) = update_of {
                let prev = load_image(Some(prev_path))?;
                analyze_corpus_incremental(
                    &[&prev],
                    model.as_ref(),
                    &config,
                    Parallelism::units(jobs),
                    &cache,
                    &mut firmres::NullObserver,
                );
            }
            let mut obs = CollectingObserver::default();
            let outcome = analyze_corpus_incremental(
                &[fw],
                model.as_ref(),
                &config,
                Parallelism::units(jobs),
                &cache,
                &mut obs,
            );
            let s = outcome.stats;
            let unit_part = if s.unit_hits > 0 {
                format!(
                    "; {} unit(s) spliced, {} re-run ({:.0}% reuse), {} verdict(s) replayed",
                    s.unit_hits,
                    s.unit_misses,
                    100.0 * s.unit_reuse_rate(),
                    s.verdict_hits
                )
            } else {
                String::new()
            };
            // Folded into the same single line: the report body below it
            // must stay byte-identical across cold/warm and job counts,
            // and the smoke tests strip exactly one leading line.
            let class_part = if s.slices_batched > 0 {
                format!(
                    "; {} slice(s) batch-classified, {} prefilter-skipped, {} class-cache hit(s)",
                    s.slices_batched, s.prefilter_skips, s.class_cache_hits
                )
            } else {
                String::new()
            };
            cache_summary = Some(format!(
                "analysis cache ({dir}): {} | {} bytes read, {} bytes written{unit_part}{class_part}",
                if s.hits > 0 {
                    "hit — pipeline skipped"
                } else {
                    "miss — entry stored"
                },
                s.bytes_read,
                s.bytes_written
            ));
            outcome
                .analyses
                .into_iter()
                .next()
                .expect("one analysis per image")
        }
    };
    let mut out = String::new();
    if let Some(line) = &cache_summary {
        let _ = writeln!(out, "{line}");
    }
    render_report(&mut out, &analysis);
    Ok(out)
}

/// Render the analysis report body. Shared verbatim by `analyze` and
/// `submit`, so a served result prints identically to a local run — the
/// service smoke test in `scripts/check.sh` byte-compares the two.
fn render_report(out: &mut String, analysis: &firmres::FirmwareAnalysis) {
    match &analysis.executable {
        Some(path) => {
            let _ = writeln!(out, "device-cloud executable: {path}");
        }
        None => {
            let _ = writeln!(
                out,
                "no device-cloud executable found (script-based device-cloud logic is out of scope)"
            );
            append_diagnostics(out, analysis);
            return;
        }
    }
    for h in &analysis.handlers {
        let _ = writeln!(
            out,
            "async handler: {} (P_f = {:.2}, recv @ {:#x})",
            h.handler_name, h.score, h.recv_callsite
        );
    }
    let _ = writeln!(out, "\nreconstructed messages:");
    for record in analysis.identified() {
        let _ = writeln!(out, "  {} → {}", record.function, record.message);
        for flaw in &record.flaws {
            let _ = writeln!(out, "    ALARM: {flaw}");
        }
    }
    let lan = analysis.messages.iter().filter(|m| m.lan_discarded).count();
    if lan > 0 {
        let _ = writeln!(out, "\n({lan} LAN-addressed message(s) discarded)");
    }
    append_stats(out, analysis);
    append_diagnostics(out, analysis);
}

/// Load a `.flix` known-library index, mapping codec errors to CLI text.
fn load_flix(path: &str) -> Result<firmres_dataflow::LibIndex, String> {
    firmres_libid::load_index(std::path::Path::new(path))
        .map_err(|e| format!("cannot load libid index {path}: {e}"))
}

fn cmd_libid(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("build") => {
            let dir = args.get(1).ok_or(USAGE)?;
            let out_path = args.get(2).ok_or(USAGE)?;
            let (index, report) = firmres_libid::build_index_from_dir(std::path::Path::new(dir))
                .map_err(|e| format!("libid build {dir}: {e}"))?;
            firmres_libid::write_index(std::path::Path::new(out_path), &index)
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            let mut out = report.render();
            let _ = writeln!(
                out,
                "wrote {out_path}: {} function(s), fingerprint {:016x}",
                index.len(),
                index.fingerprint()
            );
            Ok(out)
        }
        Some("inspect") => {
            let path = args.get(1).ok_or(USAGE)?;
            let index = load_flix(path)?;
            let mut out = String::new();
            for line in firmres_libid::inspect_lines(&index) {
                let _ = writeln!(out, "{line}");
            }
            Ok(out)
        }
        Some("fixtures") => {
            let dir = args.get(1).ok_or(USAGE)?;
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
            let mut out = String::new();
            for k in 0..firmres_corpus::ROSTER.len() {
                let file = firmres_corpus::library_fixture_file(k);
                let path = std::path::Path::new(dir).join(&file);
                std::fs::write(&path, firmres_corpus::library_fixture_source(k))
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                let _ = writeln!(out, "wrote {}", path.display());
            }
            Ok(out)
        }
        _ => Err(USAGE.to_string()),
    }
}

fn cmd_mutate(args: &[String]) -> Result<String, String> {
    let fw = load_image(args.first())?;
    let out_path = args.get(1).ok_or(USAGE)?;
    let percent: f64 = args
        .get(2)
        .ok_or(USAGE)?
        .parse()
        .map_err(|_| "percent must be a number".to_string())?;
    if !(0.0..=100.0).contains(&percent) {
        return Err("percent must be in 0..=100".into());
    }
    let seed: u64 = match args.get(3) {
        Some(v) => v.parse().map_err(|_| "seed must be a number".to_string())?,
        None => 42,
    };
    let update = firmres_corpus::mutate_firmware(&fw, percent, seed);
    let packed = update.image.pack();
    std::fs::write(out_path, &packed).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let mut out = format!(
        "mutated {} function(s) ({percent}% @ seed {seed}); wrote {} ({} bytes)\n",
        update.mutated.len(),
        out_path,
        packed.len()
    );
    for (path, func) in &update.mutated {
        let _ = writeln!(out, "  {path}: {func}");
    }
    Ok(out)
}

fn cmd_serve(args: &[String]) -> Result<String, String> {
    let mut cache_dir: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut config_file: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut unit_jobs: Option<usize> = None;
    let mut io_threads: Option<usize> = None;
    let mut queue_cap: Option<usize> = None;
    let mut inflight_cap: Option<u32> = None;
    let mut retry_after: Option<u64> = None;
    let mut shards: Option<String> = None;
    let mut store_budget: Option<String> = None;
    let mut libid: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--cache" => cache_dir = Some(rest.next().ok_or(USAGE)?.clone()),
            "--libid" => libid = Some(rest.next().ok_or(USAGE)?.clone()),
            "--port-file" => port_file = Some(rest.next().ok_or(USAGE)?.clone()),
            "--config" => config_file = Some(rest.next().ok_or(USAGE)?.clone()),
            "--workers" => workers = Some(parse_count(rest.next(), "--workers")?),
            "--jobs" => unit_jobs = Some(parse_count(rest.next(), "--jobs")?),
            "--io-threads" => io_threads = Some(parse_count(rest.next(), "--io-threads")?),
            "--queue" => {
                queue_cap = Some(
                    rest.next()
                        .ok_or(USAGE)?
                        .parse()
                        .map_err(|_| "--queue takes a capacity".to_string())?,
                );
            }
            "--inflight" => {
                inflight_cap = Some(
                    rest.next()
                        .ok_or(USAGE)?
                        .parse()
                        .map_err(|_| "--inflight takes a cap".to_string())?,
                );
            }
            "--retry-after" => {
                retry_after = Some(
                    rest.next()
                        .ok_or(USAGE)?
                        .parse()
                        .map_err(|_| "--retry-after takes milliseconds".to_string())?,
                );
            }
            "--shards" => shards = Some(rest.next().ok_or(USAGE)?.clone()),
            "--store-budget" => store_budget = Some(rest.next().ok_or(USAGE)?.clone()),
            _ => positional.push(a),
        }
    }
    let addr = positional.first().ok_or(USAGE)?;
    let classifier = load_model(positional.get(1).copied())?;

    // Policy precedence: built-in defaults, then the config file, then
    // explicit flags — so a deployment file sets the profile and a flag
    // tweaks one knob of it.
    let mut svc = match &config_file {
        Some(path) => firmres_service::ServiceConfig::from_file(path)?,
        None => firmres_service::ServiceConfig::default(),
    };
    if let Some(n) = workers {
        svc.workers = n;
    }
    if let Some(n) = unit_jobs {
        svc.unit_jobs = n;
    }
    if let Some(n) = io_threads {
        svc.io_threads = n;
    }
    if let Some(n) = queue_cap {
        svc.queue_cap = n;
    }
    if let Some(n) = inflight_cap {
        svc.conn_inflight_cap = n;
    }
    if let Some(ms) = retry_after {
        svc.retry_after_ms = ms;
    }
    if let Some(v) = &shards {
        svc.store.apply("shards", v)?;
    }
    if let Some(v) = &store_budget {
        svc.store.apply("byte_budget", v)?;
    }
    svc.store.validate()?;
    // The flag overrides the config file's [libid] index path.
    let lib_index = match libid.as_deref().or(svc.libid_index.as_deref()) {
        Some(path) => Some(std::sync::Arc::new(load_flix(path)?)),
        None => None,
    };

    let server = Server::bind(
        addr.as_str(),
        ServerConfig {
            cache_dir: cache_dir.map(Into::into),
            classifier,
            lib_index,
            ..svc.to_server_config()
        },
    )
    .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    if let Some(path) = &port_file {
        std::fs::write(path, format!("{local}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let s = server.run();
    Ok(format!(
        "served {} job(s) on {local} ({} cache hit(s), {} pipeline run(s)); \
         {} rejected, {} cancelled\n",
        s.jobs_served, s.cache_hits, s.cache_misses, s.jobs_rejected, s.jobs_cancelled
    ))
}

fn cmd_submit(args: &[String]) -> Result<String, String> {
    let mut by_hash = false;
    let mut events = false;
    let mut deadline_ms: u64 = 0;
    let mut positional: Vec<&String> = Vec::new();
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--hash" => by_hash = true,
            "--events" => events = true,
            "--deadline" => {
                deadline_ms = rest
                    .next()
                    .ok_or(USAGE)?
                    .parse()
                    .map_err(|_| "--deadline takes milliseconds".to_string())?;
            }
            _ => positional.push(a),
        }
    }
    let addr = positional.first().ok_or(USAGE)?;
    let path = positional.get(1).ok_or(USAGE)?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let image = if by_hash {
        SubmitImage::Hash(content_hash_packed_wide(&bytes))
    } else {
        SubmitImage::Bytes(bytes)
    };
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let served = client
        .submit(image, &AnalysisConfig::default(), events, deadline_ms)
        .map_err(|e| format!("submit failed: {e}"))?;
    let mut out = String::new();
    if events {
        let _ = writeln!(
            out,
            "job {} streamed {} progress event(s){}",
            served.job_id,
            served.events.len(),
            if served.from_cache {
                " (served from cache)"
            } else {
                ""
            }
        );
    }
    render_report(&mut out, &served.analysis);
    Ok(out)
}

fn cmd_status(addr: Option<&String>) -> Result<String, String> {
    let addr = addr.ok_or(USAGE)?;
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let s = client.status().map_err(|e| format!("status failed: {e}"))?;
    // The libid segment appears only when the daemon has actually used
    // an index, so index-less deployments keep the historical line.
    let libid =
        if s.lib_fns_matched > 0 || s.lib_traversals_skipped > 0 || s.lib_summary_applies > 0 {
            format!(
                " | libid {} matched / {} skipped / {} applied",
                s.lib_fns_matched, s.lib_traversals_skipped, s.lib_summary_applies
            )
        } else {
            String::new()
        };
    // Same pattern for the semantics classification cache: silent until
    // the daemon has actually batched a slice, so cold or model-less
    // deployments keep the historical line.
    let class = if s.class_cache_hits > 0 || s.prefilter_skips > 0 || s.class_cache_entries > 0 {
        format!(
            " | class cache {} hit(s) / {} prefilter-skipped / {} cached",
            s.class_cache_hits, s.prefilter_skips, s.class_cache_entries
        )
    } else {
        String::new()
    };
    Ok(format!(
        "queue {}/{} ({} running) | served {} ({} cache hit(s), {} pipeline run(s)) | \
         units {} spliced / {} re-run | {} rejected | {} cancelled{libid}{class} | draining: {}\n",
        s.queue_depth,
        s.queue_cap,
        s.inflight,
        s.jobs_served,
        s.cache_hits,
        s.cache_misses,
        s.unit_hits,
        s.unit_misses,
        s.jobs_rejected,
        s.jobs_cancelled,
        if s.draining { "yes" } else { "no" }
    ))
}

fn cmd_drain(addr: Option<&String>) -> Result<String, String> {
    let addr = addr.ok_or(USAGE)?;
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let served = client.drain().map_err(|e| format!("drain failed: {e}"))?;
    Ok(format!("daemon drained after serving {served} job(s)\n"))
}

fn cmd_cache_stats(dir: Option<&String>) -> Result<String, String> {
    let dir = dir.ok_or(USAGE)?;
    let cache = AnalysisCache::new(dir);
    let stats = cache
        .stats()
        .map_err(|e| format!("cannot survey {dir}: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "analysis cache {dir}: {} entr{} ({} bytes)",
        stats.entries,
        if stats.entries == 1 { "y" } else { "ies" },
        stats.total_bytes
    );
    for (schema, count) in &stats.by_schema {
        let _ = writeln!(
            out,
            "  schema v{schema}: {count} entr{}{}",
            if *count == 1 { "y" } else { "ies" },
            if *schema == firmres_cache::SCHEMA_VERSION {
                " (current)"
            } else {
                " (stale)"
            }
        );
    }
    if stats.unit_banks > 0 || stats.verdicts > 0 {
        let _ = writeln!(
            out,
            "  unit artifacts: {} bank(s), {} verdict(s) ({} bytes)",
            stats.unit_banks, stats.verdicts, stats.unit_bytes
        );
    }
    if stats.orphans_removed > 0 {
        let _ = writeln!(
            out,
            "  {} orphaned temp file(s) reaped on open",
            stats.orphans_removed
        );
    }
    if stats.foreign > 0 {
        let _ = writeln!(out, "  {} foreign file(s) ignored", stats.foreign);
    }
    // Known-library usage recorded in the stored entries; a store from
    // index-less runs surveys exactly as it always has.
    let usage = cache.survey_lib_usage();
    if usage.any() {
        let _ = writeln!(
            out,
            "  library summaries: {} function(s) matched, {} traversal(s) skipped, {} application(s)",
            usage.fns_matched, usage.traversals_skipped, usage.summary_applies
        );
    }
    // The slice-classification cache is in-memory and scoped to this
    // handle's lifetime, so a fresh survey shows it only once something
    // has actually been classified through it (e.g. under `serve`,
    // which prints through the same path on drain).
    let class = cache.class_cache_stats();
    if class.batched > 0 || class.hits > 0 {
        let _ = writeln!(
            out,
            "  class cache: {} hit(s), {} miss(es), {} prefilter-skipped, {} entr{} held",
            class.hits,
            class.misses,
            class.prefilter_skips,
            class.entries,
            if class.entries == 1 { "y" } else { "ies" }
        );
    }
    // Eviction telemetry and the per-shard table appear only for stores
    // that have a budget, have evicted, or are sharded — a flat
    // unbounded store surveys exactly as it always has.
    if stats.evicted_entries > 0 || stats.reclaimed_bytes > 0 || stats.budget_bytes > 0 {
        let budget = if stats.budget_bytes > 0 {
            format!(" (budget {} bytes)", stats.budget_bytes)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  evictions: {} entr{} evicted, {} bytes reclaimed{budget}",
            stats.evicted_entries,
            if stats.evicted_entries == 1 {
                "y"
            } else {
                "ies"
            },
            stats.reclaimed_bytes
        );
    }
    if stats.shards.len() > 1 {
        let _ = writeln!(out, "  per-shard occupancy:");
        for sh in &stats.shards {
            let _ = writeln!(
                out,
                "    {:<5} {:>6} file(s) {:>12} bytes | {:>6} evicted {:>12} bytes reclaimed",
                sh.name, sh.files, sh.bytes, sh.evicted, sh.reclaimed_bytes
            );
        }
    }
    Ok(out)
}

fn parse_count(value: Option<&String>, flag: &str) -> Result<usize, String> {
    let n: usize = value
        .ok_or(USAGE)?
        .parse()
        .map_err(|_| format!("{flag} takes a thread count"))?;
    if n == 0 {
        return Err(format!(
            "{flag} must be at least 1 (0 worker threads cannot run anything)"
        ));
    }
    Ok(n)
}

fn load_model(path: Option<&String>) -> Result<Option<firmres_semantics::Classifier>, String> {
    match path {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Ok(Some(
                firmres_semantics::Classifier::from_bytes(&bytes)
                    .map_err(|e| format!("cannot load model {path}: {e}"))?,
            ))
        }
        None => Ok(None),
    }
}

/// Render pipeline work counters — in particular the taint engine's
/// memoization behaviour — as a trailing section.
fn append_stats(out: &mut String, analysis: &firmres::FirmwareAnalysis) {
    let c = &analysis.counters;
    if c.taint_queries == 0 {
        return;
    }
    let memo_pct = 100.0 * c.taint_cache_hits as f64 / c.taint_queries as f64;
    let _ = writeln!(out, "\npipeline stats:");
    let _ = writeln!(
        out,
        "  taint queries: {} ({} answered from memo cache, {memo_pct:.0}%)",
        c.taint_queries, c.taint_cache_hits
    );
    let _ = writeln!(
        out,
        "  slices rendered: {} | fields matched: {}",
        c.slices_rendered, c.fields_matched
    );
    // Per-analysis semantics batching counters stay zero by design (the
    // corpus driver owns them — they depend on cache warmth, which must
    // not leak into persisted per-analysis reports), but a replayed
    // record from a future producer that does fill them renders here.
    if c.slices_batched > 0 || c.prefilter_skips > 0 || c.class_cache_hits > 0 {
        let _ = writeln!(
            out,
            "  slices batch-classified: {} | prefilter skips: {} | class cache hits: {}",
            c.slices_batched, c.prefilter_skips, c.class_cache_hits
        );
    }
}

/// Render the analysis diagnostics (skipped executables, lift failures,
/// classifier fallbacks, …) as a trailing section, if there are any.
fn append_diagnostics(out: &mut String, analysis: &firmres::FirmwareAnalysis) {
    if analysis.diagnostics.is_empty() {
        return;
    }
    let _ = writeln!(out, "\ndiagnostics:");
    for d in &analysis.diagnostics {
        let _ = writeln!(out, "  {d}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn temp(name: &str) -> String {
        let dir = std::env::temp_dir().join("firmres-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn usage_on_unknown_command() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn gen_inspect_analyze_round_trip() {
        let path = temp("dev11.fwi");
        let msg = run(&s(&["gen", "11", &path])).unwrap();
        assert!(msg.contains("Teltonika"), "{msg}");

        let listing = run(&s(&["inspect", &path])).unwrap();
        assert!(listing.contains("/usr/bin/cloud_agent"), "{listing}");
        assert!(listing.contains("nvram defaults"), "{listing}");

        let report = run(&s(&["analyze", &path])).unwrap();
        assert!(
            report.contains("device-cloud executable: /usr/bin/cloud_agent"),
            "{report}"
        );
        assert!(report.contains("/rms/registrations"), "{report}");
        assert!(report.contains("ALARM"), "{report}");
    }

    #[test]
    fn analyze_reports_taint_memo_stats() {
        let path = temp("dev10s.fwi");
        run(&s(&["gen", "10", &path])).unwrap();
        let report = run(&s(&["analyze", &path])).unwrap();
        assert!(report.contains("pipeline stats:"), "{report}");
        assert!(report.contains("taint queries:"), "{report}");
        assert!(report.contains("answered from memo cache"), "{report}");
    }

    #[test]
    fn analyze_with_cache_hits_on_second_run() {
        let path = temp("dev11c.fwi");
        run(&s(&["gen", "11", &path])).unwrap();
        let cache_dir = temp("analysis-cache");
        let _ = std::fs::remove_dir_all(&cache_dir);

        let cold = run(&s(&["analyze", &path, "--cache", &cache_dir])).unwrap();
        assert!(cold.contains("miss — entry stored"), "{cold}");

        let warm = run(&s(&["analyze", &path, "--cache", &cache_dir])).unwrap();
        assert!(warm.contains("hit — pipeline skipped"), "{warm}");
        // The report body is unchanged by serving from the cache.
        let body = |r: &str| r.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(body(&cold), body(&warm));
        assert!(warm.contains("device-cloud executable: /usr/bin/cloud_agent"));

        // A missing --cache argument is a usage error.
        assert!(run(&s(&["analyze", &path, "--cache"])).is_err());
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    #[test]
    fn analyze_jobs_flag_does_not_change_the_report() {
        let path = temp("dev10j.fwi");
        run(&s(&["gen", "10", &path])).unwrap();
        let sequential = run(&s(&["analyze", &path])).unwrap();
        let parallel = run(&s(&["analyze", &path, "--jobs", "8"])).unwrap();
        assert_eq!(sequential, parallel);
        // Bad values are usage errors, not panics.
        assert!(run(&s(&["analyze", &path, "--jobs"])).is_err());
        assert!(run(&s(&["analyze", &path, "--jobs", "lots"])).is_err());
    }

    #[test]
    fn analyze_rejects_zero_jobs() {
        let path = temp("dev10z.fwi");
        run(&s(&["gen", "10", &path])).unwrap();
        let err = run(&s(&["analyze", &path, "--jobs", "0"])).unwrap_err();
        assert!(err.contains("--jobs must be at least 1"), "{err}");
        // The serve subcommand holds the same line.
        let err = run(&s(&["serve", "127.0.0.1:0", "--workers", "0"])).unwrap_err();
        assert!(err.contains("--workers must be at least 1"), "{err}");
    }

    #[test]
    fn cache_stats_surveys_a_store() {
        let path = temp("dev12cs.fwi");
        run(&s(&["gen", "12", &path])).unwrap();
        let cache_dir = temp("stats-cache");
        let _ = std::fs::remove_dir_all(&cache_dir);

        // An absent store is an empty survey, not an error.
        let empty = run(&s(&["cache-stats", &cache_dir])).unwrap();
        assert!(empty.contains("0 entries (0 bytes)"), "{empty}");

        run(&s(&["analyze", &path, "--cache", &cache_dir])).unwrap();
        let survey = run(&s(&["cache-stats", &cache_dir])).unwrap();
        assert!(survey.contains("1 entry"), "{survey}");
        assert!(survey.contains("(current)"), "{survey}");
        assert!(!survey.contains("foreign"), "{survey}");

        // A foreign file is counted, not misread.
        std::fs::write(std::path::Path::new(&cache_dir).join("junk.frac"), b"oops").unwrap();
        let survey = run(&s(&["cache-stats", &cache_dir])).unwrap();
        assert!(survey.contains("1 foreign file(s) ignored"), "{survey}");
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    #[test]
    fn mutate_writes_a_parsable_update() {
        let v1 = temp("dev10mu.fwi");
        run(&s(&["gen", "10", &v1])).unwrap();
        let v2 = temp("dev10mu2.fwi");
        let msg = run(&s(&["mutate", &v1, &v2, "1"])).unwrap();
        assert!(msg.contains("mutated 1 function(s)"), "{msg}");
        // The update is a loadable image and differs from the original.
        assert_ne!(std::fs::read(&v1).unwrap(), std::fs::read(&v2).unwrap());
        let report = run(&s(&["analyze", &v2])).unwrap();
        assert!(report.contains("reconstructed messages"), "{report}");
        // Bad arguments are usage errors.
        assert!(run(&s(&["mutate", &v1, &v2, "101"])).is_err());
        assert!(run(&s(&["mutate", &v1, &v2, "lots"])).is_err());
        assert!(run(&s(&["mutate", &v1])).is_err());
    }

    #[test]
    fn analyze_update_of_splices_clean_units() {
        let v1 = temp("dev10uo.fwi");
        run(&s(&["gen", "10", &v1])).unwrap();
        let v2 = temp("dev10uo2.fwi");
        run(&s(&["mutate", &v1, &v2, "1", "7"])).unwrap();

        let cache_dir = temp("update-cache");
        let _ = std::fs::remove_dir_all(&cache_dir);
        let report = run(&s(&[
            "analyze",
            &v2,
            "--cache",
            &cache_dir,
            "--update-of",
            &v1,
        ]))
        .unwrap();
        assert!(report.contains("unit(s) spliced"), "{report}");
        assert!(report.contains("% reuse"), "{report}");
        assert!(report.contains("verdict(s) replayed"), "{report}");

        // The spliced report body is identical to a from-scratch run.
        let plain = run(&s(&["analyze", &v2])).unwrap();
        let body: String = report.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(body, plain.trim_end_matches('\n'));

        // The survey now shows the unit-granular artifacts.
        let survey = run(&s(&["cache-stats", &cache_dir])).unwrap();
        assert!(survey.contains("unit artifacts:"), "{survey}");
        assert!(survey.contains("verdict(s)"), "{survey}");

        // --update-of without --cache is an error.
        let err = run(&s(&["analyze", &v2, "--update-of", &v1])).unwrap_err();
        assert!(err.contains("requires --cache"), "{err}");
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    #[test]
    fn serve_submit_status_drain_round_trip() {
        let path = temp("dev11srv.fwi");
        run(&s(&["gen", "11", &path])).unwrap();
        let local_report = run(&s(&["analyze", &path])).unwrap();

        let port_file = temp("serve-port");
        let _ = std::fs::remove_file(&port_file);
        let serve_args = s(&["serve", "127.0.0.1:0", "--port-file", &port_file]);
        let server = std::thread::spawn(move || run(&serve_args));

        let addr = loop {
            match std::fs::read_to_string(&port_file) {
                Ok(a) if a.ends_with('\n') => break a.trim().to_string(),
                _ => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };

        // A served report is byte-identical to the local analyze run.
        let served = run(&s(&["submit", &addr, &path])).unwrap();
        assert_eq!(served, local_report);

        // With --events the report gains a progress header only.
        let streamed = run(&s(&["submit", &addr, &path, "--events"])).unwrap();
        assert!(streamed.contains("progress event(s)"), "{streamed}");

        let status = run(&s(&["status", &addr])).unwrap();
        assert!(status.contains("served 2"), "{status}");
        assert!(status.contains("draining: no"), "{status}");

        let drained = run(&s(&["drain", &addr])).unwrap();
        assert!(
            drained.contains("drained after serving 2 job(s)"),
            "{drained}"
        );

        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("served 2 job(s)"), "{summary}");
        let _ = std::fs::remove_file(&port_file);
    }

    #[test]
    fn serve_validates_policy_flags_and_config() {
        // A typoed config key is an error with the offending key named.
        let cfg_path = temp("bad-serve.conf");
        std::fs::write(&cfg_path, "[service]\nwrokers = 2\n").unwrap();
        let err = run(&s(&["serve", "127.0.0.1:0", "--config", &cfg_path])).unwrap_err();
        assert!(err.contains("wrokers"), "{err}");
        // Policy flags are validated before the bind.
        let err = run(&s(&["serve", "127.0.0.1:0", "--shards", "1000"])).unwrap_err();
        assert!(err.contains("shards"), "{err}");
        let err = run(&s(&["serve", "127.0.0.1:0", "--store-budget", "lots"])).unwrap_err();
        assert!(err.contains("byte size"), "{err}");
        let err = run(&s(&["serve", "127.0.0.1:0", "--io-threads", "0"])).unwrap_err();
        assert!(err.contains("--io-threads"), "{err}");
    }

    #[test]
    fn disasm_and_lift() {
        let path = temp("dev15.fwi");
        run(&s(&["gen", "15", &path])).unwrap();
        let asm = run(&s(&["disasm", &path, "/usr/bin/cloud_agent"])).unwrap();
        assert!(asm.contains("on_cloud_request"), "{asm}");
        assert!(asm.contains("callx"), "{asm}");
        let ir = run(&s(&["lift", &path, "/usr/bin/cloud_agent"])).unwrap();
        assert!(ir.contains("CALL"), "{ir}");
        assert!(ir.contains("function main"), "{ir}");
        // Non-executable path errors cleanly.
        assert!(run(&s(&["disasm", &path, "/etc/nvram.default"])).is_err());
    }

    #[test]
    fn train_and_analyze_with_model() {
        let model_path = temp("model.fsm");
        let msg = run(&s(&["train", &model_path, "2"])).unwrap();
        assert!(msg.contains("trained on"), "{msg}");
        let fwi = temp("dev11m.fwi");
        run(&s(&["gen", "11", &fwi])).unwrap();
        let report = run(&s(&["analyze", &fwi, &model_path])).unwrap();
        assert!(report.contains("reconstructed messages"), "{report}");
        // A corrupt model file errors cleanly.
        std::fs::write(temp("junk.fsm"), b"not a model").unwrap();
        let junk = temp("junk.fsm");
        assert!(run(&s(&["analyze", &fwi, &junk])).is_err());
    }

    #[test]
    fn dot_exports() {
        let path = temp("dev16.fwi");
        run(&s(&["gen", "16", &path])).unwrap();
        let cfg = run(&s(&[
            "cfg",
            &path,
            "/usr/bin/cloud_agent",
            "on_cloud_request",
        ]))
        .unwrap();
        assert!(cfg.starts_with("digraph"), "{cfg}");
        assert!(cfg.contains("CBRANCH"), "dispatch branches present");
        let cg = run(&s(&["callgraph", &path, "/usr/bin/cloud_agent"])).unwrap();
        assert!(cg.contains("on_cloud_request"));
        assert!(cg.contains("style=dashed"), "imports rendered");
        assert!(run(&s(&["cfg", &path, "/usr/bin/cloud_agent", "nope"])).is_err());
    }

    #[test]
    fn synth_is_byte_deterministic_across_jobs() {
        let dir1 = temp("synth-j1");
        let dir4 = temp("synth-j4");
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir4);
        let msg = run(&s(&["synth", "6", &dir1, "--seed", "11", "--jobs", "1"])).unwrap();
        assert!(msg.contains("synthesized 6 device(s)"), "{msg}");
        run(&s(&["synth", "6", &dir4, "--seed", "11", "--jobs", "4"])).unwrap();
        for i in 0..6 {
            let name = format!("synth-{i:05}.fwi");
            let a = std::fs::read(std::path::Path::new(&dir1).join(&name)).unwrap();
            let b = std::fs::read(std::path::Path::new(&dir4).join(&name)).unwrap();
            assert_eq!(a, b, "{name} differs between --jobs 1 and --jobs 4");
        }
        // Every synthesized image loads and analyzes like any other.
        let one = std::path::Path::new(&dir1).join("synth-00003.fwi");
        let report = run(&s(&["analyze", &one.to_string_lossy()])).unwrap();
        assert!(report.contains("device-cloud executable:"), "{report}");
        // Bad arguments are usage errors.
        assert!(run(&s(&["synth", "0", &dir1])).is_err());
        assert!(run(&s(&["synth", "lots", &dir1])).is_err());
        assert!(run(&s(&["synth", "2"])).is_err());
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir4);
    }

    #[test]
    fn load_reports_throughput_and_percentiles() {
        let dir = temp("load-fleet");
        let _ = std::fs::remove_dir_all(&dir);
        run(&s(&["synth", "3", &dir, "--seed", "5"])).unwrap();

        let cache_dir = temp("load-cache");
        let _ = std::fs::remove_dir_all(&cache_dir);
        let port_file = temp("load-port");
        let _ = std::fs::remove_file(&port_file);
        let serve_args = s(&[
            "serve",
            "127.0.0.1:0",
            "--cache",
            &cache_dir,
            "--port-file",
            &port_file,
        ]);
        let server = std::thread::spawn(move || run(&serve_args));
        let addr = loop {
            match std::fs::read_to_string(&port_file) {
                Ok(a) if a.ends_with('\n') => break a.trim().to_string(),
                _ => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };

        // Cold bytes-only pass primes the cache…
        let cold = run(&s(&["load", &addr, &dir, "--mix", "bytes"])).unwrap();
        assert!(cold.contains("completed 3 (0 from cache)"), "{cold}");
        assert!(cold.contains("errors 0 wire, 0 protocol"), "{cold}");
        // …then a mixed open-loop pass is served entirely from it.
        let warm = run(&s(&[
            "load",
            &addr,
            &dir,
            "--requests",
            "12",
            "--rate",
            "300",
            "--connections",
            "2",
        ]))
        .unwrap();
        assert!(warm.contains("completed 12 (12 from cache)"), "{warm}");
        assert!(warm.contains("open loop @ 300/s"), "{warm}");
        assert!(warm.contains("latency p50"), "{warm}");
        assert!(warm.contains("p99.9"), "{warm}");

        run(&s(&["drain", &addr])).unwrap();
        server.join().unwrap().unwrap();
        // Bad arguments are usage errors.
        assert!(run(&s(&["load", &addr])).is_err());
        assert!(run(&s(&["load", &addr, &dir, "--mix", "nope"])).is_err());
        assert!(run(&s(&["load", &addr, "/nonexistent-dir"])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&cache_dir);
        let _ = std::fs::remove_file(&port_file);
    }

    #[test]
    fn gen_validates_device_id() {
        assert!(run(&s(&["gen", "0", "/tmp/x.fwi"])).is_err());
        assert!(run(&s(&["gen", "99", "/tmp/x.fwi"])).is_err());
        assert!(run(&s(&["gen", "abc", "/tmp/x.fwi"])).is_err());
    }

    #[test]
    fn missing_file_is_reported() {
        let err = run(&s(&["inspect", "/nonexistent/image.fwi"])).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }
}
