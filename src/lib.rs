//! # firmres-suite
//!
//! Umbrella crate for the FIRMRES reproduction (DSN 2024): re-exports
//! every workspace crate under one roof and hosts the runnable examples
//! (`examples/`) and the cross-crate integration test suite (`tests/`).
//!
//! Start with the [`firmres`] pipeline crate, or run:
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --release --example audit_device -- 11
//! cargo run --release -p firmres-bench --bin table2
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and per-experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use firmres as pipeline;
pub use firmres_bench as bench;
pub use firmres_cache as cache;
pub use firmres_cloud as cloud;
pub use firmres_corpus as corpus;
pub use firmres_dataflow as dataflow;
pub use firmres_firmware as firmware;
pub use firmres_ir as ir;
pub use firmres_isa as isa;
pub use firmres_mft as mft;
pub use firmres_semantics as semantics;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use firmres::{
        analyze_corpus, analyze_firmware, fill_message, probe_cloud, AnalysisConfig, Diagnostic,
        FirmwareAnalysis, MessageRecord, Severity,
    };
    pub use firmres_corpus::{generate_corpus, generate_device, GeneratedDevice};
    pub use firmres_firmware::FirmwareImage;
    pub use firmres_semantics::Primitive;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let dev = generate_device(15, 1);
        let _cfg = AnalysisConfig::default();
        assert_eq!(dev.spec.id, 15);
    }
}
