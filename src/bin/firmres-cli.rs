//! The `firmres` command-line entry point: generate, inspect, disassemble
//! and analyze firmware images from a shell. See `firmres_suite::cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match firmres_suite::cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
